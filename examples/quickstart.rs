//! Quickstart: generate a synthetic project, optimize a query with the
//! native optimizer, execute it on the simulated cluster, and inspect the
//! logged record — the minimal tour of the substrate LOAM builds on.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use loam::prelude::*;

fn main() {
    // 1. A project: tables, columns, foreign keys, query templates.
    let mut profile = ProjectProfile::evaluation_project(1).expect("project 1");
    profile.n_tables = 40;
    profile.n_temp_tables = 4;
    profile.n_columns = 320;
    profile.n_templates = 20;
    let project = profile.generate(ProjectId(1));
    println!(
        "project with {} tables / {} columns / {} templates",
        project.catalog.table_count(),
        project.catalog.column_count(),
        project.templates.len()
    );

    // 2. A day's workload and one query from it.
    let queries = project.workload_for_day(0);
    let query = &queries[0];
    println!(
        "\nquery {}: {} tables, {} joins, aggregation: {}",
        query.id,
        query.table_count(),
        query.joins.len(),
        query.has_aggregation()
    );

    // 3. The native optimizer compiles it into a physical plan.
    let optimizer = NativeOptimizer::new(&project.catalog);
    let plan = optimizer.optimize(query, &Knobs::default());
    println!("\ndefault plan:\n{}", mcsim_plan::display::render(&plan));

    // 4. Execute it on the simulated multi-tenant cluster.
    let cluster = Cluster::new(7, ClusterConfig::default());
    let mut executor = Executor::new(7, cluster, profile.env_noise_sigma);
    executor.cluster.advance(100); // warm the cluster up
    let outcome = executor.execute(&plan, &project.catalog);
    println!(
        "executed: CPU cost {:.1}, latency {:.2}, {} stages",
        outcome.cpu_cost,
        outcome.latency,
        outcome.stage_envs.len()
    );
    for (i, env) in outcome.stage_envs.iter().enumerate() {
        println!(
            "  stage {i}: CPU_IDLE {:.2}, IO_WAIT {:.3}, LOAD5 {:.1}, MEM {:.2} → cost {:.1}",
            env.cpu_idle, env.io_wait, env.load5, env.mem_usage, outcome.stage_costs[i]
        );
    }

    // 5. Re-running the identical plan gives a different cost — the
    //    environment variation at the heart of the paper's Challenge 1.
    let again = executor.execute(&plan, &project.catalog);
    println!(
        "\nsame plan re-executed: CPU cost {:.1} (vs {:.1} — environment variation)",
        again.cpu_cost, outcome.cpu_cost
    );
}
