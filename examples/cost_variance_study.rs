//! Cost-variance study: the phenomena behind the paper's Challenges —
//! recurring queries fluctuate with the environment (Figure 1), costs track
//! load roughly linearly (Figure 5), repeated executions are log-normal
//! (Figure 15), and any environment-blind optimizer pays an intrinsic
//! deviance (Theorem 1).
//!
//! ```bash
//! cargo run --release --example cost_variance_study
//! ```

use loam::prelude::*;
use loam_core::explorer::PlanExplorer;
use loam_core::theory::deviance::{best_achievable_deviance, deviance_of_choice};
use loam_core::theory::lognormal::ks_test;

fn main() {
    let mut profile = ProjectProfile::evaluation_project(1).expect("project 1");
    profile.n_tables = 30;
    profile.n_temp_tables = 3;
    profile.n_columns = 200;
    profile.n_templates = 12;
    let project = profile.generate(ProjectId(1));
    let optimizer = NativeOptimizer::new(&project.catalog);
    let query = &project.workload_for_day(0)[0];
    let plan = optimizer.optimize(query, &Knobs::default());

    // --- Fluctuation of a recurring query (Figure 1). ---
    let mut flighting = Flighting::new(11, profile.env_noise_sigma);
    let costs: Vec<f64> = flighting
        .replay(&plan, &project.catalog, 120)
        .into_iter()
        .map(|o| o.cpu_cost)
        .collect();
    let mean = costs.iter().sum::<f64>() / costs.len() as f64;
    let rsd =
        (costs.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / costs.len() as f64).sqrt() / mean;
    println!(
        "recurring query over 120 replays: mean cost {:.0}, relative std-dev {:.1}%",
        mean,
        rsd * 100.0
    );

    // --- Log-normality (Figure 15 / Appendix E.1). ---
    let fit = LogNormal::fit(&costs);
    let ks = ks_test(&costs, &fit);
    println!(
        "log-normal fit: mu {:.2}, sigma {:.2}; KS statistic {:.3}, p-value {:.2}",
        fit.mu, fit.sigma, ks.statistic, ks.p_value
    );

    // --- Load coupling (Figure 5). ---
    println!("\ncost vs. cluster load:");
    for &busy in &[0.2, 0.5, 0.8] {
        let cluster = Cluster::new(
            3,
            ClusterConfig {
                base_busy: busy,
                diurnal_amplitude: 0.0,
                ..ClusterConfig::default()
            },
        );
        let mut exec = Executor::new(3, cluster, 0.05);
        exec.cluster.advance(60);
        let c: f64 = (0..10)
            .map(|_| exec.execute(&plan, &project.catalog).cpu_cost)
            .sum::<f64>()
            / 10.0;
        println!("  baseline busy {:.1} → mean cost {:.0}", busy, c);
    }

    // --- Theorem 1: the intrinsic deviance of blind plan selection. ---
    let explorer = PlanExplorer::default();
    let set = explorer.explore(&optimizer, query);
    let plans: Vec<&PlanTree> = set.candidates.iter().map(|c| &c.plan).collect();
    let matrix = flighting.replay_synchronized(&plans, &project.catalog, 30);
    let best = best_achievable_deviance(&matrix);
    println!(
        "\n{} candidate plans, 30 synchronized environment draws:",
        plans.len()
    );
    println!(
        "  best-achievable model M_b: E[D] = {:.1} ({:.1}% of oracle cost)",
        best.expected,
        best.relative * 100.0
    );
    for choice in 0..plans.len() {
        let d = deviance_of_choice(&matrix, choice);
        let marker = if d.expected <= best.expected + 1e-9 {
            " ← M_b"
        } else {
            ""
        };
        println!(
            "  always pick plan {choice}: E[D] = {:.1} ({:.1}%){}",
            d.expected,
            d.relative * 100.0,
            marker
        );
    }
    println!("every blind choice has E[D] ≥ E[D(M_b)] ≥ 0 — Theorem 1 in action");
}
