//! Steered optimization end to end: build a project's history, train LOAM's
//! adaptive cost predictor on it, then serve a day of online queries in the
//! paper's steering style — explore candidates, predict under the
//! representative environment, execute the selected plan — and compare
//! against the native optimizer.
//!
//! ```bash
//! cargo run --release --example steered_optimization
//! ```

use loam::prelude::*;

fn main() -> Result<(), LoamError> {
    // A small Project-2-like setup so the example runs in ~a minute.
    let mut profile = ProjectProfile::evaluation_project(2).expect("project 2");
    profile.n_tables = 35;
    profile.n_temp_tables = 3;
    profile.n_columns = 220;
    profile.n_templates = 18;
    profile.n_query_day0 = 60.0;

    let cfg = PipelineConfig {
        train_days: 15,
        test_days: 3,
        max_train: 900,
        max_test: 40,
        eval_rounds: 3,
        da_queries: 25,
        train_cfg: TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
        ..PipelineConfig::default()
    };

    println!("building {}-day history...", cfg.train_days);
    let prepared = prepare_project(&profile, ProjectId(2), &cfg)?;
    println!(
        "  {} executions logged, {} unlabeled candidate plans for domain adaptation",
        prepared.train_samples.len(),
        prepared.da_candidates.len()
    );

    println!("training the adaptive cost predictor (TCN + GRL)...");
    let predictor = train_loam(&prepared, &cfg)?;
    println!(
        "  model: {} parameters ({} KB)",
        predictor.param_count(),
        predictor.size_bytes() / 1024
    );

    println!(
        "replaying {} test queries in the flighting environment...",
        prepared.test_queries.len()
    );
    let evaluated = evaluate_candidates(&prepared, &cfg)?;

    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    let native = evaluate_native(&evaluated)?;
    let loam = evaluate_model(&predictor, &strategy, &evaluated)?;
    let best = evaluate_best_achievable(&evaluated)?;

    println!("\naverage end-to-end CPU cost over the test workload:");
    println!("  MaxCompute (default plans): {:.0}", native.avg_cost);
    println!("  LOAM (steered):             {:.0}", loam.avg_cost);
    println!("  best-achievable (M_b):      {:.0}", best.avg_cost);
    println!(
        "\nLOAM gain over the native optimizer: {:+.1}%",
        100.0 * (1.0 - loam.avg_cost / native.avg_cost)
    );
    println!(
        "relative deviance from the oracle: native {:.1}%, LOAM {:.1}%, best-achievable {:.1}%",
        native.deviance.relative * 100.0,
        loam.deviance.relative * 100.0,
        best.deviance.relative * 100.0
    );

    let improved = loam
        .per_query
        .iter()
        .filter(|(d, c)| c < &(d * 0.98))
        .count();
    let regressed = loam
        .per_query
        .iter()
        .filter(|(d, c)| c > &(d * 1.02))
        .count();
    println!(
        "per-query: {} improved, {} regressed, {} unchanged",
        improved,
        regressed,
        loam.per_query.len() - improved - regressed
    );
    Ok(())
}
