//! Project selection: run the rule-based Filter over a heterogeneous
//! population of projects, train the learned Ranker on ground-truth
//! improvement-space labels, and check that it prioritizes high-benefit
//! projects (Section 6 of the paper).
//!
//! ```bash
//! cargo run --release --example project_selection
//! ```

use loam::prelude::*;
use loam_core::explorer::PlanExplorer;
use loam_core::selector::metrics::{expected_random_recall, recall_at};
use loam_core::theory::deviance::deviance_of_choice;

fn main() {
    // A small population of random projects.
    let n_projects = 14;
    println!("generating {n_projects} random projects...");
    let projects: Vec<Project> = (0..n_projects)
        .map(|i| ProjectProfile::random(100 + i as u64).generate(ProjectId(i as u32)))
        .collect();

    // --- Stage 1: the rule-based Filter. ---
    let cfg = FilterConfig::scaled(0.01);
    println!(
        "\nFilter thresholds: n_query ≥ {:.0}/day, growth ≥ {:.3}, stable-table ratio ≥ {:.2}",
        cfg.n0, cfg.r, cfg.theta
    );
    let mut passing = Vec::new();
    for p in &projects {
        let report = evaluate_filter(p, 0, 4, &cfg);
        println!(
            "  {}: n_query {:.0}/day, growth {:.3}, stable {:.2} → {}",
            p.id,
            report.n_query,
            report.query_inc_ratio,
            report.stable_table_ratio,
            if report.passes() {
                "PASS"
            } else {
                "filtered out"
            }
        );
        if report.passes() {
            passing.push(p);
        }
    }
    println!(
        "{} of {} projects pass the filter",
        passing.len(),
        projects.len()
    );

    // --- Stage 2: the learned Ranker. ---
    // Label a sampled workload of each passing project with its true
    // improvement space via flighting replay.
    println!("\nlabeling improvement space of passing projects (flighting replay)...");
    let explorer = PlanExplorer::default();
    let mut per_project: Vec<(Vec<Vec<f64>>, Vec<f64>)> = Vec::new();
    for p in &passing {
        let optimizer = NativeOptimizer::new(&p.catalog);
        let mut flighting = Flighting::new(p.id.0 as u64, p.profile.env_noise_sigma);
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for q in p.workload_for_day(0).iter().take(10) {
            let set = explorer.explore(&optimizer, q);
            let plans: Vec<&PlanTree> = set.candidates.iter().map(|c| &c.plan).collect();
            let costs = flighting.replay_synchronized(&plans, &p.catalog, 3);
            let d = deviance_of_choice(&costs, set.default_idx);
            feats.push(ranker_features(
                &set.candidates[set.default_idx].plan,
                &p.catalog,
                d.oracle_cost + d.expected,
            ));
            labels.push(d.relative);
        }
        per_project.push((feats, labels));
    }

    // Leave-half-out: train the Ranker on half the projects, rank the rest.
    let half = per_project.len() / 2;
    let mut train_x = Vec::new();
    let mut train_y = Vec::new();
    for (f, l) in per_project.iter().take(half) {
        train_x.extend(f.iter().cloned());
        train_y.extend(l.iter().copied());
    }
    let ranker = Ranker::fit(&train_x, &train_y, 42);

    let test: Vec<&(Vec<Vec<f64>>, Vec<f64>)> = per_project.iter().skip(half).collect();
    let test_feats: Vec<Vec<Vec<f64>>> = test.iter().map(|(f, _)| f.clone()).collect();
    let predicted = ranker.rank_projects(&test_feats);
    let truth_scores: Vec<f64> = test
        .iter()
        .map(|(_, l)| l.iter().sum::<f64>() / l.len().max(1) as f64)
        .collect();
    let mut truth: Vec<usize> = (0..test.len()).collect();
    truth.sort_by(|&a, &b| truth_scores[b].partial_cmp(&truth_scores[a]).unwrap());

    println!("\nRanker ordering of held-out projects (best improvement space first):");
    println!("  predicted: {predicted:?}");
    println!("  truth:     {truth:?}");
    let k = 2.min(test.len());
    println!(
        "Recall@({k},{k}) = {:.2} (random baseline {:.2})",
        recall_at(&predicted, &truth, k, k),
        expected_random_recall(k, test.len())
    );
}
