//! Deployment lifecycle: train a predictor, validate it in the flighting
//! environment against the deployment gate, persist it on approval, reload
//! it, and verify the reloaded model steers identically — the operational
//! loop of Figure 2.
//!
//! ```bash
//! cargo run --release --example deployment_gate
//! ```

use loam::prelude::*;
use loam_core::gate::{validate, GateConfig};
use loam_core::persist::{load_predictor, save_predictor};

fn main() -> Result<(), LoamError> {
    let mut profile = ProjectProfile::evaluation_project(2).expect("project 2");
    profile.n_tables = 30;
    profile.n_temp_tables = 3;
    profile.n_columns = 200;
    profile.n_templates = 15;
    profile.n_query_day0 = 40.0;

    let cfg = PipelineConfig {
        train_days: 10,
        test_days: 2,
        max_train: 400,
        max_test: 25,
        eval_rounds: 3,
        da_queries: 20,
        train_cfg: TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        },
        ..PipelineConfig::default()
    };

    println!("offline phase: history + adaptive training...");
    let prepared = prepare_project(&profile, ProjectId(2), &cfg)?;
    let model = train_loam(&prepared, &cfg)?;

    println!("flighting validation (the paper's pre-deployment step)...");
    let evaluated = evaluate_candidates(&prepared, &cfg)?;
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    let report = validate(&model, &strategy, &evaluated, &GateConfig::default());
    println!(
        "gate report: avg ratio {:.3}, worst tail {:.2}x, regressions {:.0}% → {}",
        report.avg_ratio,
        report.worst_tail_ratio,
        report.regression_fraction * 100.0,
        if report.deploy() { "DEPLOY" } else { "REJECT" }
    );

    if !report.deploy() {
        println!("model rejected — in production LOAM would keep the native optimizer");
        return Ok(());
    }

    // Persist and reload (the ship-to-optimizer-service boundary).
    let path = std::env::temp_dir().join("loam-example-model.json");
    save_predictor(&model, &path).expect("save model");
    println!("model persisted to {}", path.display());
    let reloaded = load_predictor(&path).expect("load model");

    // The reloaded model must steer identically.
    let mut agree = 0;
    for eq in &evaluated {
        let refs: Vec<&PlanTree> = eq.plans.iter().collect();
        let (a, _) = select_plan(&model, &refs, &strategy);
        let (b, _) = select_plan(&reloaded, &refs, &strategy);
        if a == b {
            agree += 1;
        }
    }
    println!(
        "reloaded model agrees with the original on {agree}/{} steering decisions",
        evaluated.len()
    );
    let _ = std::fs::remove_file(path);
    Ok(())
}
