//! Integration: a small end-to-end pipeline run, observed through an
//! installed [`InMemoryRecorder`], must produce the documented span tree
//! (prepare → optimize → execute → featurize → train → infer) and non-zero
//! counters from every instrumented layer.
//!
//! The recorder is process-global, so everything lives in one test function
//! — parallel test threads would otherwise interleave their metrics.

use loam::prelude::*;
use std::sync::{Arc, Mutex};

/// Serializes tests that touch the process-global recorder slot.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn tiny_profile() -> ProjectProfile {
    let mut prof = ProjectProfile::evaluation_project(2).expect("project 2");
    prof.n_tables = 20;
    prof.n_temp_tables = 2;
    prof.n_columns = 150;
    prof.n_templates = 10;
    prof.n_query_day0 = 12.0;
    prof
}

fn tiny_cfg() -> PipelineConfig {
    PipelineConfig {
        train_days: 4,
        test_days: 2,
        max_train: 60,
        max_test: 12,
        eval_rounds: 3,
        da_queries: 10,
        train_cfg: TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn pipeline_run_emits_span_tree_and_counters() {
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let recorder = Arc::new(InMemoryRecorder::new());
    mcsim_obs::install(recorder.clone());

    let cfg = tiny_cfg();
    let prepared = prepare_project(&tiny_profile(), ProjectId(77), &cfg).unwrap();
    let predictor = train_loam(&prepared, &cfg).unwrap();
    let evaluated = evaluate_candidates(&prepared, &cfg).unwrap();
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    let eval = evaluate_model(&predictor, &strategy, &evaluated).unwrap();
    assert!(eval.avg_cost > 0.0);

    mcsim_obs::uninstall();
    let snap = recorder.snapshot();

    // The phase span tree: prepare nests its history build (execute) and DA
    // exploration (optimize); training nests featurization and per-epoch
    // spans; candidate evaluation emits root-level optimize/execute spans;
    // guarded selection runs under infer.
    for path in [
        "prepare",
        "prepare/execute",
        "prepare/optimize",
        "featurize",
        "train",
        "train/epoch",
        "optimize",
        "execute",
        "infer",
    ] {
        let stat = snap.span(path);
        assert!(stat.is_some(), "missing span `{path}`");
        assert!(stat.unwrap().count > 0, "span `{path}` never completed");
        assert!(
            snap.span_total_seconds(path) > 0.0,
            "span `{path}` has zero duration"
        );
    }
    assert_eq!(
        snap.span("train/epoch").unwrap().count as usize,
        cfg.train_cfg.epochs
    );

    // Counters from every instrumented layer must be non-zero.
    for name in [
        "optimizer.plans_built",
        "exec.queries_executed",
        "exec.stages_executed",
        "exec.flighting.replays",
        "exec.flighting.synchronized_rounds",
        "explorer.plans_explored",
        "explorer.candidates_kept",
        "loam.featurize.calls",
        "loam.featurize.cache_hits",
        "loam.train.epochs",
        "loam.train.steps",
    ] {
        assert!(snap.counter(name) > 0, "counter `{name}` is zero");
    }
    assert_eq!(
        snap.counter("loam.train.epochs") as usize,
        cfg.train_cfg.epochs
    );

    // Guarded selection classifies every test query exactly once.
    let selects = snap.counter("loam.select.accepted")
        + snap.counter("loam.select.rejected")
        + snap.counter("loam.select.default_best");
    assert_eq!(selects as usize, evaluated.len());

    // Distributions and gauges observed along the way.
    assert!(snap.histogram("optimizer.dp_seconds").is_some());
    assert!(snap.histogram("exec.stage.cost").is_some());
    assert!(snap.histogram("loam.train.cost_loss").is_some());
    let lambda = snap.gauge("loam.train.grl_lambda").expect("GRL λ gauge");
    assert!(
        (0.0..=0.15).contains(&lambda),
        "λ out of schedule range: {lambda}"
    );

    // The JSON rendering carries the whole snapshot.
    let json = snap.to_json();
    for needle in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"spans\"",
        "optimizer.plans_built",
        "loam.train.epochs",
        "train/epoch",
    ] {
        assert!(json.contains(needle), "JSON snapshot missing `{needle}`");
    }
}

#[test]
fn traced_pipeline_captures_spans_decisions_and_the_chrome_export() {
    // Tracing is independent of the recorder slot: no install/uninstall
    // needed, the context is an explicit handle.
    let cfg = tiny_cfg();
    let prepared = prepare_project(&tiny_profile(), ProjectId(79), &cfg).unwrap();
    let predictor = train_loam(&prepared, &cfg).unwrap();
    let ctx = TraceContext::new("integration");
    let evaluated = evaluate_candidates_traced(&prepared, &cfg, Some(&ctx)).unwrap();
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    let eval = evaluate_model_traced(&predictor, &strategy, &evaluated, Some(&ctx)).unwrap();
    assert!(eval.avg_cost > 0.0);
    validate_deployment_traced(
        &predictor,
        &strategy,
        &evaluated,
        &GateConfig::default(),
        Some(&ctx),
    );

    // Every steered query left a typed plan-selection record carrying all
    // candidate scores; the gate left its verdict.
    let decisions = ctx.decisions();
    let selections: Vec<&PlanSelection> = decisions
        .iter()
        .filter_map(|d| match d {
            Decision::PlanSelection(s) => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(selections.len(), evaluated.len());
    for s in &selections {
        assert!(!s.candidates.is_empty());
        assert!(s.chosen_idx < s.candidates.len());
        assert!(s.candidates.iter().any(|c| c.is_default));
    }
    assert!(decisions
        .iter()
        .any(|d| matches!(d, Decision::GateVerdict(_))));

    // The chrome export renders and names both decision classes.
    let json = ctx.to_chrome_json();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("decision.plan_selection"));
    assert!(json.contains("decision.gate_verdict"));
    assert!(ctx.span_count() > 0);
}

#[test]
fn disabled_recorder_means_inert_instrumentation() {
    // With no recorder installed the pipeline still runs, and the free
    // functions / spans are no-ops (this is the <5% overhead design).
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    mcsim_obs::uninstall();
    assert!(!mcsim_obs::enabled());
    let cfg = tiny_cfg();
    let prepared = prepare_project(&tiny_profile(), ProjectId(78), &cfg).unwrap();
    assert!(!prepared.train_samples.is_empty());
}
