//! Integration: a small end-to-end pipeline run, observed through an
//! installed [`InMemoryRecorder`], must produce the documented span tree
//! (prepare → optimize → execute → featurize → train → infer) and non-zero
//! counters from every instrumented layer.
//!
//! The recorder is process-global, so everything lives in one test function
//! — parallel test threads would otherwise interleave their metrics.
#![allow(deprecated)] // still drives the run_robust_serving shim on purpose

use loam::prelude::*;
use std::sync::{Arc, Mutex};

/// Serializes tests that touch the process-global recorder slot.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn tiny_profile() -> ProjectProfile {
    let mut prof = ProjectProfile::evaluation_project(2).expect("project 2");
    prof.n_tables = 20;
    prof.n_temp_tables = 2;
    prof.n_columns = 150;
    prof.n_templates = 10;
    prof.n_query_day0 = 12.0;
    prof
}

fn tiny_cfg() -> PipelineConfig {
    PipelineConfig {
        train_days: 4,
        test_days: 2,
        max_train: 60,
        max_test: 12,
        eval_rounds: 3,
        da_queries: 10,
        train_cfg: TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn pipeline_run_emits_span_tree_and_counters() {
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let recorder = Arc::new(InMemoryRecorder::new());
    mcsim_obs::install(recorder.clone());

    let cfg = tiny_cfg();
    let prepared = prepare_project(&tiny_profile(), ProjectId(77), &cfg).unwrap();
    let predictor = train_loam(&prepared, &cfg).unwrap();
    let evaluated = evaluate_candidates(&prepared, &cfg).unwrap();
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    let eval = evaluate_model(&predictor, &strategy, &evaluated).unwrap();
    assert!(eval.avg_cost > 0.0);

    mcsim_obs::uninstall();
    let snap = recorder.snapshot();

    // The phase span tree: prepare nests its history build (execute) and DA
    // exploration (optimize); training nests featurization and per-epoch
    // spans; candidate evaluation emits root-level optimize/execute spans;
    // guarded selection runs under infer.
    for path in [
        "prepare",
        "prepare/execute",
        "prepare/optimize",
        "featurize",
        "train",
        "train/epoch",
        "optimize",
        "execute",
        "infer",
    ] {
        let stat = snap.span(path);
        assert!(stat.is_some(), "missing span `{path}`");
        assert!(stat.unwrap().count > 0, "span `{path}` never completed");
        assert!(
            snap.span_total_seconds(path) > 0.0,
            "span `{path}` has zero duration"
        );
    }
    assert_eq!(
        snap.span("train/epoch").unwrap().count as usize,
        cfg.train_cfg.epochs
    );

    // Counters from every instrumented layer must be non-zero.
    for name in [
        "optimizer.plans_built",
        "exec.queries_executed",
        "exec.stages_executed",
        "exec.flighting.replays",
        "exec.flighting.synchronized_rounds",
        "explorer.plans_explored",
        "explorer.candidates_kept",
        "loam.featurize.calls",
        "loam.featurize.cache_hits",
        "loam.train.epochs",
        "loam.train.steps",
    ] {
        assert!(snap.counter(name) > 0, "counter `{name}` is zero");
    }
    assert_eq!(
        snap.counter("loam.train.epochs") as usize,
        cfg.train_cfg.epochs
    );

    // Guarded selection classifies every test query exactly once.
    let selects = snap.counter("loam.select.accepted")
        + snap.counter("loam.select.rejected")
        + snap.counter("loam.select.default_best");
    assert_eq!(selects as usize, evaluated.len());

    // Distributions and gauges observed along the way.
    assert!(snap.histogram("optimizer.dp_seconds").is_some());
    assert!(snap.histogram("exec.stage.cost").is_some());
    assert!(snap.histogram("loam.train.cost_loss").is_some());
    let lambda = snap.gauge("loam.train.grl_lambda").expect("GRL λ gauge");
    assert!(
        (0.0..=0.15).contains(&lambda),
        "λ out of schedule range: {lambda}"
    );

    // The JSON rendering carries the whole snapshot.
    let json = snap.to_json();
    for needle in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"spans\"",
        "optimizer.plans_built",
        "loam.train.epochs",
        "train/epoch",
    ] {
        assert!(json.contains(needle), "JSON snapshot missing `{needle}`");
    }
}

#[test]
fn traced_pipeline_captures_spans_decisions_and_the_chrome_export() {
    // Tracing is independent of the recorder slot: no install/uninstall
    // needed, the context is an explicit handle.
    let cfg = tiny_cfg();
    let prepared = prepare_project(&tiny_profile(), ProjectId(79), &cfg).unwrap();
    let predictor = train_loam(&prepared, &cfg).unwrap();
    let ctx = TraceContext::new("integration");
    let evaluated = evaluate_candidates_traced(&prepared, &cfg, Some(&ctx)).unwrap();
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    let eval = evaluate_model_traced(&predictor, &strategy, &evaluated, Some(&ctx)).unwrap();
    assert!(eval.avg_cost > 0.0);
    validate_deployment_traced(
        &predictor,
        &strategy,
        &evaluated,
        &GateConfig::default(),
        Some(&ctx),
    );

    // Every steered query left a typed plan-selection record carrying all
    // candidate scores; the gate left its verdict.
    let decisions = ctx.decisions();
    let selections: Vec<&PlanSelection> = decisions
        .iter()
        .filter_map(|d| match d {
            Decision::PlanSelection(s) => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(selections.len(), evaluated.len());
    for s in &selections {
        assert!(!s.candidates.is_empty());
        assert!(s.chosen_idx < s.candidates.len());
        assert!(s.candidates.iter().any(|c| c.is_default));
    }
    assert!(decisions
        .iter()
        .any(|d| matches!(d, Decision::GateVerdict(_))));

    // The chrome export renders and names both decision classes.
    let json = ctx.to_chrome_json();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("decision.plan_selection"));
    assert!(json.contains("decision.gate_verdict"));
    assert!(ctx.span_count() > 0);
}

#[test]
fn disabled_recorder_means_inert_instrumentation() {
    // With no recorder installed the pipeline still runs, and the free
    // functions / spans are no-ops (this is the <5% overhead design).
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    mcsim_obs::uninstall();
    assert!(!mcsim_obs::enabled());
    let cfg = tiny_cfg();
    let prepared = prepare_project(&tiny_profile(), ProjectId(78), &cfg).unwrap();
    assert!(!prepared.train_samples.is_empty());
}

/// A broken predictor: every score is NaN, so every query must take the
/// predictor-error rung of the fallback ladder.
struct NanModel;
impl CostModel for NanModel {
    fn name(&self) -> &'static str {
        "nan"
    }
    fn predict(&self, _plan: &PlanTree, _env: EnvSource<'_>) -> f64 {
        f64::NAN
    }
    fn size_bytes(&self) -> usize {
        0
    }
}

#[test]
fn chaos_serving_emits_fault_retry_and_fallback_counters() {
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let recorder = Arc::new(InMemoryRecorder::new());
    mcsim_obs::install(recorder.clone());

    let cfg = tiny_cfg();
    let prepared = prepare_project(&tiny_profile(), ProjectId(81), &cfg).unwrap();
    let evaluated = evaluate_candidates(&prepared, &cfg).unwrap();
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    // Aggressive kills + frequent machine failures so every fault counter
    // actually fires, and a permissive gate so serving reaches execution.
    let mut exec = ChaosScenario::new(0x0b5f_eed1)
        .fault(FaultConfig {
            machine_fail_prob: 1e-3,
            stage_kill_prob: 0.25,
            ..FaultConfig::chaos(0x0b5f_eed1)
        })
        .build();
    let robust_cfg = RobustConfig {
        gate: GateConfig {
            max_avg_ratio: 1e9,
            max_tail_ratio: 1e9,
            max_regression_fraction: 1.0,
        },
        ..RobustConfig::default()
    };
    let report = run_robust_serving(
        &NanModel,
        &strategy,
        &evaluated,
        &mut exec,
        &prepared.project.catalog,
        &robust_cfg,
        None,
    )
    .expect("robust serving terminates");

    mcsim_obs::uninstall();
    let snap = recorder.snapshot();

    // The fault-injection layer's counters.
    for name in [
        "exec.fault.machine_failures",
        "exec.fault.stage_kills",
        "exec.retry.attempts",
    ] {
        assert!(snap.counter(name) > 0, "counter `{name}` is zero");
    }
    // Retries observed by the serving report and by the recorder agree on
    // having happened.
    assert!(report.total_retries() > 0 || snap.counter("exec.retry.attempts") > 0);
    // Every query degraded on the NaN predictor, and the counter says so.
    assert_eq!(
        snap.counter("loam.fallback.predictor_error") as usize,
        evaluated.len()
    );
    assert!(snap.histogram("exec.fault.wasted_cost").is_some());
}

/// The per-event shape of the Chrome export (see
/// `crates/obs/tests/trace_roundtrip.rs` for the full round-trip suite).
#[derive(Debug, serde::Deserialize)]
struct ChromeEvent {
    name: String,
    cat: String,
    ts: u64,
    dur: u64,
    tid: u64,
}

#[derive(Debug, serde::Deserialize)]
#[allow(non_snake_case)]
struct ChromeTrace {
    traceEvents: Vec<ChromeEvent>,
}

/// Any two intervals on one track must nest or be disjoint (ties count as
/// containment) — Chrome draws garbage for partially overlapping X events.
fn assert_properly_nested(mut spans: Vec<(u64, u64)>) {
    spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    let mut stack: Vec<(u64, u64)> = Vec::new();
    for &(start, end) in &spans {
        while let Some(&(_, top_end)) = stack.last() {
            if start >= top_end {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(top_start, top_end)) = stack.last() {
            assert!(
                top_start <= start && end <= top_end,
                "partial overlap: ({start},{end}) vs open ({top_start},{top_end})"
            );
        }
        stack.push((start, end));
    }
}

#[test]
fn chrome_export_stays_well_nested_when_stages_are_killed_mid_flight() {
    // Execute under heavy stage kills with tracing on: the export must keep
    // the killed attempts and their retries from interleaving on any track.
    let cfg = tiny_cfg();
    let prepared = prepare_project(&tiny_profile(), ProjectId(82), &cfg).unwrap();
    let mut exec = ChaosScenario::new(0xdead_0f10)
        .fault(FaultConfig {
            stage_kill_prob: 0.30,
            ..FaultConfig::chaos(0xdead_0f10)
        })
        .build();
    let ctx = TraceContext::new("kill-nesting");
    let mut killed_seen = false;
    for rec in prepared.repo.records().iter().take(12) {
        let _ = exec.try_execute_traced(&rec.plan, &prepared.project.catalog, Some(&ctx));
    }
    for ev in ctx.timeline() {
        killed_seen |= ev.killed;
    }
    assert!(killed_seen, "the kill probability must actually fire");

    let json = ctx.to_chrome_json();
    assert!(json.contains("(killed)"), "killed stages must be labelled");
    assert!(json.contains("\"killed\":true"));

    let trace: ChromeTrace = serde_json::from_str(&json).expect("export must stay parseable");
    let mut tids: Vec<u64> = trace
        .traceEvents
        .iter()
        .filter(|e| e.cat == "executor")
        .map(|e| e.tid)
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(!tids.is_empty());
    for tid in tids {
        let intervals: Vec<(u64, u64)> = trace
            .traceEvents
            .iter()
            .filter(|e| e.cat == "executor" && e.tid == tid)
            .map(|e| (e.ts, e.ts + e.dur))
            .collect();
        assert_properly_nested(intervals);
    }
    // Killed events carry the marker in their name; live ones never do.
    assert!(trace
        .traceEvents
        .iter()
        .any(|e| e.cat == "executor" && e.name.ends_with("(killed)")));
}
