//! End-to-end integration: history → training → steering → evaluation on a
//! miniature project, with the paper's structural guarantees asserted.

use loam::prelude::*;

fn tiny_profile() -> ProjectProfile {
    let mut prof = ProjectProfile::evaluation_project(2).expect("project 2");
    prof.n_tables = 20;
    prof.n_temp_tables = 2;
    prof.n_columns = 150;
    prof.n_templates = 10;
    prof.n_query_day0 = 12.0;
    prof
}

fn tiny_cfg() -> PipelineConfig {
    PipelineConfig {
        train_days: 4,
        test_days: 2,
        max_train: 60,
        max_test: 12,
        eval_rounds: 3,
        da_queries: 10,
        train_cfg: TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn full_pipeline_respects_theorem_one() {
    let cfg = tiny_cfg();
    let prepared = prepare_project(&tiny_profile(), ProjectId(42), &cfg).unwrap();
    assert!(!prepared.train_samples.is_empty());
    let evaluated = evaluate_candidates(&prepared, &cfg).unwrap();
    assert!(!evaluated.is_empty());

    let native = evaluate_native(&evaluated).unwrap();
    let best = evaluate_best_achievable(&evaluated).unwrap();
    // Theorem 1 at the workload level.
    assert!(best.deviance.expected <= native.deviance.expected + 1e-9);
    assert!(best.deviance.expected >= 0.0);
    assert!(best.avg_cost <= native.avg_cost + 1e-9);

    // A trained model's deviance is also bounded below by M_b's.
    let loam = train_loam(&prepared, &cfg).unwrap();
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    let eval = evaluate_model(&loam, &strategy, &evaluated).unwrap();
    assert!(eval.deviance.expected >= best.deviance.expected - 1e-9);
    assert!(eval.avg_cost.is_finite() && eval.avg_cost > 0.0);
}

#[test]
fn steered_selection_never_leaves_the_candidate_set() {
    let cfg = tiny_cfg();
    let prepared = prepare_project(&tiny_profile(), ProjectId(43), &cfg).unwrap();
    let loam = train_loam(&prepared, &cfg).unwrap();
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    let evaluated = evaluate_candidates(&prepared, &cfg).unwrap();
    for eq in &evaluated {
        let refs: Vec<&PlanTree> = eq.plans.iter().collect();
        let (choice, costs) = select_plan(&loam, &refs, &strategy);
        assert!(choice < eq.plans.len());
        assert_eq!(costs.len(), eq.plans.len());
        assert!(costs.iter().all(|c| c.is_finite() && *c > 0.0));
    }
}

#[test]
fn history_environments_feed_training_features() {
    let cfg = tiny_cfg();
    let prepared = prepare_project(&tiny_profile(), ProjectId(44), &cfg).unwrap();
    // Every training sample carries per-stage environments consistent with
    // its plan's stage decomposition.
    for s in &prepared.train_samples {
        let stages = mcsim_plan::stage::decompose(&s.plan);
        assert_eq!(stages.len(), s.stage_envs.len());
        assert!(s.cost > 0.0);
    }
    // The representative environment is a plausible average.
    let e = prepared.mean_env;
    assert!(e.cpu_idle > 0.05 && e.cpu_idle < 0.95);
    assert!(e.io_wait >= 0.0 && e.io_wait < 0.3);
}

#[test]
fn flighting_replays_are_isolated_from_each_other() {
    let profile = tiny_profile();
    let project = profile.generate(ProjectId(45));
    let optimizer = NativeOptimizer::new(&project.catalog);
    let q = &project.workload_for_day(0)[0];
    let plan = optimizer.optimize(q, &Knobs::default());

    let mut a = Flighting::new(9, 0.2);
    let mut b = Flighting::new(9, 0.2);
    let ca = a.average_cost(&plan, &project.catalog, 5);
    let cb = b.average_cost(&plan, &project.catalog, 5);
    // Same seed ⇒ identical replay streams.
    assert_eq!(ca, cb);
}

#[test]
fn default_plan_signature_is_deterministic_per_day() {
    let profile = tiny_profile();
    let project = profile.generate(ProjectId(46));
    let optimizer = NativeOptimizer::new(&project.catalog);
    let q = &project.workload_for_day(0)[0];
    let p1 = optimizer.optimize(q, &Knobs::default());
    let p2 = optimizer.optimize(q, &Knobs::default());
    assert_eq!(PlanSignature::of(&p1), PlanSignature::of(&p2));
}

#[test]
fn stale_statistics_drift_changes_some_default_plans_over_time() {
    let profile = tiny_profile();
    let project = profile.generate(ProjectId(47));
    let optimizer = NativeOptimizer::new(&project.catalog);
    // The same template instantiated on different days can get different
    // default plans because the optimizer's stale beliefs drift.
    let mut changed = 0;
    let mut compared = 0;
    for day in [0i64, 10, 20] {
        for other in [5i64, 15, 25] {
            let qa = &project.sample_queries(day, 8);
            let qb = &project.sample_queries(other, 8);
            for (a, b) in qa.iter().zip(qb) {
                if a.template == b.template {
                    compared += 1;
                    let pa = optimizer.optimize(a, &Knobs::default());
                    let mut b_on_a_params = b.clone();
                    b_on_a_params.day = b.day; // plans differ only via day + params
                    let pb = optimizer.optimize(&b_on_a_params, &Knobs::default());
                    if PlanSignature::of(&pa) != PlanSignature::of(&pb) {
                        changed += 1;
                    }
                }
            }
        }
    }
    assert!(compared > 0);
    assert!(
        changed > 0,
        "drift should alter some plans ({changed}/{compared})"
    );
}
