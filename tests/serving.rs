//! Integration: the high-throughput serving session must be
//! *reproducible* — the decision log is a pure function of the seed and
//! the semantic configuration. Thread count, batching width, and cache
//! configuration may change wall-clock behavior but never the decisions;
//! a model update must invalidate every cached decision.

use loam::prelude::*;

fn tiny_profile(id: u32) -> ProjectProfile {
    // Only five evaluation profiles exist; the ProjectId varies the data.
    let mut prof =
        ProjectProfile::evaluation_project((id as usize - 1) % 5 + 1).expect("evaluation project");
    prof.n_tables = 20;
    prof.n_temp_tables = 2;
    prof.n_columns = 150;
    prof.n_templates = 10;
    prof.n_query_day0 = 12.0;
    prof
}

fn tiny_cfg() -> PipelineConfig {
    PipelineConfig {
        train_days: 4,
        test_days: 2,
        max_train: 60,
        max_test: 12,
        eval_rounds: 3,
        da_queries: 10,
        ..PipelineConfig::default()
    }
}

/// Prepared project + evaluated candidate sets, without training: the
/// serving scenarios inject a deterministic stand-in predictor.
fn evaluated_fixture(id: u32) -> (PreparedProject, Vec<EvaluatedQuery>) {
    let cfg = tiny_cfg();
    let prepared = prepare_project(&tiny_profile(id), ProjectId(id), &cfg).expect("prepare");
    let evaluated = evaluate_candidates(&prepared, &cfg).expect("evaluate");
    (prepared, evaluated)
}

/// Deterministic stand-in predictor: charges per plan node.
struct NodeCountModel;
impl CostModel for NodeCountModel {
    fn name(&self) -> &'static str {
        "node-count"
    }
    fn predict(&self, plan: &PlanTree, _env: EnvSource<'_>) -> f64 {
        plan.len() as f64 * 100.0
    }
    fn size_bytes(&self) -> usize {
        0
    }
}

/// A gate that always deploys (these scenarios exercise serving, not the
/// gate rung).
fn permissive_gate() -> GateConfig {
    GateConfig {
        max_avg_ratio: 1e9,
        max_tail_ratio: 1e9,
        max_regression_fraction: 1.0,
    }
}

fn serve_cfg(seed: u64) -> ServeConfig {
    ServeConfig::builder()
        .arrival(ArrivalProfile::Poisson { rate_qps: 64.0 })
        .tenants(4)
        .requests(96)
        .batch_size(16)
        .machines(8)
        .warmup_ticks(4)
        .fault_scale(1.0)
        .gate(permissive_gate())
        .seed(seed)
        .build()
        .expect("valid config")
}

#[test]
fn decision_log_is_bit_identical_across_thread_counts() {
    let (prepared, evaluated) = evaluated_fixture(11);
    let baseline = {
        let prev = mcsim_par::set_threads(1);
        let session = ServeSession::new(serve_cfg(7)).expect("session");
        let report = session
            .run(&NodeCountModel, &evaluated, &prepared.project.catalog, None)
            .expect("serve");
        mcsim_par::set_threads(prev);
        report
    };
    assert_eq!(baseline.decision_log.len(), baseline.requests);
    assert!(baseline.completed > 0, "some requests must complete");

    for threads in [2, 8] {
        let prev = mcsim_par::set_threads(threads);
        // Fresh session (cold caches) so cache flags match the baseline.
        let session = ServeSession::new(serve_cfg(7)).expect("session");
        let report = session
            .run(&NodeCountModel, &evaluated, &prepared.project.catalog, None)
            .expect("serve");
        mcsim_par::set_threads(prev);
        assert_eq!(
            report.decision_log, baseline.decision_log,
            "decision log must be bit-identical at {threads} threads"
        );
        assert_eq!(report.completed, baseline.completed);
        assert_eq!(report.failed, baseline.failed);
    }
}

/// The simulation core is not a semantic knob: serving the same trace on
/// the event-driven engine and on the dense per-tick reference engine
/// yields bit-identical decision logs, even with faults armed and
/// arrival-time cluster offsets in play.
#[test]
fn decision_log_is_bit_identical_across_engines() {
    let (prepared, evaluated) = evaluated_fixture(14);
    let catalog = &prepared.project.catalog;
    let cfg = |engine| {
        ServeConfig::builder()
            .tenants(4)
            .requests(48)
            .batch_size(16)
            .machines(8)
            .warmup_ticks(4)
            .fault_scale(2.0)
            .gate(permissive_gate())
            .engine(engine)
            .seed(31)
            .build()
            .expect("valid config")
    };
    let event = ServeSession::new(cfg(EngineMode::EventDriven))
        .unwrap()
        .run(&NodeCountModel, &evaluated, catalog, None)
        .unwrap();
    let dense = ServeSession::new(cfg(EngineMode::DenseTick))
        .unwrap()
        .run(&NodeCountModel, &evaluated, catalog, None)
        .unwrap();
    assert_eq!(event.decision_log, dense.decision_log);
    assert_eq!(event.completed, dense.completed);
    assert_eq!(event.failed, dense.failed);
    assert_eq!(event.total_cost.to_bits(), dense.total_cost.to_bits());
    assert_eq!(event.total_retries, dense.total_retries);
}

#[test]
fn batched_cached_serving_decides_like_single_query() {
    let (prepared, evaluated) = evaluated_fixture(12);
    let single_cfg = ServeConfig::builder()
        .tenants(4)
        .requests(64)
        .batch_size(1)
        .feature_cache(false)
        .decision_cache(false)
        .machines(8)
        .warmup_ticks(4)
        .gate(permissive_gate())
        .seed(13)
        .build()
        .unwrap();
    let batched_cfg = ServeConfig::builder()
        .tenants(4)
        .requests(64)
        .batch_size(32)
        .machines(8)
        .warmup_ticks(4)
        .gate(permissive_gate())
        .seed(13)
        .build()
        .unwrap();
    let catalog = &prepared.project.catalog;
    let single = ServeSession::new(single_cfg)
        .unwrap()
        .run(&NodeCountModel, &evaluated, catalog, None)
        .unwrap();
    let batched = ServeSession::new(batched_cfg)
        .unwrap()
        .run(&NodeCountModel, &evaluated, catalog, None)
        .unwrap();
    assert_eq!(single.decision_log.len(), batched.decision_log.len());
    for (s, b) in single.decision_log.iter().zip(&batched.decision_log) {
        assert!(
            s.same_decision(b),
            "decisions must agree modulo the cache flag: {s:?} vs {b:?}"
        );
    }
    assert!(
        batched.decision_cache_hits > 0,
        "recurring templates must hit the decision cache"
    );
    assert!(batched.batches < single.batches, "batching must amortize");
}

#[test]
fn model_update_invalidates_cached_decisions() {
    let (prepared, evaluated) = evaluated_fixture(13);
    let session = ServeSession::new(serve_cfg(21)).expect("session");
    let catalog = &prepared.project.catalog;

    let cold = session
        .run(&NodeCountModel, &evaluated, catalog, None)
        .unwrap();
    assert!(cold.decision_cache_misses > 0, "cold run must miss");

    let warm = session
        .run(&NodeCountModel, &evaluated, catalog, None)
        .unwrap();
    assert_eq!(
        warm.decision_cache_misses, 0,
        "second run must be fully cached"
    );
    assert!(warm.decision_cache_hits > 0);

    session.notify_model_updated();
    let after_update = session
        .run(&NodeCountModel, &evaluated, catalog, None)
        .unwrap();
    assert!(
        after_update.decision_cache_misses > 0,
        "a model update must invalidate every cached decision"
    );
    // Same model ⇒ same decisions even across the invalidation.
    for (w, a) in warm.decision_log.iter().zip(&after_update.decision_log) {
        assert!(w.same_decision(a));
    }
}

#[test]
fn shed_rate_is_monotone_in_arrival_rate() {
    let (prepared, evaluated) = evaluated_fixture(14);
    let catalog = &prepared.project.catalog;
    let mut last = -1.0f64;
    for rate in [20.0, 80.0, 320.0] {
        let cfg = ServeConfig::builder()
            .arrival(ArrivalProfile::Poisson { rate_qps: rate })
            .tenants(4)
            .requests(96)
            .batch_size(16)
            .shed(ShedPolicy::QueueBound {
                capacity: 8,
                drain_qps: 40.0,
            })
            .machines(8)
            .warmup_ticks(4)
            .gate(permissive_gate())
            .seed(5)
            .build()
            .unwrap();
        let report = ServeSession::new(cfg)
            .unwrap()
            .run(&NodeCountModel, &evaluated, catalog, None)
            .unwrap();
        assert_eq!(report.shed + report.admitted, report.requests);
        assert!(
            report.shed_rate() >= last,
            "shed rate must not drop as the arrival rate rises: {} < {last} at {rate} qps",
            report.shed_rate()
        );
        last = report.shed_rate();
    }
    assert!(last > 0.0, "the overloaded point must shed something");
}

#[test]
fn gate_hold_serves_defaults_for_every_admitted_request() {
    let (prepared, evaluated) = evaluated_fixture(15);
    // An impossible gate: any steered/native ratio above 0 is a hold.
    let cfg = ServeConfig::builder()
        .tenants(4)
        .requests(48)
        .batch_size(8)
        .machines(8)
        .warmup_ticks(4)
        .gate(GateConfig {
            max_avg_ratio: 0.0,
            ..GateConfig::default()
        })
        .seed(3)
        .build()
        .unwrap();
    let report = ServeSession::new(cfg)
        .unwrap()
        .run(&NodeCountModel, &evaluated, &prepared.project.catalog, None)
        .unwrap();
    assert!(!report.gate_deployed);
    assert_eq!(
        report.resolution_count(Resolution::GateFallback) + report.failed,
        report.admitted,
        "every admitted request must ride the gate-fallback rung"
    );
    for d in &report.decision_log {
        if let RequestOutcome::Served { choice, .. } = d.outcome {
            let eq = evaluated
                .iter()
                .find(|eq| eq.query_id == d.query_id)
                .expect("template");
            assert_eq!(choice, eq.default_idx, "gate hold must serve the default");
        }
    }
}

#[test]
fn serving_spans_reach_the_chrome_trace_export() {
    let (prepared, evaluated) = evaluated_fixture(16);
    let cfg = ServeConfig::builder()
        .tenants(4)
        .requests(32)
        .batch_size(8)
        .machines(8)
        .warmup_ticks(4)
        .gate(permissive_gate())
        .seed(17)
        .build()
        .unwrap();
    let ctx = TraceContext::new("serve");
    let traced = ServeSession::new(cfg.clone())
        .unwrap()
        .run(
            &NodeCountModel,
            &evaluated,
            &prepared.project.catalog,
            Some(&ctx),
        )
        .unwrap();
    // Tracing must not change a single decision.
    let untraced = ServeSession::new(cfg)
        .unwrap()
        .run(&NodeCountModel, &evaluated, &prepared.project.catalog, None)
        .unwrap();
    assert_eq!(traced.decision_log, untraced.decision_log);

    let names: Vec<String> = ctx.spans().iter().map(|s| s.name.clone()).collect();
    assert!(names.iter().any(|n| n == "serve.batch_infer"));
    assert_eq!(
        names.iter().filter(|n| *n == "serve.request").count(),
        traced.admitted,
        "one serve.request span per admitted request"
    );
    assert!(
        !ctx.timeline().is_empty(),
        "per-stage executor events must nest under the serving run"
    );
    let chrome = ctx.to_chrome_json();
    for needle in ["serve.request", "serve.batch_infer"] {
        assert!(
            chrome.contains(needle),
            "chrome export must carry {needle} events"
        );
    }
}
