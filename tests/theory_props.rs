//! Property-based tests on the theoretical machinery: Theorem 1 orderings,
//! log-normal fitting, ranking metrics, and the deviance estimators.

use loam::prelude::*;
use loam_core::selector::metrics::{
    expected_random_ndcg, expected_random_recall, ndcg_at, recall_at,
};
use loam_core::theory::deviance::{
    best_achievable_choice, best_achievable_deviance, deviance_of_choice, mean_costs, min_pdf,
};
use proptest::prelude::*;

fn cost_matrix() -> impl Strategy<Value = Vec<Vec<f64>>> {
    // rounds in 2..12, plans in 2..6, costs positive.
    (2usize..12, 2usize..6).prop_flat_map(|(rounds, plans)| {
        proptest::collection::vec(
            proptest::collection::vec(1.0f64..1.0e6, plans..=plans),
            rounds..=rounds,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn theorem1_holds_for_any_cost_matrix(costs in cost_matrix()) {
        let best = best_achievable_deviance(&costs);
        prop_assert!(best.expected >= -1e-9);
        for choice in 0..costs[0].len() {
            let d = deviance_of_choice(&costs, choice);
            prop_assert!(d.expected >= best.expected - 1e-9);
            prop_assert!(d.expected >= -1e-9);
            prop_assert!(d.oracle_cost > 0.0);
        }
    }

    #[test]
    fn best_achievable_choice_minimizes_mean(costs in cost_matrix()) {
        let choice = best_achievable_choice(&costs);
        let means = mean_costs(&costs);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!((means[choice] - min).abs() < 1e-9);
    }

    #[test]
    fn lognormal_mle_recovers_parameters(mu in -2.0f64..6.0, sigma in 0.05f64..1.0, seed in 0u64..1000) {
        use rand::SeedableRng;
        let truth = LogNormal { mu, sigma };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..4000).map(|_| truth.sample(&mut rng)).collect();
        let fit = LogNormal::fit(&samples);
        prop_assert!((fit.mu - mu).abs() < 0.1, "mu {} vs {}", fit.mu, mu);
        prop_assert!((fit.sigma - sigma).abs() < 0.1, "sigma {} vs {}", fit.sigma, sigma);
    }

    #[test]
    fn lognormal_cdf_is_monotone(mu in -1.0f64..4.0, sigma in 0.1f64..1.0) {
        let d = LogNormal { mu, sigma };
        let mut prev = 0.0;
        for i in 1..40 {
            let x = i as f64 * 0.5;
            let c = d.cdf(x);
            prop_assert!(c >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn min_pdf_is_nonnegative(mus in proptest::collection::vec(0.0f64..3.0, 2..5)) {
        let dists: Vec<LogNormal> = mus.iter().map(|&mu| LogNormal { mu, sigma: 0.4 }).collect();
        for i in 1..30 {
            let x = i as f64 * 0.7;
            prop_assert!(min_pdf(&dists, x) >= 0.0);
        }
    }

    #[test]
    fn ranking_metrics_stay_in_unit_interval(
        n in 3usize..12,
        seed in 0u64..500,
        k in 1usize..6,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut predicted: Vec<usize> = (0..n).collect();
        predicted.shuffle(&mut rng);
        let relevance: Vec<f64> = (0..n).map(|i| (i as f64) / n as f64).collect();
        let mut truth: Vec<usize> = (0..n).collect();
        truth.sort_by(|&a, &b| relevance[b].partial_cmp(&relevance[a]).unwrap());
        let k = k.min(n);
        let r = recall_at(&predicted, &truth, k, k);
        let g = ndcg_at(&predicted, &relevance, k);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&g));
        prop_assert!((0.0..=1.0).contains(&expected_random_recall(k, n)));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&expected_random_ndcg(&relevance, k)));
    }

    #[test]
    fn perfect_ranking_dominates_random_expectation(
        n in 4usize..12,
        k in 1usize..4,
    ) {
        let relevance: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let mut ideal: Vec<usize> = (0..n).collect();
        ideal.sort_by(|&a, &b| relevance[b].partial_cmp(&relevance[a]).unwrap());
        let k = k.min(n);
        prop_assert!(ndcg_at(&ideal, &relevance, k) >= expected_random_ndcg(&relevance, k) - 1e-9);
        prop_assert!(recall_at(&ideal, &ideal, k, k) >= expected_random_recall(k, n));
    }
}

#[test]
fn ks_test_accepts_lognormal_execution_costs() {
    // Integration: real simulator costs pass the log-normal KS test most of
    // the time (the Figure 15 claim).
    let mut prof = ProjectProfile::evaluation_project(1).unwrap();
    prof.n_tables = 15;
    prof.n_temp_tables = 2;
    prof.n_columns = 120;
    prof.n_templates = 8;
    let project = prof.generate(ProjectId(0));
    let optimizer = NativeOptimizer::new(&project.catalog);
    let mut accepted = 0;
    let total = 6;
    for (i, q) in project.workload_for_day(0).iter().take(total).enumerate() {
        let plan = optimizer.optimize(q, &Knobs::default());
        let mut fl = Flighting::new(50 + i as u64, 0.2);
        let costs: Vec<f64> = fl
            .replay(&plan, &project.catalog, 100)
            .into_iter()
            .map(|o| o.cpu_cost)
            .collect();
        let fit = LogNormal::fit(&costs);
        if loam_core::theory::lognormal::ks_test(&costs, &fit).p_value > 0.05 {
            accepted += 1;
        }
    }
    assert!(accepted >= total / 2, "only {accepted}/{total} passed KS");
}
