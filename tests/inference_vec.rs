//! Bit-identity properties of the vectorized inference path: batched
//! forest scoring must equal plan-at-a-time scoring to the exact f64 bit
//! pattern, the SIMD kernels must equal the scalar reference kernels, and
//! the structure-of-arrays batch featurization must reproduce per-plan
//! featurization row for row. Every property is checked at 1, 2, and 8 pool
//! threads — the row-blocked kernels partition work across the pool, and
//! bit-identity must survive any partitioning.

use loam::prelude::*;
use loam_core::featurize::{EnvSource, FeatureCache, PlanFeaturizer};
use loam_core::predictor::InferWs;
use loam_core::AdaptiveCostPredictor;
use mcsim_catalog::EnvMetrics;
use mcsim_plan::PlanTree;
use proptest::prelude::*;
use std::sync::Mutex;
use tinynn::{kernel_mode, set_kernel_mode, KernelMode, TreeStructure};

/// Serializes tests that mutate process-wide state (pool thread count,
/// kernel mode) so the harness's parallel test threads can't interleave.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn project_from_seed(seed: u64) -> Project {
    let mut prof = ProjectProfile::random(seed);
    prof.n_tables = prof.n_tables.min(30);
    prof.n_columns = prof.n_columns.min(300);
    prof.n_templates = prof.n_templates.min(12);
    prof.generate(ProjectId((seed % 1000) as u32))
}

/// Up to `n` optimized plans from the project's day-0 workload.
fn plans_from_seed(seed: u64, n: usize) -> Vec<PlanTree> {
    let project = project_from_seed(seed);
    let optimizer = NativeOptimizer::new(&project.catalog);
    project
        .workload_for_day(0)
        .iter()
        .take(n)
        .map(|q| optimizer.optimize(q, &Knobs::default()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batched scoring — dense or sparse conv1, cached or uncached
    /// features, warm or cold workspace — returns the exact bits of
    /// plan-at-a-time scoring, at every pool width.
    #[test]
    fn batched_predictions_equal_single_plan_bitwise(
        seed in 0u64..2000,
        batch in 1usize..12,
        busy in 0.0f64..1.0,
        net in 0.01f64..0.2,
    ) {
        let _guard = GLOBAL_STATE.lock().unwrap();
        let plans = plans_from_seed(seed, batch);
        let refs: Vec<&PlanTree> = plans.iter().collect();
        let predictor = AdaptiveCostPredictor::new(seed ^ 0x5eed, true);
        let env = EnvMetrics::new(busy, net, 8.0, 0.55);
        let cache = FeatureCache::new();
        let mut ws = InferWs::new();
        let mut out = Vec::new();
        for threads in THREAD_COUNTS {
            let prev = mcsim_par::set_threads(threads);
            let single: Vec<f64> = refs
                .iter()
                .map(|p| predictor.predict(p, EnvSource::Uniform(env)))
                .collect();
            for (pass, use_cache) in [(0, false), (1, true), (2, true)] {
                ws.sparse = pass != 0;
                let c = if use_cache { Some(&cache) } else { None };
                predictor.predict_batch_into(
                    &refs,
                    EnvSource::Uniform(env),
                    c,
                    &mut ws,
                    &mut out,
                );
                prop_assert_eq!(out.len(), refs.len());
                for (i, (&b, &s)) in out.iter().zip(&single).enumerate() {
                    prop_assert_eq!(
                        b.to_bits(), s.to_bits(),
                        "plan {} pass {} threads {}: batched {} != single {}",
                        i, pass, threads, b, s
                    );
                }
            }
            // The allocating convenience wrapper agrees too.
            let batched = predictor.predict_batch(&refs, EnvSource::Uniform(env), Some(&cache));
            for (&b, &s) in batched.iter().zip(&single) {
                prop_assert_eq!(b.to_bits(), s.to_bits());
            }
            mcsim_par::set_threads(prev);
        }
    }

    /// The SIMD kernel tier produces the scalar reference tier's exact
    /// bits, for single-plan and batched scoring, at every pool width.
    #[test]
    fn simd_kernels_equal_scalar_bitwise(
        seed in 0u64..2000,
        batch in 1usize..10,
    ) {
        let _guard = GLOBAL_STATE.lock().unwrap();
        let plans = plans_from_seed(seed, batch);
        let refs: Vec<&PlanTree> = plans.iter().collect();
        let predictor = AdaptiveCostPredictor::new(seed ^ 0xb17, true);
        let env = EnvMetrics::new(0.4, 0.05, 8.0, 0.5);
        let entry_mode = kernel_mode();
        for threads in THREAD_COUNTS {
            let prev = mcsim_par::set_threads(threads);
            set_kernel_mode(KernelMode::Scalar);
            let scalar_single: Vec<f64> = refs
                .iter()
                .map(|p| predictor.predict(p, EnvSource::Uniform(env)))
                .collect();
            let scalar_batch = predictor.predict_batch(&refs, EnvSource::Uniform(env), None);
            set_kernel_mode(KernelMode::Simd);
            let simd_single: Vec<f64> = refs
                .iter()
                .map(|p| predictor.predict(p, EnvSource::Uniform(env)))
                .collect();
            let simd_batch = predictor.predict_batch(&refs, EnvSource::Uniform(env), None);
            set_kernel_mode(entry_mode);
            for i in 0..refs.len() {
                prop_assert_eq!(
                    simd_single[i].to_bits(), scalar_single[i].to_bits(),
                    "plan {} threads {}: single simd {} != scalar {}",
                    i, threads, simd_single[i], scalar_single[i]
                );
                prop_assert_eq!(
                    simd_batch[i].to_bits(), scalar_batch[i].to_bits(),
                    "plan {} threads {}: batched simd {} != scalar {}",
                    i, threads, simd_batch[i], scalar_batch[i]
                );
            }
            mcsim_par::set_threads(prev);
        }
    }

    /// The structure-of-arrays forest featurization is the per-plan (AoS)
    /// featurization relocated: identical row bits at the plan's node
    /// offset, child links shifted by exactly that offset, and `bounds`
    /// the prefix sum of plan sizes.
    #[test]
    fn soa_forest_featurization_matches_aos(
        seed in 0u64..2000,
        batch in 1usize..10,
        env_bit in 0u8..2,
    ) {
        let plans = plans_from_seed(seed, batch);
        let refs: Vec<&PlanTree> = plans.iter().collect();
        let featurizer = PlanFeaturizer {
            use_env: env_bit == 1,
        };
        let env = EnvMetrics::new(0.6, 0.08, 8.0, 0.45);
        let mut x = tinynn::Mat::default();
        let mut tree = TreeStructure::default();
        let mut bounds = Vec::new();
        featurizer.featurize_forest_into(
            &refs,
            EnvSource::Uniform(env),
            &mut x,
            &mut tree,
            &mut bounds,
        );
        let total: usize = refs.iter().map(|p| p.len()).sum();
        prop_assert_eq!(x.rows, total);
        prop_assert_eq!(bounds.len(), refs.len() + 1);
        prop_assert_eq!(*bounds.last().unwrap(), total);
        for (b, plan) in refs.iter().enumerate() {
            let off = bounds[b];
            prop_assert_eq!(bounds[b + 1] - off, plan.len());
            let (px, ptree) = featurizer.featurize(plan, EnvSource::Uniform(env));
            for i in 0..plan.len() {
                let stacked = x.row(off + i);
                let alone = px.row(i);
                for (c, (&sv, &av)) in stacked.iter().zip(alone).enumerate() {
                    prop_assert_eq!(
                        sv.to_bits(), av.to_bits(),
                        "plan {} node {} col {}: stacked {} != alone {}",
                        b, i, c, sv, av
                    );
                }
                prop_assert_eq!(tree.left[off + i], ptree.left[i].map(|j| j + off));
                prop_assert_eq!(tree.right[off + i], ptree.right[i].map(|j| j + off));
            }
        }
    }
}
