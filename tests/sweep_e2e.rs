//! End-to-end determinism of the scenario-matrix sweep harness.
//!
//! One tiny sweep (2 workload jobs × 2 thread replicas, 8 requests per
//! cell), three guarantees:
//!
//! 1. the whole `SweepReport` is **bit-identical** when the ambient pool
//!    runs at 1, 2, and 8 threads — canonical JSON included;
//! 2. replaying the sweep from its own runbook manifest (cells' seeds +
//!    configs, never the spec) reproduces the report byte for byte;
//! 3. the in-report thread-invariance self-check passes: replicas of the
//!    same job at different pool sizes agree on every metric.
//!
//! Everything runs inside a single `#[test]` so the expensive
//! prepare/train context is built once and the global pool override is
//! never raced by a sibling test.

use loam_bench::exps::sweep::{canonical_report, run_sweep, SweepContext, SweepSpec};
use loam_bench::Scale;

const SPEC: &str = "\
mode = grid
seed = 20260808
requests = 8
batch_size = 4
axis.machines = 8
axis.tenants = 4
axis.fault_scale = 0.0,1.0
axis.arrival = poisson
axis.threads = 1,2
";

#[test]
fn sweep_is_bit_identical_across_thread_counts_and_replays_from_runbook() {
    let spec = SweepSpec::parse(SPEC).expect("spec parses");
    let ctx = SweepContext::prepare(Scale::Small);

    // The same sweep under three different ambient pool sizes. The
    // harness pins each cell's pool itself, so the ambient override must
    // be invisible in the bytes.
    let mut renders = Vec::new();
    for ambient in [1usize, 2, 8] {
        let report = mcsim_par::with_threads(ambient, || {
            run_sweep(&ctx, Scale::Small, &spec).expect("sweep runs")
        });
        assert!(
            report.runbook.thread_invariant,
            "thread replicas must agree at ambient pool {ambient}"
        );
        renders.push(canonical_report(&report));
    }
    assert_eq!(renders[0], renders[1], "1-thread vs 2-thread sweep drifted");
    assert_eq!(renders[0], renders[2], "1-thread vs 8-thread sweep drifted");

    // Replay from the report alone: parse the canonical bytes back (as a
    // consumer of BENCH_sweep.json would), rebuild every cell from the
    // runbook's seeds and configs, and demand the identical document.
    let report: loam_bench::exps::sweep::SweepReport =
        serde_json::from_str(&renders[0]).expect("canonical report reparses");
    assert_eq!(report.runbook.jobs, 2);
    assert_eq!(report.runbook.cells, 4);
    let replayed = loam_bench::exps::sweep::replay(&ctx, &report).expect("runbook replay runs");
    assert_eq!(
        canonical_report(&replayed),
        renders[0],
        "runbook replay must reproduce the report byte for byte"
    );
}
