//! Integration: the end-to-end serving path under fault injection must
//! degrade gracefully — it always terminates, never panics, and every
//! degraded query leaves a typed [`Decision::Fallback`] provenance record
//! whose `query_id` matches the query it degraded.
//!
//! Deliberately exercises the deprecated free-function surface
//! (`run_robust_serving` & co.) so the shims stay behaviorally equivalent
//! to [`loam_core::serving::RobustServer`]; new code should use the latter.
#![allow(deprecated)]

use loam::prelude::*;

fn tiny_profile(id: u32) -> ProjectProfile {
    let mut prof = ProjectProfile::evaluation_project(id as usize).expect("evaluation project");
    prof.n_tables = 20;
    prof.n_temp_tables = 2;
    prof.n_columns = 150;
    prof.n_templates = 10;
    prof.n_query_day0 = 12.0;
    prof
}

fn tiny_cfg() -> PipelineConfig {
    PipelineConfig {
        train_days: 4,
        test_days: 2,
        max_train: 60,
        max_test: 12,
        eval_rounds: 3,
        da_queries: 10,
        ..PipelineConfig::default()
    }
}

/// Prepared project + evaluated candidate sets, without training: the
/// robustness scenarios inject their own (mis)behaving models.
fn evaluated_fixture(id: u32) -> (PreparedProject, Vec<EvaluatedQuery>) {
    let cfg = tiny_cfg();
    let prepared = prepare_project(&tiny_profile(id), ProjectId(id), &cfg).expect("prepare");
    let evaluated = evaluate_candidates(&prepared, &cfg).expect("evaluate");
    (prepared, evaluated)
}

/// A deterministic stand-in predictor: charges per plan node.
struct NodeCountModel;
impl CostModel for NodeCountModel {
    fn name(&self) -> &'static str {
        "node-count"
    }
    fn predict(&self, plan: &PlanTree, _env: EnvSource<'_>) -> f64 {
        plan.len() as f64 * 100.0
    }
    fn size_bytes(&self) -> usize {
        0
    }
}

/// A broken predictor: every score is NaN.
struct NanModel;
impl CostModel for NanModel {
    fn name(&self) -> &'static str {
        "nan"
    }
    fn predict(&self, _plan: &PlanTree, _env: EnvSource<'_>) -> f64 {
        f64::NAN
    }
    fn size_bytes(&self) -> usize {
        0
    }
}

/// A gate that always deploys (the chaos scenarios want to exercise the
/// steered execution path, not the gate rung).
fn permissive_gate() -> GateConfig {
    GateConfig {
        max_avg_ratio: 1e9,
        max_tail_ratio: 1e9,
        max_regression_fraction: 1.0,
    }
}

/// Collects the query ids carrying a [`Decision::Fallback`] record.
fn fallback_ids(ctx: &TraceContext) -> Vec<u64> {
    ctx.decisions()
        .iter()
        .filter_map(|d| match d {
            Decision::Fallback(f) => Some(f.query_id),
            _ => None,
        })
        .collect()
}

#[test]
fn aggressive_chaos_terminates_and_records_fallback_provenance() {
    let (prepared, evaluated) = evaluated_fixture(3);
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    let cfg = RobustConfig {
        gate: permissive_gate(),
        ..RobustConfig::default()
    };

    // 4x the default fault rates plus a tight retry budget, to actually
    // push queries down the ladder.
    let mut exec = ChaosScenario::new(0xbad_c1a0)
        .fault(FaultConfig {
            stage_kill_prob: 0.25,
            ..FaultConfig::chaos(0xbad_c1a0)
        })
        .retry(RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        })
        .build();

    let ctx = TraceContext::new("robustness");
    let report = run_robust_serving(
        &NodeCountModel,
        &strategy,
        &evaluated,
        &mut exec,
        &prepared.project.catalog,
        &cfg,
        Some(&ctx),
    )
    .expect("robust serving must terminate with a report, never panic");

    // Every query landed on some rung of the ladder.
    assert_eq!(report.results.len(), evaluated.len());
    assert!(report.completion_rate() > 0.0);
    // Failed queries carry no cost; completed ones do.
    for r in &report.results {
        if r.resolution == Resolution::Failed {
            assert_eq!(r.cost, 0.0);
        } else {
            assert!(
                r.cost > 0.0,
                "completed query {} with zero cost",
                r.query_id
            );
        }
    }
    // Every degraded query left a Fallback record naming it.
    let ids = fallback_ids(&ctx);
    for r in &report.results {
        if r.resolution.is_degraded() {
            assert!(
                ids.contains(&r.query_id),
                "degraded query {} ({:?}) has no Fallback provenance record",
                r.query_id,
                r.resolution
            );
        }
    }
    // The harness actually injected faults at this rate.
    assert!(
        !exec.cluster.fault_log().is_empty(),
        "aggressive chaos must inject at least one fault"
    );
}

#[test]
fn nan_predictor_degrades_every_query_to_the_default_plan() {
    let (prepared, evaluated) = evaluated_fixture(4);
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    let cfg = RobustConfig {
        gate: permissive_gate(),
        ..RobustConfig::default()
    };
    let mut exec = ChaosScenario::new(7).fault_scale(0.0).build();

    let ctx = TraceContext::new("nan-predictor");
    let report = run_robust_serving(
        &NanModel,
        &strategy,
        &evaluated,
        &mut exec,
        &prepared.project.catalog,
        &cfg,
        Some(&ctx),
    )
    .expect("a broken predictor must degrade, not fail the run");

    assert!((report.completion_rate() - 1.0).abs() < 1e-12);
    let ids = fallback_ids(&ctx);
    for r in &report.results {
        assert_eq!(
            r.resolution,
            Resolution::PredictorFallback,
            "query {} should have fallen back on the NaN prediction",
            r.query_id
        );
        assert!(ids.contains(&r.query_id));
    }
}

#[test]
fn gate_hold_serves_every_query_with_the_default_plan() {
    let (prepared, evaluated) = evaluated_fixture(5);
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    // An impossible gate: avg ratio must be <= 0.
    let impossible = GateConfig {
        max_avg_ratio: 0.0,
        ..GateConfig::default()
    };
    let cfg = RobustConfig {
        gate: impossible,
        ..RobustConfig::default()
    };
    let mut exec = ChaosScenario::new(11).fault_scale(0.0).build();

    let ctx = TraceContext::new("gate-hold");
    let report = run_robust_serving(
        &NodeCountModel,
        &strategy,
        &evaluated,
        &mut exec,
        &prepared.project.catalog,
        &cfg,
        Some(&ctx),
    )
    .expect("gate hold must degrade, not fail the run");

    assert!(!report.gate_deployed);
    assert!((report.completion_rate() - 1.0).abs() < 1e-12);
    let ids = fallback_ids(&ctx);
    for r in &report.results {
        assert_eq!(r.resolution, Resolution::GateFallback);
        assert!(ids.contains(&r.query_id));
    }

    // With the ladder disarmed, the same hold is ignored: queries serve
    // through normal guarded selection instead.
    let mut exec2 = ChaosScenario::new(11).fault_scale(0.0).build();
    let report2 = run_robust_serving(
        &NodeCountModel,
        &strategy,
        &evaluated,
        &mut exec2,
        &prepared.project.catalog,
        &RobustConfig {
            fallback_enabled: false,
            gate: GateConfig {
                max_avg_ratio: 0.0,
                ..GateConfig::default()
            },
            ..RobustConfig::default()
        },
        None,
    )
    .expect("disarmed ladder without faults still completes");
    assert!(report2.results.iter().all(|r| !r.resolution.is_degraded()));
}
