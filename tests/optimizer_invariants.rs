//! Cross-crate invariants of the optimizer + executor substrate, including
//! property-style sweeps over generated workloads.

use loam::prelude::*;
use loam_core::explorer::PlanExplorer;
use mcsim_catalog::CardinalityModel;
use mcsim_plan::stage::decompose;
use proptest::prelude::*;

fn project_from_seed(seed: u64) -> Project {
    let mut prof = ProjectProfile::random(seed);
    prof.n_tables = prof.n_tables.min(40);
    prof.n_columns = prof.n_columns.min(400);
    prof.n_templates = prof.n_templates.min(20);
    prof.generate(ProjectId((seed % 1000) as u32))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_generated_plan_is_valid_and_stageable(seed in 0u64..3000) {
        let project = project_from_seed(seed);
        let optimizer = NativeOptimizer::new(&project.catalog);
        for q in project.workload_for_day(0).iter().take(6) {
            let plan = optimizer.optimize(q, &Knobs::default());
            prop_assert!(plan.validate().is_ok());
            let stages = decompose(&plan);
            // Every node appears in exactly one stage.
            let mut seen = vec![0usize; plan.len()];
            for s in &stages.stages {
                for &n in &s.nodes {
                    seen[n] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
            // True cardinalities are finite and non-negative.
            let cards = CardinalityModel::new(&project.catalog).annotate(&plan);
            prop_assert!(cards.iter().all(|c| c.output_rows.is_finite() && c.output_rows >= 0.0));
        }
    }

    #[test]
    fn explorer_candidates_execute_with_positive_cost(seed in 0u64..2000) {
        let project = project_from_seed(seed);
        let optimizer = NativeOptimizer::new(&project.catalog);
        let explorer = PlanExplorer::default();
        let mut flighting = Flighting::new(seed, 0.2);
        if let Some(q) = project.workload_for_day(0).first() {
            let set = explorer.explore(&optimizer, q);
            prop_assert!(!set.is_empty() && set.len() <= 5);
            for c in &set.candidates {
                let cost = flighting.average_cost(&c.plan, &project.catalog, 2);
                prop_assert!(cost.is_finite() && cost > 0.0);
            }
        }
    }
}

#[test]
fn filter_pushdown_never_increases_true_cost_dramatically() {
    // Pushdown prunes partitions; disabling it reads everything. The
    // intrinsic cost without pushdown must be ≥ with pushdown for filtered
    // scans (modulo the Calc node overhead).
    let project = project_from_seed(77);
    let optimizer = NativeOptimizer::new(&project.catalog);
    let executor = Executor::new(0, Cluster::new(0, ClusterConfig::default()), 0.0);
    let mut checked = 0;
    for q in project.workload_for_days(0, 3).iter().take(40) {
        if q.tables.iter().all(|t| t.predicate.is_true()) {
            continue;
        }
        let with = optimizer.optimize(q, &Knobs::default());
        let without = optimizer.optimize(
            q,
            &Knobs {
                flags: OptimizerFlags {
                    filter_pushdown: false,
                    ..OptimizerFlags::default()
                },
                card_scale: 1.0,
            },
        );
        let c_with = executor.intrinsic_cost(&with, &project.catalog);
        let c_without = executor.intrinsic_cost(&without, &project.catalog);
        assert!(
            c_without >= c_with * 0.95,
            "pushdown should not hurt: {c_with} vs {c_without} (query {})",
            q.id
        );
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn executor_is_deterministic_given_seeds() {
    let project = project_from_seed(5);
    let optimizer = NativeOptimizer::new(&project.catalog);
    let q = &project.workload_for_day(0)[0];
    let plan = optimizer.optimize(q, &Knobs::default());
    let run = || {
        let cluster = Cluster::new(3, ClusterConfig::default());
        let mut exec = Executor::new(3, cluster, 0.2);
        exec.cluster.advance(30);
        exec.execute(&plan, &project.catalog).cpu_cost
    };
    assert_eq!(run(), run());
}

#[test]
fn repository_round_trips_through_serde() {
    let project = project_from_seed(9);
    let repo = build_history(
        &project,
        &HistoryOptions {
            days: 2,
            max_queries: 20,
            ..HistoryOptions::default()
        },
    );
    let json = serde_json::to_string(&repo).expect("serialize");
    let back: QueryRepository = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.len(), repo.len());
    assert_eq!(back.records()[0].signature, repo.records()[0].signature);
}
