//! `loamctl` — a small CLI over the LOAM reproduction.
//!
//! ```text
//! loamctl inspect  --project <1..5> [--scale <0..1>]     project statistics
//! loamctl optimize --project <1..5> [--query <i>] [--all-knobs]
//! loamctl train    --project <1..5> --out <model.json> [--scale <0..1>]
//! loamctl serve    --project <1..5> --model <model.json> [--queries <n>]
//!                  [--requests <n>] [--batch <n>] [--rate <qps>]
//! ```
//!
//! `train` runs the full offline pipeline (history → adaptive training →
//! flighting validation gate) and refuses to write a model that fails the
//! gate. `serve` loads a saved model and drives seeded open-loop traffic
//! over a day's query templates through a `ServeSession` (batched
//! inference, feature + decision caches, graceful degradation).

use loam::prelude::*;
use loam_core::gate::{validate as validate_gate, GateConfig};
use loam_core::persist::{load_predictor, save_predictor};
use std::path::PathBuf;

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn scaled_profile(n: usize, scale: f64) -> ProjectProfile {
    let mut prof = ProjectProfile::evaluation_project(n).unwrap_or_else(|| {
        eprintln!("project must be 1..=5");
        std::process::exit(2);
    });
    if scale < 1.0 {
        let shrink = scale.sqrt().max(0.2);
        prof.n_tables = ((prof.n_tables as f64 * shrink) as usize).max(15);
        prof.n_columns = ((prof.n_columns as f64 * shrink) as usize).max(100);
        prof.n_templates = ((prof.n_templates as f64 * shrink) as usize).max(10);
        prof.n_query_day0 = (prof.n_query_day0 * scale).max(8.0);
    }
    prof
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let project_n: usize = arg_value(&args, "--project")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let scale: f64 = arg_value(&args, "--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.08);

    match cmd {
        "inspect" => inspect(project_n, scale),
        "optimize" => optimize(project_n, scale, &args),
        "train" => train_cmd(project_n, scale, &args),
        "serve" => serve(project_n, scale, &args),
        _ => {
            eprintln!(
                "usage: loamctl <inspect|optimize|train|serve> --project <1..5> [--scale <0..1>] \
                 [--query <i>] [--all-knobs] [--out <file>] [--model <file>] [--queries <n>]"
            );
            std::process::exit(2);
        }
    }
}

fn inspect(project_n: usize, scale: f64) {
    let project = scaled_profile(project_n, scale).generate(ProjectId(project_n as u32));
    println!("{} ({})", project.profile.name, project.id);
    println!("  tables:    {}", project.catalog.table_count());
    println!("  columns:   {}", project.catalog.column_count());
    println!("  templates: {}", project.templates.len());
    println!("  queries/day: {:.0}", project.profile.n_query_day0);
    let stats = mcsim_catalog::stats::summarize_project(&project, 0, 3);
    println!(
        "  avg joined tables: {:.1} (max {})",
        stats.avg_joined_tables, stats.max_joined_tables
    );
    println!(
        "  aggregating: {:.0}%, filtered: {:.0}%, distinct templates: {}, top-template share: {:.0}%",
        stats.aggregation_fraction * 100.0,
        stats.filtered_fraction * 100.0,
        stats.distinct_templates,
        stats.top_template_share * 100.0
    );
    let cfg = FilterConfig::scaled(scale * 0.05);
    let report = evaluate_filter(&project, 0, 5, &cfg);
    println!(
        "  filter: n_query {:.0}/day, growth {:.3}, stable {:.2} → {}",
        report.n_query,
        report.query_inc_ratio,
        report.stable_table_ratio,
        if report.passes() { "PASS" } else { "FILTERED" }
    );
}

fn optimize(project_n: usize, scale: f64, args: &[String]) {
    let project = scaled_profile(project_n, scale).generate(ProjectId(project_n as u32));
    let idx: usize = arg_value(args, "--query")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let queries = project.workload_for_day(0);
    let Some(query) = queries.get(idx) else {
        eprintln!(
            "query index {idx} out of range (day 0 has {})",
            queries.len()
        );
        std::process::exit(2);
    };
    let optimizer = NativeOptimizer::new(&project.catalog);
    if args.iter().any(|a| a == "--all-knobs") {
        let explorer = PlanExplorer::default();
        let set = explorer.explore(&optimizer, query);
        println!("{} candidates (default = #{})", set.len(), set.default_idx);
        for (i, c) in set.candidates.iter().enumerate() {
            println!(
                "\n# candidate {i} (rough cost {:.0}, knobs {:?}, card×{})",
                c.rough_cost, c.knobs.flags, c.knobs.card_scale
            );
            print!("{}", mcsim_plan::display::render(&c.plan));
        }
    } else {
        let plan = optimizer.optimize(query, &Knobs::default());
        print!("{}", mcsim_plan::display::render(&plan));
    }
}

fn train_cmd(project_n: usize, scale: f64, args: &[String]) {
    let out = PathBuf::from(
        arg_value(args, "--out").unwrap_or_else(|| format!("loam-p{project_n}.json")),
    );
    let profile = scaled_profile(project_n, scale);
    let cfg = PipelineConfig::reduced(scale);
    eprintln!("building history ({} days)...", cfg.train_days);
    let fail = |e: LoamError| -> ! {
        eprintln!("pipeline error: {e}");
        std::process::exit(1);
    };
    let prepared =
        prepare_project(&profile, ProjectId(project_n as u32), &cfg).unwrap_or_else(|e| fail(e));
    eprintln!(
        "training on {} executions ({} DA candidates)...",
        prepared.train_samples.len(),
        prepared.da_candidates.len()
    );
    let model = train_loam(&prepared, &cfg).unwrap_or_else(|e| fail(e));
    eprintln!("validating in the flighting environment...");
    let evaluated = evaluate_candidates(&prepared, &cfg).unwrap_or_else(|e| fail(e));
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    let report = validate_gate(&model, &strategy, &evaluated, &GateConfig::default());
    println!(
        "gate: avg ratio {:.3}, worst tail {:.2}, regressions {:.0}% → {}",
        report.avg_ratio,
        report.worst_tail_ratio,
        report.regression_fraction * 100.0,
        if report.deploy() { "DEPLOY" } else { "REJECT" }
    );
    if report.deploy() {
        save_predictor(&model, &out).unwrap_or_else(|e| {
            eprintln!("failed to save model: {e}");
            std::process::exit(1);
        });
        println!("model written to {}", out.display());
    } else {
        eprintln!("model rejected by the deployment gate; not saving");
        std::process::exit(1);
    }
}

fn serve(project_n: usize, scale: f64, args: &[String]) {
    let model_path = PathBuf::from(
        arg_value(args, "--model").unwrap_or_else(|| format!("loam-p{project_n}.json")),
    );
    let n_queries: usize = arg_value(args, "--queries")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let requests: usize = arg_value(args, "--requests")
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let batch: usize = arg_value(args, "--batch")
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let rate: f64 = arg_value(args, "--rate")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64.0);
    let model = load_predictor(&model_path).unwrap_or_else(|e| {
        eprintln!("cannot load model {}: {e}", model_path.display());
        std::process::exit(1);
    });
    let project = scaled_profile(project_n, scale).generate(ProjectId(project_n as u32));
    let optimizer = NativeOptimizer::new(&project.catalog);
    let explorer = PlanExplorer::default();
    let mut flighting = Flighting::new(99, project.profile.env_noise_sigma);

    // The template library: candidate sets for "online" queries from a
    // held-out day, with replayed costs so the deployment gate has
    // something to validate against.
    let queries = project.workload_for_day(26);
    let templates: Vec<EvaluatedQuery> = queries
        .iter()
        .take(n_queries)
        .map(|q| {
            let set = explorer.explore(&optimizer, q);
            let plans: Vec<PlanTree> = set.candidates.iter().map(|c| c.plan.clone()).collect();
            let refs: Vec<&PlanTree> = plans.iter().collect();
            let costs = flighting.replay_synchronized(&refs, &project.catalog, 3);
            EvaluatedQuery {
                query_id: q.id,
                plans,
                costs,
                default_idx: set.default_idx,
            }
        })
        .collect();
    if templates.is_empty() {
        eprintln!("the held-out day has no queries at this scale");
        std::process::exit(1);
    }

    let strategy = EnvStrategy::MeanHistorical(EnvMetrics::new(0.55, 0.05, 8.0, 0.55));
    let cfg = ServeConfig::builder()
        .arrival(ArrivalProfile::Poisson { rate_qps: rate })
        .requests(requests)
        .batch_size(batch)
        .strategy(strategy)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("invalid serving configuration: {e}");
            std::process::exit(2);
        });
    let session = ServeSession::new(cfg).unwrap_or_else(|e| {
        eprintln!("invalid serving configuration: {e}");
        std::process::exit(2);
    });
    let report = session
        .run(&model, &templates, &project.catalog, None)
        .unwrap_or_else(|e| {
            eprintln!("serving failed: {e}");
            std::process::exit(1);
        });

    println!(
        "gate: {} | {} requests over {} templates ({} tenants)",
        if report.gate_deployed {
            "DEPLOY"
        } else {
            "HOLD (serving defaults)"
        },
        report.requests,
        templates.len(),
        session.config().tenants,
    );
    println!(
        "throughput: {:.0} qps in {} batches; latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.qps(),
        report.batches,
        report.latency.p50() * 1e3,
        report.latency.p95() * 1e3,
        report.latency.p99() * 1e3,
    );
    println!(
        "outcomes: {} completed, {} failed, {} shed ({:.1}%)",
        report.completed,
        report.failed,
        report.shed,
        report.shed_rate() * 100.0
    );
    println!(
        "steering: {} steered, {} kept default, {} degraded",
        report.resolution_count(Resolution::Steered),
        report.resolution_count(Resolution::Default),
        report
            .decision_log
            .iter()
            .filter(|d| matches!(
                d.outcome,
                RequestOutcome::Served { resolution, .. } if resolution.is_degraded()
            ))
            .count(),
    );
    println!(
        "caches: feature {:.0}% hit, decision {:.0}% hit",
        report.feature_hit_rate() * 100.0,
        report.decision_hit_rate() * 100.0
    );
}
