//! # loam
//!
//! A reproduction of *"Learned Query Optimizer in Alibaba MaxCompute:
//! Challenges, Analysis, and Solutions"*: the LOAM framework plus the full
//! simulated substrate it needs — a MaxCompute-like query optimizer, a
//! multi-tenant cluster with stochastic load, ground-truth cost physics, and
//! from-scratch neural-network / gradient-boosting libraries.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`mcsim_plan`] — physical plan algebra and stage decomposition;
//! * [`mcsim_catalog`] — projects, synthetic schemas/workloads, the
//!   historical query repository;
//! * [`mcsim_optimizer`] — the native cost-based optimizer with its six
//!   steering flags and cardinality-scaling knob;
//! * [`mcsim_exec`] — the execution simulator and flighting environment;
//! * [`tinynn`] / [`tinygbdt`] — the learning substrates;
//! * [`loam_core`] — LOAM itself: statistics-free featurization, the
//!   adaptive cost predictor with adversarial domain adaptation, inference
//!   strategies under invisible environments, deviance theory, and the
//!   project selector.
//!
//! ## Example
//!
//! ```
//! use loam::prelude::*;
//!
//! let mut profile = ProjectProfile::evaluation_project(1).unwrap();
//! profile.n_tables = 15; profile.n_temp_tables = 2;
//! profile.n_columns = 120; profile.n_templates = 8;
//! let project = profile.generate(ProjectId(1));
//! let optimizer = NativeOptimizer::new(&project.catalog);
//! let query = &project.workload_for_day(0)[0];
//! let plan = optimizer.optimize(query, &Knobs::default());
//! assert!(plan.validate().is_ok());
//! ```

pub use loam_core;
pub use mcsim_catalog;
pub use mcsim_exec;
pub use mcsim_obs;
pub use mcsim_optimizer;
pub use mcsim_plan;
pub use mcsim_serve;
pub use tinygbdt;
pub use tinynn;

/// The most commonly used types, re-exported flat.
///
/// Everything a pipeline driver needs — configuration builders, the
/// `Result`-based entry points with their [`LoamError`](loam_core::LoamError)
/// error type, the
/// deployment gate, persistence, and the observability recorder — is
/// reachable from here without `loam_core::...` paths.
pub mod prelude {
    pub use loam_core::error::LoamError;
    pub use loam_core::explorer::{Candidate, CandidateSet, ExplorerConfig, PlanExplorer};
    pub use loam_core::gate::{GateConfig, GateReport};
    pub use loam_core::inference::{select_plan, EnvStrategy, DEFAULT_MARGIN};
    #[allow(deprecated)] // legacy surface; prefer RobustServer / ServeSession
    pub use loam_core::inference::{select_plan_guarded, select_plan_guarded_traced};
    pub use loam_core::persist::{
        load_predictor, load_ranker, save_predictor, save_ranker, PersistError,
    };
    pub use loam_core::pipeline::{
        evaluate_best_achievable, evaluate_candidates, evaluate_candidates_traced, evaluate_model,
        evaluate_model_traced, evaluate_native, prepare_project, project_improvement_space,
        train_loam, EvaluatedQuery, ModelEvaluation, PipelineConfig, PipelineConfigBuilder,
        PreparedProject,
    };
    pub use loam_core::predictor::baselines::CostModel;
    pub use loam_core::predictor::train::{train, TrainConfig, TrainReport, TrainSample};
    #[allow(deprecated)] // legacy surface; prefer RobustServer / ServeSession
    pub use loam_core::robust::{execute_with_fallback, run_robust_serving, select_plan_robust};
    pub use loam_core::robust::{Resolution, RobustConfig, RobustQueryResult, RobustRunReport};
    pub use loam_core::selector::{
        evaluate_filter, evaluate_filter_traced, ranker_features, FilterConfig, Ranker,
    };
    pub use loam_core::serving::RobustServer;
    pub use loam_core::theory::{Deviance, KsTest, LogNormal};
    pub use loam_core::{validate_deployment, validate_deployment_traced};
    pub use loam_core::{AdaptiveCostPredictor, EnvSource, PlanFeaturizer};
    pub use mcsim_catalog::{
        Catalog, EnvMetrics, Project, ProjectId, ProjectProfile, QueryRepository, QuerySpec,
    };
    pub use mcsim_exec::{
        build_history, ChaosScenario, Cluster, ClusterConfig, ClusterConfigBuilder, EngineMode,
        EngineStats, ExecFailure, Executor, FaultConfig, FaultEvent, Flighting, HistoryOptions,
        InvalidClusterConfig, RetryPolicy,
    };
    pub use mcsim_obs::trace::{
        CandidateScore, Decision, Fallback, GateVerdict, PlanSelection, ProjectFilter,
        ProjectRanking, SelectionOutcome, StageExecEvent, TraceContext, TraceSpan,
    };
    pub use mcsim_obs::{InMemoryRecorder, MetricsSnapshot, NoopRecorder, Recorder};
    pub use mcsim_optimizer::{Knobs, NativeOptimizer, OptimizerFlags};
    pub use mcsim_plan::{Operator, PlanSignature, PlanTree};
    pub use mcsim_serve::{
        ArrivalProfile, DecisionCache, DecisionRecord, RequestOutcome, ServeConfig, ServeReport,
        ServeSession, ShedPolicy,
    };
}
