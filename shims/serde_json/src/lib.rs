//! Offline drop-in shim for the subset of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, `from_str`, and an `Error` type that
//! implements `serde::de::Error`. Works against the vendored serde shim's
//! [`serde::Value`] tree rather than upstream serde's visitor API.

use serde::Value;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl From<serde::de::DeError> for Error {
    fn from(e: serde::de::DeError) -> Self {
        Error { msg: e.0 }
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the value trees this workspace produces; the `Result`
/// mirrors upstream serde_json's signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable, 2-space-indented JSON.
///
/// # Errors
///
/// Never fails for the value trees this workspace produces.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_str(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` prints the shortest string that round-trips the float and
        // always includes a `.0` or exponent, which is valid JSON.
        out.push_str(&format!("{x:?}"));
    } else {
        // Upstream serde_json refuses non-finite floats; emitting null keeps
        // serialization infallible, matching this shim's Result contract.
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: format!("{msg} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1;
                                if !self.eat_lit("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos -= 1;
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape; `pos` is on the `u` on entry
    /// and on the last hex digit on exit.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end - 1;
        Ok(hex)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: f64,
        y: i64,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrapper(u64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Dot,
        Circle(f64),
        Rect { w: f64, h: f64 },
        Pair(i64, i64),
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Generic<T> {
        version: u32,
        inner: T,
    }

    #[test]
    fn struct_round_trip() {
        let p = Point {
            x: 1.5,
            y: -3,
            label: "a \"b\"\nc".to_string(),
        };
        let json = to_string(&p).unwrap();
        let back: Point = from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn enum_round_trip_all_variant_shapes() {
        for s in [
            Shape::Dot,
            Shape::Circle(2.25),
            Shape::Rect { w: 1.0, h: 2.0 },
            Shape::Pair(3, 4),
        ] {
            let json = to_string(&s).unwrap();
            let back: Shape = from_str(&json).unwrap();
            assert_eq!(s, back);
        }
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(to_string(&Wrapper(7)).unwrap(), "7");
        assert_eq!(from_str::<Wrapper>("7").unwrap(), Wrapper(7));
    }

    #[test]
    fn generic_envelope_round_trips() {
        let g = Generic {
            version: 1,
            inner: vec![(1.0f64, 2.0f64), (3.0, 4.0)],
        };
        let back: Generic<Vec<(f64, f64)>> = from_str(&to_string(&g).unwrap()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e300, -2.5e-10, 0.0, -0.0] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn option_round_trips() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(3)];
        let back: Vec<Option<u64>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(from_str::<Point>("not json at all").is_err());
        assert!(from_str::<Point>("{\"x\": 1.0}").is_err());
        assert!(from_str::<Point>("[1, 2,]").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let p = Point {
            x: 2.0,
            y: 9,
            label: "hi".to_string(),
        };
        let pretty = to_string_pretty(&p).unwrap();
        assert!(pretty.contains('\n'));
        let back: Point = from_str(&pretty).unwrap();
        assert_eq!(p, back);
    }
}
