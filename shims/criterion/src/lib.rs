//! Offline drop-in shim for the subset of `criterion` this workspace uses:
//! `black_box`, `Criterion::bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Instead of criterion's
//! statistical machinery it runs a warm-up, collects `sample_size` timed
//! samples (auto-scaling iterations per sample to the measurement budget),
//! and prints min/median/mean per benchmark.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for collecting samples.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets how long to run the routine before timing starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `f` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the routine until the warm-up budget elapses, and
        // estimate its per-iteration cost for sample sizing.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut b);
            warm_iters += b.iters;
        }
        let per_iter = if warm_iters > 0 {
            warm_start.elapsed().as_secs_f64() / warm_iters as f64
        } else {
            1e-9
        };

        // Size each sample so all samples fit the measurement budget.
        let budget_per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget_per_sample / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<32} min {:>12} median {:>12} mean {:>12} ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            samples.len(),
            iters_per_sample,
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Times closures for one sample.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for this sample's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group; mirrors criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
