//! Offline drop-in shim for the subset of `serde` this workspace uses.
//!
//! Instead of upstream serde's visitor machinery, (de)serialization goes
//! through an explicit [`Value`] tree: `Serialize` renders a value tree,
//! `Deserialize` rebuilds from one. The `serde_json` shim then maps the
//! tree to/from JSON text. The derive macros (`serde_derive` shim) emit
//! impls of these traits with upstream-compatible representations:
//! structs as maps, newtype structs as their inner value, tuple structs
//! as sequences, and enums externally tagged.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of (de)serialized data — the interchange format
/// between `Serialize`, `Deserialize`, and the `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON objects preserve field order).
    Map(Vec<(String, Value)>),
}

/// Types renderable to a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`de::DeError`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, de::DeError>;
}

pub mod de {
    //! Deserialization error support.

    /// Error produced when a value tree does not match the target type.
    #[derive(Debug, Clone)]
    pub struct DeError(pub String);

    impl std::fmt::Display for DeError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for DeError {}

    /// Mirror of `serde::de::Error`: constructible from a display-able
    /// message. Implemented by [`DeError`] and by `serde_json::Error`.
    pub trait Error: Sized {
        /// Builds an error carrying `msg`.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for DeError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            DeError(msg.to_string())
        }
    }
}

#[doc(hidden)]
pub mod __private {
    //! Helpers called by `serde_derive`-generated code. Not public API.

    use super::{de::DeError, Value};

    pub fn as_map<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
        match v {
            Value::Map(m) => Ok(m),
            other => Err(DeError(format!("{ty}: expected map, got {other:?}"))),
        }
    }

    pub fn as_seq<'a>(v: &'a Value, len: usize, ty: &str) -> Result<&'a [Value], DeError> {
        match v {
            Value::Seq(s) if s.len() == len => Ok(s),
            Value::Seq(s) => Err(DeError(format!(
                "{ty}: expected sequence of {len}, got {}",
                s.len()
            ))),
            other => Err(DeError(format!("{ty}: expected sequence, got {other:?}"))),
        }
    }

    pub fn field<'a>(m: &'a [(String, Value)], name: &str, ty: &str) -> Result<&'a Value, DeError> {
        m.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError(format!("{ty}: missing field `{name}`")))
    }

    pub fn unknown_variant(got: &str, ty: &str) -> DeError {
        DeError(format!("{ty}: unknown variant `{got}`"))
    }

    pub fn invalid_type(ty: &str, v: &Value) -> DeError {
        DeError(format!("{ty}: value has wrong shape: {v:?}"))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(de::DeError(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    de::DeError(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    other => {
                        return Err(de::DeError(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    de::DeError(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            other => Err(de::DeError(format!("expected float, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            other => Err(de::DeError(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident : $i:tt),+) of $n:expr;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, de::DeError> {
                let s = crate::__private::as_seq(v, $n, "tuple")?;
                Ok(($($t::from_value(&s[$i])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0) of 1;
    (A: 0, B: 1) of 2;
    (A: 0, B: 1, C: 2) of 3;
    (A: 0, B: 1, C: 2, D: 3) of 4;
}
