//! Offline `#[derive(Serialize, Deserialize)]` shim for the vendored serde.
//!
//! Parses the item's token stream directly (no `syn`/`quote` in the
//! container) and emits impls of the shim's `to_value`/`from_value`
//! traits. Supported shapes — the full set this workspace derives on:
//! named/tuple/unit structs, enums with unit/tuple/struct variants
//! (including explicit discriminants), and plain type parameters, which
//! get `::serde::Serialize`/`::serde::Deserialize` bounds added.
//! `#[serde(...)]` attributes are not supported and are rejected. As in
//! upstream serde, named fields of type `Option<...>` are implicitly
//! optional: a missing key deserializes as `None`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    /// (declaration text, usable name, is_type_param) per generic param.
    generics: Vec<(String, String, bool)>,
    data: Data,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// One named field: its identifier and whether its type is `Option<...>`
/// (which makes the key optional on deserialization, as in upstream
/// serde).
struct Field {
    name: String,
    optional: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Derives the serde shim's `Serialize` (a `to_value` impl).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives the serde shim's `Deserialize` (a `from_value` impl).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances past `#[...]` attributes (incl. doc comments), rejecting
/// `#[serde(...)]` which the shim does not implement.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i < toks.len() && is_punct(&toks[i], '#') {
        if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if inner.first().is_some_and(|t| is_ident(t, "serde")) {
                panic!("serde shim: #[serde(...)] attributes are not supported");
            }
            i += 2;
        } else {
            break;
        }
    }
    i
}

/// Advances past an optional `pub` / `pub(crate)` / `pub(in ...)`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && is_ident(&toks[i], "pub") {
        i += 1;
        if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&toks, skip_attrs(&toks, 0));

    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!("serde shim: derive supports only structs and enums");
    };
    i += 1;

    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected type name, got {other}"),
    };
    i += 1;

    let mut generics = Vec::new();
    if i < toks.len() && is_punct(&toks[i], '<') {
        let mut depth = 1usize;
        let mut seg: Vec<TokenTree> = Vec::new();
        i += 1;
        loop {
            let t = &toks[i];
            if is_punct(t, '<') {
                depth += 1;
            } else if is_punct(t, '>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    if !seg.is_empty() {
                        generics.push(parse_generic_param(&seg));
                    }
                    break;
                }
            } else if is_punct(t, ',') && depth == 1 {
                if !seg.is_empty() {
                    generics.push(parse_generic_param(&seg));
                }
                seg = Vec::new();
                i += 1;
                continue;
            }
            seg.push(t.clone());
            i += 1;
        }
    }

    // Skip an optional `where` clause — bounds there are re-stated verbatim
    // nowhere (the workspace never uses one), so just scan to the body.
    if i < toks.len() && is_ident(&toks[i], "where") {
        while i < toks.len()
            && !matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
            && !is_punct(&toks[i], ';')
        {
            i += 1;
        }
    }

    let data = if is_enum {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim: expected enum body, got {other}"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Data::UnitStruct,
        }
    };

    Input {
        name,
        generics,
        data,
    }
}

fn parse_generic_param(seg: &[TokenTree]) -> (String, String, bool) {
    let decl = seg
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    if is_punct(&seg[0], '\'') {
        let name = format!("'{}", seg[1]);
        (decl, name, false)
    } else if is_ident(&seg[0], "const") {
        let name = seg[1].to_string();
        (decl, name, false)
    } else {
        let name = seg[0].to_string();
        (decl, name, true)
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_vis(&toks, skip_attrs(&toks, i));
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected field name, got {other}"),
        };
        i += 1;
        assert!(
            is_punct(&toks[i], ':'),
            "serde shim: expected `:` after field"
        );
        i += 1;
        // An `Option<...>` type (with or without a path prefix) marks the
        // field optional. The last identifier before the first `<` decides
        // — `Option`, `core::option::Option`, etc.
        let mut head_idents: Vec<String> = Vec::new();
        let mut j = i;
        while j < toks.len() && !is_punct(&toks[j], '<') && !is_punct(&toks[j], ',') {
            if let TokenTree::Ident(id) = &toks[j] {
                head_idents.push(id.to_string());
            }
            j += 1;
        }
        let optional = is_punct(&toks[j.min(toks.len().saturating_sub(1))], '<')
            && head_idents.last().is_some_and(|s| s == "Option");
        fields.push(Field { name, optional });
        // Skip the type: everything up to the next comma outside `<...>`.
        let mut depth = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            if is_punct(t, '<') {
                depth += 1;
            } else if is_punct(t, '>') {
                depth -= 1;
            } else if is_punct(t, ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut depth = 0usize;
    let mut count = 0usize;
    let mut seg_has_tokens = false;
    for t in &toks {
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
        } else if is_punct(t, ',') && depth == 0 {
            if seg_has_tokens {
                count += 1;
            }
            seg_has_tokens = false;
            continue;
        }
        seg_has_tokens = true;
    }
    if seg_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected variant name, got {other}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

/// Renders `impl<...> Trait for Name<...>` generics with `bound` added to
/// every plain type parameter.
fn impl_header(item: &Input, trait_path: &str, bound: &str) -> String {
    if item.generics.is_empty() {
        return format!("impl {trait_path} for {}", item.name);
    }
    let decls: Vec<String> = item
        .generics
        .iter()
        .map(|(decl, _, is_type)| {
            if !is_type {
                decl.clone()
            } else if decl.contains(':') {
                format!("{decl} + {bound}")
            } else {
                format!("{decl}: {bound}")
            }
        })
        .collect();
    let names: Vec<String> = item.generics.iter().map(|(_, n, _)| n.clone()).collect();
    format!(
        "impl<{}> {trait_path} for {}<{}>",
        decls.join(", "),
        item.name,
        names.join(", ")
    )
}

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "__m.push((String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Map(__m)"
            )
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), ::serde::Value::Seq(vec![{}]))]),\n",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let elems: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(String::from(\"{vn}\"), ::serde::Value::Map(vec![{}]))]),\n",
                                elems.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(warnings, clippy::all)]\n{} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}\n",
        impl_header(item, "::serde::Serialize", "::serde::Serialize")
    )
}

/// One named-field initializer for deserialization. `Option<...>` fields
/// tolerate a missing key (deserialized as `None`, matching upstream
/// serde); every other field requires its key.
fn field_init(f: &Field, map: &str, ctx: &str) -> String {
    let fname = &f.name;
    if f.optional {
        format!(
            "{fname}: match ::serde::__private::field({map}, \"{fname}\", \"{ctx}\") {{ Ok(__fv) => ::serde::Deserialize::from_value(__fv)?, Err(_) => ::core::option::Option::None }},\n"
        )
    } else {
        format!(
            "{fname}: ::serde::Deserialize::from_value(::serde::__private::field({map}, \"{fname}\", \"{ctx}\")?)?,\n"
        )
    }
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let inits: String = fields.iter().map(|f| field_init(f, "__m", name)).collect();
            format!(
                "let __m = ::serde::__private::as_map(__v, \"{name}\")?;\nOk({name} {{\n{inits}}})"
            )
        }
        Data::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Data::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = ::serde::__private::as_seq(__v, {n}, \"{name}\")?;\nOk({name}({}))",
                inits.join(", ")
            )
        }
        Data::UnitStruct => format!("Ok({name})"),
        Data::Enum(variants) => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        str_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => {
                        map_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__val)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __s = ::serde::__private::as_seq(__val, {n}, \"{name}::{vn}\")?; Ok({name}::{vn}({})) }},\n",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let ctx = format!("{name}::{vn}");
                        let inits: String =
                            fields.iter().map(|f| field_init(f, "__m2", &ctx)).collect();
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __m2 = ::serde::__private::as_map(__val, \"{name}::{vn}\")?; Ok({name}::{vn} {{\n{inits}}}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {str_arms}__other => Err(::serde::__private::unknown_variant(__other, \"{name}\")),\n\
                 }},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __val) = &__m[0];\n\
                 match __k.as_str() {{\n\
                 {map_arms}__other => Err(::serde::__private::unknown_variant(__other, \"{name}\")),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::__private::invalid_type(\"{name}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(warnings, clippy::all)]\n{} {{\n fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::de::DeError> {{\n {body}\n }}\n}}\n",
        impl_header(item, "::serde::Deserialize", "::serde::Deserialize")
    )
}
