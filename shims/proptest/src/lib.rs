//! Offline drop-in shim for the subset of `proptest` this workspace uses.
//!
//! Random-input testing without shrinking: each `proptest!` test draws
//! `ProptestConfig::cases` inputs from its strategies using a per-test
//! deterministic RNG (seeded from the test's module path + name), runs the
//! body, and panics with the failing case index on the first `prop_assert!`
//! failure. Strategies cover what the workspace's property tests need:
//! numeric ranges, tuples, `prop_map`/`prop_flat_map`/`prop_recursive`,
//! `prop_oneof!`, and `collection::vec`.

pub mod test_runner {
    //! Deterministic RNG driving input generation.

    /// Per-test random source (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the RNG for a test, seeded from its fully-qualified name
        /// so every test gets a distinct but reproducible stream.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Run configuration: how many random cases each test executes.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a depth-bounded recursive strategy: each of `depth`
        /// wrapping levels flips a coin between the base (`self`) and one
        /// application of `f` to the strategy built so far. The
        /// `_desired_size`/`_expected_branch_size` hints are accepted for
        /// upstream signature compatibility and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                cur = Union::new(vec![base.clone(), f(cur).boxed()]).boxed();
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Always produces clones of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }
    impl_range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident : $i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vectors of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: draws inputs from strategies and runs the body
/// for `ProptestConfig::cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!("proptest case {}/{} failed: {}", __case + 1, __cfg.cases, __msg);
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

/// Asserts inside a `proptest!` body; failures abort the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(u32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn leaf_max(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(v) => *v,
            Tree::Node(a, b) => leaf_max(a).max(leaf_max(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in -3i64..=3, z in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..=3).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn flat_map_threads_dependencies(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u8..10, n..=n)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn recursive_strategies_are_depth_bounded(t in (0u32..100)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            }))
        {
            prop_assert!(depth(&t) <= 5, "depth {}", depth(&t));
            prop_assert!(leaf_max(&t) < 100);
        }
    }

    #[test]
    fn same_test_name_gives_same_stream() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.clone().generate(&mut a), s.clone().generate(&mut b));
        }
    }
}
