//! Offline drop-in shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal, API-compatible reimplementation: `StdRng` (xoshiro256++ seeded
//! via SplitMix64), the `Rng`/`RngCore`/`SeedableRng` traits with
//! `gen`/`gen_range`/`gen_bool`, and `seq::SliceRandom::shuffle`.
//! Determinism per seed is guaranteed, but streams differ from upstream
//! `rand` — all workspace seeds/tolerances were calibrated against this
//! implementation.

use core::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Element types uniformly samplable from a bounded range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` or `[lo, hi]` when `inclusive`.
    /// Panics on empty ranges.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly; generic over the element type so
/// literals in ranges unify with the caller's expected type, as with
/// upstream rand's `SampleRange<T>`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Multiply-shift bounded sampling (Lemire); bias is negligible for the
    // simulator's range sizes and keeps the hot path branch-free.
    (((rng.next_u64() as u128) * (n as u128)) >> 64) as u64
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + uniform_u64_below(rng, span + 1) as $t
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                    lo + uniform_u64_below(rng, (hi - lo) as u64) as $t
                }
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range");
                    if span >= u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + uniform_u64_below(rng, span as u64 + 1) as i128) as $t
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                    (lo as i128 + uniform_u64_below(rng, span as u64) as i128) as $t
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range");
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                }
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move elements");
    }
}
