//! Canonical JSON: byte-stable serialization for machine-diffable reports.
//!
//! The sweep harness's whole value is that a report is a *fingerprint*: the
//! same spec and seed must produce the same bytes on every rerun, at every
//! thread count, so CI can diff whole scenario matrices with `cmp`. That
//! requires a serialization with no degrees of freedom:
//!
//! * **Sorted keys** — every JSON object's keys are emitted in ascending
//!   byte order, regardless of struct field order or map insertion order.
//! * **Fixed float formatting** — a float renders as its shortest
//!   round-trip decimal (Rust's `{}` for `f64`), with integral values
//!   forced to one decimal place (`2.0`, never `2`) so a reparsed value
//!   re-serializes to the identical bytes. Non-finite values render as
//!   `null` (canonical JSON has no NaN/∞).
//! * **No whitespace** — compact, comma/colon separated.
//!
//! The round-trip stability property (serialize → parse → serialize is the
//! identity on bytes) is what the golden-file test pins down.
//!
//! Hashes over canonical bytes use 64-bit FNV-1a rendered as 16 hex
//! digits — dependency-free and stable across platforms.

use serde::{Serialize, Value};

/// Renders a value tree as canonical JSON (sorted keys, fixed float
/// formatting, no whitespace).
pub fn canonical(v: &Value) -> String {
    let mut out = String::new();
    write_canonical(v, &mut out);
    out
}

/// [`canonical`] over any `Serialize` type.
pub fn canonical_of<T: Serialize>(t: &T) -> String {
    canonical(&t.to_value())
}

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A 64-bit hash as 16 lowercase hex digits.
pub fn hex16(h: u64) -> String {
    format!("{h:016x}")
}

/// The canonical hash of a serializable value: FNV-1a over its canonical
/// JSON bytes, as 16 hex digits.
pub fn hash_of<T: Serialize>(t: &T) -> String {
    hex16(fnv1a64(canonical_of(t).as_bytes()))
}

/// Canonical rendering of one `f64` (see the module docs for the rules).
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    // Integral values gain a forced `.0` so they reparse as floats and
    // re-serialize identically; 2⁵³ bounds where `{:.1}` is still exact.
    if x == x.trunc() && x.abs() < 9_007_199_254_740_992.0 {
        format!("{x:.1}")
    } else {
        // Shortest round-trip decimal: `parse(fmt(x)) == x` exactly, so a
        // reparse cannot change the next serialization.
        format!("{x}")
    }
}

fn write_canonical(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&fmt_f64(*x)),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            // Sort key *references*; on duplicate keys the last entry wins
            // (matching object-update semantics), deterministically. The
            // stable sort keeps equal keys in insertion order, so the last
            // of each run is the last inserted.
            let mut sorted: Vec<&(String, Value)> = entries.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            let mut kept: Vec<&(String, Value)> = Vec::with_capacity(sorted.len());
            for e in sorted {
                match kept.last_mut() {
                    Some(last) if last.0 == e.0 => *last = e,
                    _ => kept.push(e),
                }
            }
            out.push('{');
            for (i, (k, item)) in kept.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_canonical(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_sort_and_floats_format_fixed() {
        let v = Value::Map(vec![
            ("zeta".into(), Value::F64(2.0)),
            ("alpha".into(), Value::F64(0.1)),
            (
                "mid".into(),
                Value::Seq(vec![Value::U64(3), Value::I64(-4)]),
            ),
        ]);
        assert_eq!(canonical(&v), r#"{"alpha":0.1,"mid":[3,-4],"zeta":2.0}"#);
    }

    #[test]
    fn serialize_parse_serialize_is_byte_identity() {
        // Exercise integral floats, shortest-repr fractions, negatives,
        // nested maps in unsorted order, and escapes.
        let v = Value::Map(vec![
            ("b".into(), Value::F64(1234.5678)),
            ("a".into(), Value::F64(-0.000125)),
            ("c".into(), Value::F64(42.0)),
            (
                "d".into(),
                Value::Map(vec![
                    ("y".into(), Value::Str("line\n\"q\"".into())),
                    ("x".into(), Value::Bool(true)),
                ]),
            ),
        ]);
        let first = canonical(&v);
        let reparsed: Value = serde_json::from_str(&first).expect("canonical JSON parses");
        assert_eq!(canonical(&reparsed), first);
    }

    #[test]
    fn float_formatting_is_idempotent_over_reparse() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -3.0,
            0.1,
            1.5,
            1e-7,
            123_456_789.25,
            f64::MAX,
            4_503_599_627_370_496.5,
        ] {
            let s = fmt_f64(x);
            let back: f64 = s.parse().expect("formatted float parses");
            assert_eq!(fmt_f64(back), s, "x={x}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(-7.0), "-7.0");
        assert_eq!(fmt_f64(0.5), "0.5");
    }

    #[test]
    fn hashes_are_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        // The classic FNV-1a test vector.
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hex16(0xaf), "00000000000000af");
        let a = hash_of(&vec![1u64, 2, 3]);
        let b = hash_of(&vec![1u64, 2, 4]);
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn duplicate_keys_resolve_deterministically() {
        let v = Value::Map(vec![
            ("k".into(), Value::U64(1)),
            ("k".into(), Value::U64(2)),
        ]);
        assert_eq!(canonical(&v), r#"{"k":2}"#);
    }
}
