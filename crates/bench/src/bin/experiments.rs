//! The experiment harness: regenerates every table and figure of the LOAM
//! paper's evaluation.
//!
//! ```text
//! experiments <id|all> [--scale small|medium|full] [--threads N]
//!
//!   fig1   cost variance of recurring queries
//!   fig5   cost vs machine load
//!   tab1   evaluation-project statistics
//!   fig6   end-to-end comparison (LOAM vs baselines vs MaxCompute)
//!   fig7   per-query improvements/regressions
//!   fig8   performance vs training-set size
//!   fig9   training time / model size / inference time
//!   fig10  cost-inference strategies (LOAM vs CE/CB/NL)
//!   fig11  adaptive-training ablation (LOAM vs LOAM-NA)
//!   fig12  Ranker vs Random
//!   fig15  log-normal cost distributions
//!   fig16  Ranker vs number of training projects
//!   sec73  population-wide benefit estimate
//!   thm1   Theorem 1 ordering checks
//!
//!   parallel  serial-vs-pool wall-clock benchmark over the fig5+fig7
//!             subset; writes BENCH_parallel.json
//!   train     training hot-path benchmark (legacy allocating vs the
//!             workspace engine, serial vs microbatch pool, allocations
//!             per step); writes BENCH_train.json
//!   trace     one representative query end-to-end under a per-query
//!             TraceContext; writes trace.json (chrome://tracing) and
//!             trace_report.txt
//!   chaos     robust serving under fault injection at increasing fault
//!             rates (completion rate, retries, wasted work, cost
//!             overhead); `--quick` restricts to the 0x/1x levels; writes
//!             BENCH_chaos.json
//!   serve     high-throughput serving sessions: batched + cached vs
//!             single-query QPS on the same seeded arrival trace, with
//!             latency percentiles, shed rate, and cache hit rates;
//!             `--quick` restricts to the single/batched pair; writes
//!             BENCH_serve.json
//!   exec      simulation-core scaling: dense per-tick reference vs the
//!             event-driven engine over 1k/5k/10k-machine pools, plus the
//!             10k-machine × 1M-query headline session; `--quick`
//!             restricts to the 1k pool and skips the headline; writes
//!             BENCH_exec.json
//!   infer     inference hot path: legacy single-plan scoring vs the
//!             workspace-batched SIMD forward (dense/sparse, cold/warm
//!             feature cache) over the fig7 candidate sets, with a
//!             bit-identity check and steady-state allocation probe;
//!             `--quick` shrinks the workload; writes BENCH_infer.json
//!   sweep     deterministic scenario matrix: a declarative spec (grid or
//!             seeded Latin hypercube) over {machines × tenants ×
//!             fault_scale × arrival × threads}, every cell a seeded
//!             serve pass over the once-trained pipeline; `--quick` runs
//!             the embedded 16-cell grid, `--spec FILE` a custom spec;
//!             writes canonical-JSON BENCH_sweep.json (bit-identical
//!             across reruns and thread counts)
//!
//! experiments compare <old.json> <new.json> [--threshold <pct>]
//!
//!   diff two BENCH_*.json reports. Timing reports (BENCH_parallel.json
//!   and friends share the phase schema) gate on pool wall-clock;
//!   BENCH_sweep.json reports diff cell-by-cell on deterministic metrics.
//!   Exit codes: 0 ok, 1 regression past the threshold (default 25%), 2 on
//!   parse errors, 3 when the reports are structurally incomparable
//!   (mixed kinds or missing sweep cells)
//!
//! `--threads N` overrides the mcsim-par pool size for the whole run
//! (equivalent to MCSIM_PAR_THREADS=N).
//! ```

use loam_bench::exps;
use loam_bench::exps::common::{run_all_projects, ProjectRun};
use loam_bench::Scale;
use std::sync::Arc;

// Count every heap allocation so `experiments train` can prove the workspace
// engine's steady state allocates nothing per optimizer step. The probe is a
// relaxed atomic increment around the system allocator — noise-level
// overhead for every other experiment.
#[global_allocator]
static ALLOC: tinynn::workspace::alloc_probe::CountingAllocator =
    tinynn::workspace::alloc_probe::CountingAllocator;

/// Prints the harness-wide metrics snapshot as a single JSON line.
fn emit_metrics(id: &str, scale: Scale, recorder: &mcsim_obs::InMemoryRecorder) {
    let scale_name = format!("{scale:?}").to_lowercase();
    println!("\n=== metrics (JSON) ===");
    println!(
        "{}",
        loam_bench::metrics_json(id, &scale_name, &recorder.snapshot())
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let id = args.get(1).map(String::as_str).unwrap_or("all");

    // `compare` is a pure file diff: no project context, no recorder.
    if id == "compare" {
        let (Some(old_path), Some(new_path)) = (args.get(2), args.get(3)) else {
            eprintln!("usage: experiments compare <old.json> <new.json> [--threshold <pct>]");
            std::process::exit(2);
        };
        let threshold = args
            .iter()
            .position(|a| a == "--threshold")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(25.0);
        std::process::exit(exps::compare::run(old_path, new_path, threshold));
    }
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Small);
    if let Some(n) = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
    {
        mcsim_par::set_threads(n);
        eprintln!("pool size overridden: {n} thread(s)");
    }

    // Collect pipeline metrics (phase timings, counters, histograms) for the
    // whole run; dumped as JSON at the end.
    let recorder = Arc::new(mcsim_obs::InMemoryRecorder::new());
    mcsim_obs::install(recorder.clone());

    let started = std::time::Instant::now();
    eprintln!("running `{id}` at {scale:?} scale");

    // `chaos`, `serve`, `exec`, `infer`, and `sweep` are context-free too,
    // but take the extra `--quick` flag (`sweep` also `--spec FILE`).
    if id == "chaos" || id == "serve" || id == "exec" || id == "infer" || id == "sweep" {
        let quick = args.iter().any(|a| a == "--quick");
        match id {
            "chaos" => exps::chaos::run(scale, quick),
            "serve" => exps::serve::run(scale, quick),
            "exec" => exps::exec::run(scale, quick),
            "sweep" => {
                let spec_path = args
                    .iter()
                    .position(|a| a == "--spec")
                    .and_then(|i| args.get(i + 1))
                    .map(String::as_str);
                exps::sweep::run(scale, quick, spec_path);
            }
            _ => exps::infer::run(scale, quick),
        }
        emit_metrics(id, scale, &recorder);
        return;
    }

    // Experiments that do not need the five evaluation-project runs.
    let context_free: Option<fn(Scale)> = match id {
        "fig1" => Some(exps::fig1::run),
        "fig5" => Some(exps::fig5::run),
        "fig12" => Some(exps::fig12::run),
        "fig15" => Some(exps::fig15::run),
        "fig16" => Some(exps::fig16::run),
        "sec73" => Some(exps::sec73::run),
        "thm1" => Some(exps::thm1::run),
        "parallel" => Some(exps::parallel::run),
        "trace" => Some(exps::trace::run),
        "train" => Some(exps::train::run),
        _ => None,
    };
    if let Some(run) = context_free {
        run(scale);
        emit_metrics(id, scale, &recorder);
        return;
    }

    // Everything else shares the prepared/trained/evaluated project context.
    eprintln!("preparing the five evaluation projects (history, training, replay)...");
    let runs: Vec<ProjectRun> = run_all_projects(scale);
    eprintln!(
        "context ready in {:.0}s; running experiments",
        started.elapsed().as_secs_f64()
    );

    let with_context = |id: &str, runs: &[ProjectRun]| match id {
        "tab1" => exps::tab1::print(runs),
        "fig6" | "fig9" => {
            let rows: Vec<_> = runs.iter().map(exps::fig6::evaluate_run).collect();
            if id == "fig6" {
                exps::fig6::print(&rows);
            } else {
                exps::fig9::print(runs, &rows);
            }
        }
        "fig7" => exps::fig7::print(runs),
        "fig8" => exps::fig8::print(runs),
        "fig10" => {
            let rows: Vec<_> = runs.iter().map(exps::fig10::evaluate_run).collect();
            exps::fig10::print(&rows);
        }
        "fig11" => {
            let rows: Vec<_> = runs.iter().map(exps::fig11::evaluate_run).collect();
            exps::fig11::print(&rows);
        }
        other => eprintln!("unknown experiment id `{other}`"),
    };

    if id == "all" {
        // Context-free experiments first.
        for free in ["fig1", "fig5", "fig15", "thm1", "fig12", "fig16"] {
            println!("\n════════════════════════════════════════════════════════════");
            match free {
                "fig1" => exps::fig1::run(scale),
                "fig5" => exps::fig5::run(scale),
                "fig15" => exps::fig15::run(scale),
                "thm1" => exps::thm1::run(scale),
                "fig12" => exps::fig12::run(scale),
                "fig16" => exps::fig16::run(scale),
                _ => unreachable!(),
            }
        }
        // Shared-context experiments: compute Figure 6 rows once.
        println!("\n════════════════════════════════════════════════════════════");
        exps::tab1::print(&runs);
        let rows: Vec<_> = runs.iter().map(exps::fig6::evaluate_run).collect();
        println!("\n════════════════════════════════════════════════════════════");
        exps::fig6::print(&rows);
        println!("\n════════════════════════════════════════════════════════════");
        exps::fig7::print(&runs);
        println!("\n════════════════════════════════════════════════════════════");
        exps::fig9::print(&runs, &rows);
        println!("\n════════════════════════════════════════════════════════════");
        let rows10: Vec<_> = runs.iter().map(exps::fig10::evaluate_run).collect();
        exps::fig10::print(&rows10);
        println!("\n════════════════════════════════════════════════════════════");
        let rows11: Vec<_> = runs.iter().map(exps::fig11::evaluate_run).collect();
        exps::fig11::print(&rows11);
        println!("\n════════════════════════════════════════════════════════════");
        exps::fig8::print(&runs);
        // Section 7.3 re-stated with the measured Figure 6 gains (the
        // paper's own estimation procedure).
        println!("\n════════════════════════════════════════════════════════════");
        let gains: Vec<f64> = rows
            .iter()
            .map(|r| 1.0 - r.loam.avg_cost / r.native.avg_cost)
            .collect();
        exps::sec73::run_with_gains(scale, &gains);
    } else {
        with_context(id, &runs);
    }

    emit_metrics(id, scale, &recorder);
    eprintln!("\ntotal wall time: {:.0}s", started.elapsed().as_secs_f64());
}
