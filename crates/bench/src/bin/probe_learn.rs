//! Learnability probe: can the TCN + featurization rank candidate plans at
//! all, when supervised *directly* on candidate plans with noise-free
//! intrinsic costs? This isolates architecture/feature capacity from the
//! default-plans-only supervision gap.

use loam_bench::{scaled_eval_profile, Scale};
use loam_core::explorer::PlanExplorer;
use loam_core::featurize::EnvSource;
use loam_core::predictor::train::{train, TrainConfig, TrainSample};
use loam_core::AdaptiveCostPredictor;
use mcsim_catalog::{EnvMetrics, ProjectId};
use mcsim_exec::{Cluster, ClusterConfig, Executor};
use mcsim_optimizer::NativeOptimizer;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let project_n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let n_train: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
    let epochs: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(20);

    let profile = scaled_eval_profile(project_n, Scale::Medium);
    let project = profile.generate(ProjectId(project_n as u32));
    let optimizer = NativeOptimizer::new(&project.catalog);
    let explorer = PlanExplorer::default();
    let executor = Executor::new(1, Cluster::new(1, ClusterConfig::default()), 0.0);
    let env = EnvMetrics::new(0.5, 0.04, 8.0, 0.55);

    // Candidate plans with intrinsic-cost labels (no env, no noise).
    let queries = project.workload_for_days(0, 20);
    let mut samples = Vec::new();
    let mut held_out: Vec<Vec<(mcsim_plan::PlanTree, f64)>> = Vec::new();
    for (i, q) in queries.iter().enumerate().take(n_train + 100) {
        let set = explorer.explore(&optimizer, q);
        let labeled: Vec<(mcsim_plan::PlanTree, f64)> = set
            .candidates
            .into_iter()
            .map(|c| {
                let cost = executor.intrinsic_cost(&c.plan, &project.catalog);
                (c.plan, cost)
            })
            .collect();
        if i < n_train {
            for (plan, cost) in labeled {
                samples.push(TrainSample {
                    plan,
                    stage_envs: vec![env],
                    cost,
                });
            }
        } else if labeled.len() >= 2 {
            held_out.push(labeled);
        }
    }
    eprintln!(
        "training on {} candidate plans from {} queries; {} held-out sets",
        samples.len(),
        n_train,
        held_out.len()
    );

    let mut model = AdaptiveCostPredictor::new(7, true);
    let cfg = TrainConfig {
        epochs,
        adaptive: false,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &samples, &[], env, &cfg);
    eprintln!(
        "final train loss {:.4} ({:.0}s)",
        report.cost_loss.last().unwrap(),
        report.seconds
    );

    // Within-set concordance on held-out queries.
    let mut conc = 0usize;
    let mut tot = 0usize;
    let mut top1 = 0usize;
    for set in &held_out {
        let preds: Vec<f64> = set
            .iter()
            .map(|(p, _)| model.predict(p, EnvSource::Uniform(env)))
            .collect();
        let truths: Vec<f64> = set.iter().map(|(_, c)| *c).collect();
        for i in 0..preds.len() {
            for j in i + 1..preds.len() {
                if truths[i] != truths[j] {
                    tot += 1;
                    if (preds[i] - preds[j]) * (truths[i] - truths[j]) > 0.0 {
                        conc += 1;
                    }
                }
            }
        }
        let best_pred = (0..preds.len())
            .min_by(|&a, &b| preds[a].partial_cmp(&preds[b]).unwrap())
            .unwrap();
        let best_true = (0..truths.len())
            .min_by(|&a, &b| truths[a].partial_cmp(&truths[b]).unwrap())
            .unwrap();
        if best_pred == best_true {
            top1 += 1;
        }
    }
    println!(
        "held-out within-set concordance: {:.3}; top-1 accuracy {:.2} over {} sets",
        conc as f64 / tot.max(1) as f64,
        top1 as f64 / held_out.len().max(1) as f64,
        held_out.len()
    );
}
