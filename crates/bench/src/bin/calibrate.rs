//! Calibration probe: measures each evaluation project's improvement space
//! `D(M_d)` (relative deviance of the native optimizer's default plans) and
//! the diversity of the candidate sets — the quantities the project
//! profiles are tuned against (paper targets: P1 ≈ 25 %, P2 ≈ 43 %,
//! P3 ≈ 20 %, P4 ≈ 23 %, P5 ≈ 40 %).

use loam_bench::{fmt_row, scaled_eval_profile, Scale, Table};
use loam_core::explorer::PlanExplorer;
use loam_core::theory::deviance::{best_achievable_deviance, deviance_of_choice};
use mcsim_catalog::ProjectId;
use mcsim_exec::Flighting;
use mcsim_optimizer::NativeOptimizer;
use mcsim_plan::PlanTree;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .get(1)
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Small);
    let n_queries: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(40);
    let rounds: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(5);

    let mut table = Table::new([
        "project",
        "queries",
        "avg cands",
        "avg cost (native)",
        "D(Md) rel",
        "D(Mb) rel",
        "paper D(Md)",
    ]);
    let paper = [0.25, 0.43, 0.20, 0.23, 0.40];

    for n in 1..=5 {
        let prof = scaled_eval_profile(n, scale);
        let project = prof.generate(ProjectId(n as u32));
        let optimizer = NativeOptimizer::new(&project.catalog);
        let explorer = PlanExplorer::default();
        let mut flighting = Flighting::new(7 + n as u64, project.profile.env_noise_sigma);

        let queries: Vec<_> = project
            .workload_for_days(0, 10)
            .into_iter()
            .take(n_queries)
            .collect();
        let mut dev_sum = 0.0;
        let mut devb_sum = 0.0;
        let mut oracle_sum = 0.0;
        let mut native_sum = 0.0;
        let mut cand_count = 0usize;
        for q in &queries {
            let set = explorer.explore(&optimizer, q);
            cand_count += set.len();
            let plans: Vec<&PlanTree> = set.candidates.iter().map(|c| &c.plan).collect();
            let costs = flighting.replay_synchronized(&plans, &project.catalog, rounds);
            let d = deviance_of_choice(&costs, set.default_idx);
            let db = best_achievable_deviance(&costs);
            dev_sum += d.expected;
            devb_sum += db.expected;
            oracle_sum += d.oracle_cost;
            native_sum += d.expected + d.oracle_cost;
        }
        // Per-knob win analysis: which knob produced the per-round best plan.
        let mut knob_wins: std::collections::HashMap<String, usize> = Default::default();
        for q in queries.iter().take(20) {
            let set = explorer.explore(&optimizer, q);
            let plans: Vec<&PlanTree> = set.candidates.iter().map(|c| &c.plan).collect();
            let costs = flighting.replay_synchronized(&plans, &project.catalog, rounds);
            let means: Vec<f64> = (0..plans.len())
                .map(|i| costs.iter().map(|r| r[i]).sum::<f64>() / rounds as f64)
                .collect();
            let best = means
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            if means[best] < means[set.default_idx] * 0.95 {
                let k = &set.candidates[best].knobs;
                let label = if k.is_default() {
                    "default".to_string()
                } else if k.card_scale != 1.0 {
                    format!("card={}", k.card_scale)
                } else {
                    let d = mcsim_optimizer::OptimizerFlags::default().as_array();
                    let a = k.flags.as_array();
                    let idx = (0..6).find(|&i| a[i] != d[i]).unwrap();
                    ["merge", "bcast", "shufrm", "spool", "pushdn", "sortagg"][idx].to_string()
                };
                *knob_wins.entry(label).or_default() += 1;
            }
        }
        eprintln!("P{n} knob wins: {:?}", knob_wins);
        let nq = queries.len() as f64;
        table.row([
            format!("P{n}"),
            format!("{}", queries.len()),
            format!("{:.1}", cand_count as f64 / nq),
            fmt_row(native_sum / nq),
            format!("{:.3}", dev_sum / oracle_sum),
            format!("{:.3}", devb_sum / oracle_sum),
            format!("{:.2}", paper[n - 1]),
        ]);
    }
    println!("{}", table.render());
}
