//! End-to-end probe on one project: trains LOAM (+ the LOAM-NA ablation)
//! and compares against MaxCompute and the best-achievable model. Used
//! during development to validate the Figure 6/11 shapes before running the
//! full harness.

use loam_bench::{scaled_eval_profile, scaled_pipeline_config, Scale};
use loam_core::inference::EnvStrategy;
use loam_core::pipeline::{
    evaluate_best_achievable, evaluate_candidates, evaluate_model, evaluate_native,
    prepare_project, train_loam,
};
use loam_core::predictor::train::{train, TrainConfig};
use loam_core::AdaptiveCostPredictor;
use mcsim_catalog::ProjectId;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let project_n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let scale = args
        .get(2)
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Small);

    let profile = scaled_eval_profile(project_n, scale);
    let cfg = scaled_pipeline_config(scale);
    eprintln!(
        "preparing project {project_n} ({} days history)...",
        cfg.train_days
    );
    let t0 = std::time::Instant::now();
    let prepared =
        prepare_project(&profile, ProjectId(project_n as u32), &cfg).expect("prepare failed");
    eprintln!(
        "prepared: {} train samples, {} test queries, {} DA candidates ({:.1}s)",
        prepared.train_samples.len(),
        prepared.test_queries.len(),
        prepared.da_candidates.len(),
        t0.elapsed().as_secs_f64()
    );

    let t1 = std::time::Instant::now();
    let loam = train_loam(&prepared, &cfg).expect("training failed");
    eprintln!("LOAM trained ({:.1}s)", t1.elapsed().as_secs_f64());

    // LOAM-NA: no adversarial domain adaptation.
    let mut na = AdaptiveCostPredictor::new(cfg.seed ^ 0x10a0, true);
    let na_cfg = TrainConfig {
        adaptive: false,
        ..cfg.train_cfg
    };
    train(
        &mut na,
        &prepared.train_samples,
        &[],
        prepared.mean_env,
        &na_cfg,
    );

    let t2 = std::time::Instant::now();
    let evaluated = evaluate_candidates(&prepared, &cfg).expect("evaluation failed");
    eprintln!(
        "evaluated {} queries ({:.1}s)",
        evaluated.len(),
        t2.elapsed().as_secs_f64()
    );

    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    let native = evaluate_native(&evaluated).expect("native evaluation failed");
    let best = evaluate_best_achievable(&evaluated).expect("best-achievable evaluation failed");
    let loam_eval = evaluate_model(&loam, &strategy, &evaluated).expect("model evaluation failed");
    let na_eval = evaluate_model(&na, &strategy, &evaluated).expect("model evaluation failed");

    println!(
        "\nProject {project_n} — avg E2E CPU cost over {} test queries:",
        evaluated.len()
    );
    for m in [&native, &na_eval, &loam_eval, &best] {
        println!(
            "  {:<16} {:>12.1}  (dev rel {:.3})",
            m.name, m.avg_cost, m.deviance.relative
        );
    }
    let gain = 1.0 - loam_eval.avg_cost / native.avg_cost;
    println!("LOAM gain over MaxCompute: {:.1}%", gain * 100.0);

    // Worst regressions of the DA model: which candidates blew up?
    {
        let mut blowups: Vec<(f64, usize, usize)> = Vec::new(); // ratio, query idx, choice
        for (qi, eq) in evaluated.iter().enumerate() {
            let refs: Vec<&mcsim_plan::PlanTree> = eq.plans.iter().collect();
            let (choice, _) = loam_core::inference::select_plan(&loam, &refs, &strategy);
            let ratio = eq.mean_cost(choice) / eq.default_cost();
            blowups.push((ratio, qi, choice));
        }
        blowups.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        println!("\nworst LOAM picks (true_cost/default):");
        for &(ratio, qi, choice) in blowups.iter().take(5) {
            let eq = &evaluated[qi];
            let ops: Vec<&str> = eq.plans[choice]
                .preorder()
                .iter()
                .map(|&id| eq.plans[choice].op(id).op_type().mnemonic())
                .collect();
            println!(
                "  q{qi}: ratio {:.1} (default {:.0}, chosen {:.0}) plan ops: {}",
                ratio,
                eq.default_cost(),
                eq.mean_cost(choice),
                ops.join(",")
            );
        }
    }

    // Ranking diagnostics: how well does each model order candidates?
    for (name, model) in [("LOAM", &loam), ("LOAM-NA", &na)] {
        let mut conc = 0usize;
        let mut tot = 0usize;
        let mut chose_default = 0usize;
        let mut chose_better = 0usize;
        let mut chose_worse = 0usize;
        let mut rel_err = 0.0;
        let mut n_pred = 0usize;
        for eq in &evaluated {
            let refs: Vec<&mcsim_plan::PlanTree> = eq.plans.iter().collect();
            let (choice, preds) = loam_core::inference::select_plan(model, &refs, &strategy);
            let truth: Vec<f64> = (0..eq.plans.len()).map(|i| eq.mean_cost(i)).collect();
            for i in 0..preds.len() {
                rel_err += ((preds[i] / truth[i]).ln()).abs();
                n_pred += 1;
                for j in i + 1..preds.len() {
                    if truth[i] != truth[j] {
                        tot += 1;
                        if (preds[i] - preds[j]) * (truth[i] - truth[j]) > 0.0 {
                            conc += 1;
                        }
                    }
                }
            }
            let def = eq.default_cost();
            let chosen = eq.mean_cost(choice);
            if choice == eq.default_idx {
                chose_default += 1;
            } else if chosen < def * 0.98 {
                chose_better += 1;
            } else if chosen > def * 1.02 {
                chose_worse += 1;
            }
        }
        // Within-set spread: does the model even *differ* across candidates?
        let mut pred_spread = 0.0;
        let mut true_spread = 0.0;
        for eq in &evaluated {
            let refs: Vec<&mcsim_plan::PlanTree> = eq.plans.iter().collect();
            let (_, preds) = loam_core::inference::select_plan(model, &refs, &strategy);
            let truth: Vec<f64> = (0..eq.plans.len()).map(|i| eq.mean_cost(i)).collect();
            let spread = |v: &[f64]| {
                let ln: Vec<f64> = v.iter().map(|x| x.max(1e-9).ln()).collect();
                let m = ln.iter().sum::<f64>() / ln.len() as f64;
                (ln.iter().map(|x| (x - m).powi(2)).sum::<f64>() / ln.len() as f64).sqrt()
            };
            pred_spread += spread(&preds);
            true_spread += spread(&truth);
        }
        println!(
            "{name}: within-set ln-spread pred {:.3} vs true {:.3}",
            pred_spread / evaluated.len() as f64,
            true_spread / evaluated.len() as f64
        );
        println!(
            "{name}: pairwise concordance {:.2}, mean |ln(pred/true)| {:.2}, picks: default {} / better {} / worse {}",
            conc as f64 / tot.max(1) as f64,
            rel_err / n_pred.max(1) as f64,
            chose_default,
            chose_better,
            chose_worse
        );
    }
}
