//! Figure 9: extra cost of learned optimizers — (a) training time,
//! (b) model footprint, (c) average per-query inference time.

use crate::exps::common::ProjectRun;
use crate::exps::fig6::Fig6Row;
use crate::report::Table;

/// Prints all three sub-tables from the Figure 6 evaluation rows.
pub fn print(runs: &[ProjectRun], rows: &[Fig6Row]) {
    println!("Figure 9 — deployment overhead of the learned optimizers\n");

    println!("(a) training time (s)");
    let mut t = Table::new(["method", "P1", "P2", "P3", "P4", "P5"]);
    let mut loam_row = vec!["LOAM".to_string()];
    let mut tr_row = vec!["Transformer".to_string()];
    let mut gcn_row = vec!["GCN".to_string()];
    let mut xgb_row = vec!["XGBoost".to_string()];
    for (run, row) in runs.iter().zip(rows) {
        loam_row.push(format!("{:.1}", run.loam_train_secs));
        tr_row.push(format!("{:.1}", row.baseline_train_secs[0]));
        gcn_row.push(format!("{:.1}", row.baseline_train_secs[1]));
        xgb_row.push(format!("{:.2}", row.baseline_train_secs[2]));
    }
    for r in [loam_row, tr_row, gcn_row, xgb_row] {
        t.row(r);
    }
    println!("{}", t.render());

    println!("(b) model footprint (KB)");
    let mut t = Table::new(["method", "P1", "P2", "P3", "P4", "P5"]);
    let mut loam_row = vec!["LOAM".to_string()];
    let mut tr_row = vec!["Transformer".to_string()];
    let mut gcn_row = vec!["GCN".to_string()];
    let mut xgb_row = vec!["XGBoost".to_string()];
    for (run, row) in runs.iter().zip(rows) {
        loam_row.push(format!("{}", run.loam.size_bytes() / 1024));
        tr_row.push(format!("{}", row.baseline_sizes[0] / 1024));
        gcn_row.push(format!("{}", row.baseline_sizes[1] / 1024));
        xgb_row.push(format!("{}", row.baseline_sizes[2] / 1024));
    }
    for r in [loam_row, tr_row, gcn_row, xgb_row] {
        t.row(r);
    }
    println!("{}", t.render());

    println!("(c) average inference time per query (ms, over the candidate set)");
    let mut t = Table::new(["method", "P1", "P2", "P3", "P4", "P5"]);
    let mut loam_row = vec!["LOAM".to_string()];
    let mut tr_row = vec!["Transformer".to_string()];
    let mut gcn_row = vec!["GCN".to_string()];
    let mut xgb_row = vec!["XGBoost".to_string()];
    for row in rows {
        loam_row.push(format!("{:.2}", row.loam.inference_seconds * 1e3));
        tr_row.push(format!("{:.2}", row.transformer.inference_seconds * 1e3));
        gcn_row.push(format!("{:.2}", row.gcn.inference_seconds * 1e3));
        xgb_row.push(format!("{:.2}", row.xgb.inference_seconds * 1e3));
    }
    for r in [loam_row, tr_row, gcn_row, xgb_row] {
        t.row(r);
    }
    println!("{}", t.render());
    println!("(paper: <1 h training, ~20 MB footprint, 0.1–0.5 s inference at production scale)");
}
