//! Figure 16 (Appendix E.3): Ranker performance as a function of the number
//! of training projects (2 → 12, with 15 fixed test projects).

use crate::exps::fig12::evaluate_split;
use crate::exps::population::labeled_28;
use crate::report::Table;
use crate::scale::Scale;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run(scale: Scale) {
    println!("Figure 16 — Ranker performance vs. number of training projects\n");
    let population = labeled_28(scale);
    let ks = [1usize, 3, 5];
    let mut rng = StdRng::seed_from_u64(0x16f1);
    let n_configs = 6;

    let mut t = Table::new([
        "train projects",
        "Recall@(1,1)",
        "Recall@(3,3)",
        "Recall@(5,5)",
        "NDCG@1",
        "NDCG@3",
        "NDCG@5",
    ]);
    for train_n in [2usize, 5, 8, 12] {
        let mut recall_sum = vec![0.0; ks.len()];
        let mut ndcg_sum = vec![0.0; ks.len()];
        let mut idx: Vec<usize> = (0..population.len()).collect();
        for c in 0..n_configs {
            idx.shuffle(&mut rng);
            // 15 fixed-size test set, training subset of the remainder.
            let test: Vec<_> = idx[..15].iter().map(|&i| &population[i]).collect();
            let train: Vec<_> = idx[15..15 + train_n]
                .iter()
                .map(|&i| &population[i])
                .collect();
            let (r, n) = evaluate_split(&train, &test, &ks, 0xf16 ^ c as u64);
            for (i, v) in r.into_iter().enumerate() {
                recall_sum[i] += v;
            }
            for (i, v) in n.into_iter().enumerate() {
                ndcg_sum[i] += v;
            }
        }
        let s = n_configs as f64;
        t.row([
            format!("{train_n}"),
            format!("{:.3}", recall_sum[0] / s),
            format!("{:.3}", recall_sum[1] / s),
            format!("{:.3}", recall_sum[2] / s),
            format!("{:.3}", ndcg_sum[0] / s),
            format!("{:.3}", ndcg_sum[1] / s),
            format!("{:.3}", ndcg_sum[2] / s),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: metrics improve with more training projects, e.g. NDCG@1 0.55 → 0.7)");
}
