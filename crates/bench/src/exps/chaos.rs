//! The `experiments chaos` subcommand: graceful degradation under fault
//! injection.
//!
//! Trains a small LOAM pipeline once, then serves the evaluated test
//! queries through [`RobustServer::serve_all`] against chaos executors armed at
//! increasing fault rates (0×, 1×, 2×, 4× the default
//! [`FaultConfig::chaos`](mcsim_exec::FaultConfig::chaos) probabilities).
//! Reports completion rate, degraded
//! queries, retry counts, wasted work, and the cost overhead versus the
//! fault-free baseline, and writes `BENCH_chaos.json` in the same
//! `BenchReport` phase schema as `BENCH_parallel.json` / `BENCH_train.json`
//! (the `compare` subcommand's parser ignores the chaos-specific extras).

use crate::report::Table;
use crate::scale::{scaled_eval_profile, Scale};
use loam_core::inference::EnvStrategy;
use loam_core::pipeline::{evaluate_candidates, prepare_project, train_loam, PipelineConfig};
use loam_core::robust::{RobustConfig, RobustRunReport};
use loam_core::serving::RobustServer;
use loam_core::TrainConfig;
use mcsim_catalog::ProjectId;
use mcsim_exec::ChaosScenario;

/// A pipeline configuration small enough that the full fault-rate sweep
/// (and the CI smoke built on it) finishes in seconds: the sweep's value is
/// the degradation behaviour, not its statistical power.
fn chaos_config(scale: Scale) -> PipelineConfig {
    let f = scale.fraction();
    PipelineConfig {
        train_days: 6,
        test_days: 2,
        max_train: ((1200.0 * f) as usize).max(120),
        max_test: ((60.0 * f) as usize).max(12),
        eval_rounds: 3,
        da_queries: 12,
        train_cfg: TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// One fault-rate level's outcome.
pub struct LevelOutcome {
    /// Phase name (`fault_x0`, `fault_x1`, ...).
    pub name: String,
    /// Multiplier applied to the default chaos probabilities.
    pub fault_scale: f64,
    /// Wall-clock seconds for serving the whole test set at this level.
    pub wall_s: f64,
    /// The robust serving report.
    pub report: RobustRunReport,
}

/// Trains the pipeline once and serves the evaluated queries at every fault
/// level. Returned for inspection — the acceptance tests use this directly
/// instead of going through the filesystem.
pub fn run_levels(scale: Scale, levels: &[f64]) -> Vec<LevelOutcome> {
    let profile = scaled_eval_profile(1, scale);
    let cfg = chaos_config(scale);
    eprintln!("preparing + training the chaos pipeline...");
    let prepared =
        prepare_project(&profile, ProjectId(1), &cfg).expect("project preparation failed");
    let predictor = train_loam(&prepared, &cfg).expect("LOAM training failed");
    let evaluated = evaluate_candidates(&prepared, &cfg).expect("candidate evaluation failed");
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);

    levels
        .iter()
        .map(|&lvl| {
            // A fresh chaos executor per level: every level replays the same
            // warmed cluster trajectory, differing only in the armed faults.
            let mut exec = ChaosScenario::new(cfg.seed ^ 0xc405)
                .fault_scale(lvl)
                .build();
            let t = std::time::Instant::now();
            let report = RobustServer::new(strategy, RobustConfig::default())
                .expect("default margin is valid")
                .serve_all(
                    &predictor,
                    &evaluated,
                    &mut exec,
                    &prepared.project.catalog,
                    None,
                )
                .expect("robust serving must terminate with a report");
            LevelOutcome {
                name: format!("fault_x{}", lvl as u32),
                fault_scale: lvl,
                wall_s: t.elapsed().as_secs_f64(),
                report,
            }
        })
        .collect()
}

/// Runs the sweep and writes `BENCH_chaos.json`. `quick` restricts the
/// sweep to the 0× / 1× levels (the CI smoke).
pub fn run(scale: Scale, quick: bool) {
    println!("Chaos benchmark — robust serving under increasing fault rates\n");
    let levels: &[f64] = if quick {
        &[0.0, 1.0]
    } else {
        &[0.0, 1.0, 2.0, 4.0]
    };
    let outcomes = run_levels(scale, levels);
    let base_cost = outcomes[0].report.total_cost().max(1e-9);

    let mut t = Table::new([
        "level",
        "queries",
        "completed",
        "degraded",
        "retries",
        "speculative",
        "wasted cost",
        "cost overhead",
        "wall (s)",
    ]);
    for o in &outcomes {
        let r = &o.report;
        t.row([
            o.name.clone(),
            r.results.len().to_string(),
            format!("{:.1}%", r.completion_rate() * 100.0),
            r.degraded_count().to_string(),
            r.total_retries().to_string(),
            r.results
                .iter()
                .map(|q| q.speculative_launches)
                .sum::<u32>()
                .to_string(),
            format!("{:.0}", r.total_wasted_cost()),
            format!("{:+.1}%", (r.total_cost() / base_cost - 1.0) * 100.0),
            format!("{:.3}", o.wall_s),
        ]);
    }
    println!("{}", t.render());
    println!(
        "gate deployed: {}; fallback ladder armed at every level",
        outcomes[0].report.gate_deployed
    );

    let json = report_json(scale, &outcomes);
    let path = "BENCH_chaos.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Renders the sweep as a JSON document in the `BenchReport` shape: the
/// fault-free level is every phase's `serial_s` baseline, the level's own
/// wall-clock is `parallel_s`, so `compare` gates on serving-time blowup
/// under faults. Chaos-specific fields ride along unparsed.
fn report_json(scale: Scale, outcomes: &[LevelOutcome]) -> String {
    let scale_name = format!("{scale:?}").to_lowercase();
    let base_wall = outcomes[0].wall_s.max(1e-9);
    let base_cost = outcomes[0].report.total_cost().max(1e-9);
    let threads = 1; // robust serving is a serial loop per level
    let phases = outcomes
        .iter()
        .map(|o| {
            format!(
                "{{\"name\":\"{}\",\"serial_s\":{:.6},\"parallel_s\":{:.6},\"speedup\":{:.4}}}",
                o.name,
                base_wall,
                o.wall_s,
                base_wall / o.wall_s.max(1e-9)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let total_wall: f64 = outcomes.iter().map(|o| o.wall_s).sum();
    let levels = outcomes
        .iter()
        .map(|o| {
            let r = &o.report;
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"fault_scale\":{:.2},\"queries\":{},",
                    "\"completion_rate\":{:.6},\"degraded\":{},\"retries\":{},",
                    "\"speculative\":{},\"wasted_cost\":{:.3},\"total_cost\":{:.3},",
                    "\"cost_overhead_pct\":{:.3}}}"
                ),
                o.name,
                o.fault_scale,
                r.results.len(),
                r.completion_rate(),
                r.degraded_count(),
                r.total_retries(),
                r.results
                    .iter()
                    .map(|q| q.speculative_launches)
                    .sum::<u32>(),
                r.total_wasted_cost(),
                r.total_cost(),
                (r.total_cost() / base_cost - 1.0) * 100.0
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        concat!(
            "{{\"bench\":\"chaos\",\"scale\":\"{}\",",
            "\"threads_serial\":{},\"threads_parallel\":{},",
            "\"phases\":[{}],",
            "\"total\":{{\"serial_s\":{:.6},\"parallel_s\":{:.6},\"speedup\":{:.4}}},",
            "\"gate_deployed\":{},",
            "\"levels\":[{}]}}"
        ),
        scale_name,
        threads,
        threads,
        phases,
        base_wall * outcomes.len() as f64,
        total_wall,
        base_wall * outcomes.len() as f64 / total_wall.max(1e-9),
        outcomes[0].report.gate_deployed,
        levels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exps::compare::BenchReport;
    use loam_core::robust::Resolution;

    /// The acceptance criterion of the chaos harness: at the default fault
    /// rate the fallback ladder keeps ≥ 99% of queries completing, while
    /// the fault-free level stays a clean 100% with zero retries and zero
    /// wasted work.
    #[test]
    fn default_fault_rate_completes_at_least_99_percent() {
        let outcomes = run_levels(Scale::Small, &[0.0, 1.0]);
        let clean = &outcomes[0].report;
        assert!(
            (clean.completion_rate() - 1.0).abs() < 1e-12,
            "fault-free serving must complete everything"
        );
        assert_eq!(clean.total_retries(), 0);
        assert_eq!(clean.total_wasted_cost(), 0.0);
        assert!(clean
            .results
            .iter()
            .all(|r| !matches!(r.resolution, Resolution::ExecFallback | Resolution::Failed)));

        let chaotic = &outcomes[1].report;
        assert!(
            chaotic.completion_rate() >= 0.99,
            "completion rate {:.4} under default chaos must stay >= 0.99",
            chaotic.completion_rate()
        );
    }

    /// The emitted JSON parses as a `BenchReport` (so `experiments compare`
    /// can gate on it) and carries one phase per level.
    #[test]
    fn report_json_is_compare_compatible() {
        let outcomes = run_levels(Scale::Small, &[0.0, 1.0]);
        let json = report_json(Scale::Small, &outcomes);
        let r: BenchReport = serde_json::from_str(&json).expect("BenchReport-compatible JSON");
        assert_eq!(r.bench, "chaos");
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].name, "fault_x0");
        assert_eq!(r.phases[1].name, "fault_x1");
        assert!(r.total.parallel_s > 0.0);
    }

    /// The checked-in repo-root report stays parseable and in sync with the
    /// schema (mirrors the `BENCH_train.json` test).
    #[test]
    fn checked_in_bench_chaos_report_parses() {
        let json = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_chaos.json"
        ))
        .expect("BENCH_chaos.json must be checked in at the repo root");
        let r: BenchReport = serde_json::from_str(&json).expect("parseable report");
        assert_eq!(r.bench, "chaos");
        assert!(!r.phases.is_empty());
        assert!(r.phases.iter().all(|p| p.name.starts_with("fault_x")));
    }
}
