//! The training hot-path benchmark: times the fig7 project's DANN training
//! phase three ways — the legacy allocating path serially, the workspace
//! engine serially, and the workspace engine on a multi-thread pool — and
//! reports wall-clock, speedup, allocations per optimizer step (via the
//! counting allocator installed by the `experiments` binary), and a
//! bit-identity check between the serial and parallel workspace runs.
//! Writes `BENCH_train.json` in the same shape as `BENCH_parallel.json`
//! (plus training-specific extra fields), so `experiments compare` can diff
//! it.

use crate::report::Table;
use crate::scale::{scaled_eval_profile, scaled_pipeline_config, Scale};
use loam_core::pipeline::prepare_project;
use loam_core::{train, train_reference, AdaptiveCostPredictor, TrainReport};
use mcsim_catalog::ProjectId;

/// Minimum thread count for the parallel leg: the benchmark forces at least
/// four threads so the microbatch fan-out is actually exercised even on
/// small machines (determinism makes the results identical either way).
const MIN_PARALLEL_THREADS: usize = 4;

struct Leg {
    name: &'static str,
    threads: usize,
    report: TrainReport,
    weights: Vec<u32>,
}

/// Allocations per optimizer step once warm (the last epoch, which has no
/// warmup allocations left).
fn steady_allocs_per_step(r: &TrainReport) -> f64 {
    let epochs = r.epoch_allocs.len().max(1) as u64;
    let steps_per_epoch = (r.steps / epochs).max(1);
    match r.epoch_allocs.last() {
        Some(&a) => a as f64 / steps_per_epoch as f64,
        None => 0.0,
    }
}

/// All model weights as bit patterns, for exact comparisons.
fn weight_bits(p: &AdaptiveCostPredictor) -> Vec<u32> {
    p.plan_emb
        .params()
        .into_iter()
        .chain(p.cost_head.params())
        .chain(p.dom_head.params())
        .flat_map(|prm| prm.value.data.iter().map(|v| v.to_bits()))
        .collect()
}

/// Runs the benchmark and writes `BENCH_train.json` into the current
/// directory.
pub fn run(scale: Scale) {
    println!("Training hot-path benchmark — fig7 project, legacy vs workspace engine\n");
    let configured = mcsim_par::threads();
    let parallel_threads = configured.max(MIN_PARALLEL_THREADS);
    if configured < MIN_PARALLEL_THREADS {
        eprintln!(
            "note: pool configured with {configured} thread(s); \
             parallel leg forced to {parallel_threads}"
        );
    }

    let profile = scaled_eval_profile(1, scale);
    let cfg = scaled_pipeline_config(scale);
    eprintln!("preparing the fig7 evaluation project...");
    let prepared =
        prepare_project(&profile, ProjectId(1), &cfg).expect("project preparation failed");
    eprintln!(
        "training set: {} samples, {} DA candidates, {} epochs",
        prepared.train_samples.len(),
        prepared.da_candidates.len(),
        cfg.train_cfg.epochs
    );

    // Each leg trains a fresh predictor from the same seed (mirroring
    // `train_loam`) under its own thread count.
    let leg = |name: &'static str, threads: usize, reference: bool| -> Leg {
        eprintln!("{name} ({threads} thread(s))...");
        let prev = mcsim_par::set_threads(threads);
        let mut p = AdaptiveCostPredictor::new(cfg.seed ^ 0x10a0, true);
        let f = if reference { train_reference } else { train };
        let report = f(
            &mut p,
            &prepared.train_samples,
            &prepared.da_candidates,
            prepared.mean_env,
            &cfg.train_cfg,
        );
        mcsim_par::set_threads(prev);
        Leg {
            name,
            threads,
            report,
            weights: weight_bits(&p),
        }
    };

    let legacy = leg("legacy allocating, serial", 1, true);
    let ws_serial = leg("workspace engine, serial", 1, false);
    let ws_parallel = leg("workspace engine, pool", parallel_threads, false);

    // Determinism: the workspace engine must be bit-identical at any thread
    // count AND bit-identical to the legacy allocating path.
    assert_eq!(
        ws_serial.weights, ws_parallel.weights,
        "serial and parallel workspace weights diverged"
    );
    assert_eq!(
        legacy.weights, ws_serial.weights,
        "legacy and workspace weights diverged"
    );
    println!("weights bit-identical across legacy / serial ws / {parallel_threads}-thread ws ✓\n");

    let mut t = Table::new([
        "leg",
        "threads",
        "train (s)",
        "speedup",
        "allocs/step (warm)",
    ]);
    for l in [&legacy, &ws_serial, &ws_parallel] {
        t.row([
            l.name.to_string(),
            l.threads.to_string(),
            format!("{:.3}", l.report.seconds),
            format!("{:.2}x", legacy.report.seconds / l.report.seconds.max(1e-9)),
            format!("{:.1}", steady_allocs_per_step(&l.report)),
        ]);
    }
    println!("{}", t.render());

    let json = report_json(scale, &legacy, &ws_serial, &ws_parallel);
    let path = "BENCH_train.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Renders the report as a JSON document in the `BenchReport` shape (the
/// `compare` subcommand's parser ignores the training-specific extras).
fn report_json(scale: Scale, legacy: &Leg, ws_serial: &Leg, ws_parallel: &Leg) -> String {
    let scale_name = format!("{scale:?}").to_lowercase();
    let (ls, ss, ps) = (
        legacy.report.seconds,
        ws_serial.report.seconds,
        ws_parallel.report.seconds,
    );
    let phases = format!(
        concat!(
            "{{\"name\":\"fig7_train\",\"serial_s\":{:.6},\"parallel_s\":{:.6},\"speedup\":{:.4}}},",
            "{{\"name\":\"fig7_train_serial\",\"serial_s\":{:.6},\"parallel_s\":{:.6},\"speedup\":{:.4}}}"
        ),
        ls,
        ps,
        ls / ps.max(1e-9),
        ls,
        ss,
        ls / ss.max(1e-9),
    );
    let epoch_seconds = |l: &Leg| {
        l.report
            .epoch_seconds
            .iter()
            .map(|s| format!("{s:.6}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        concat!(
            "{{\"bench\":\"train\",\"scale\":\"{}\",",
            "\"threads_serial\":{},\"threads_parallel\":{},",
            "\"phases\":[{}],",
            "\"total\":{{\"serial_s\":{:.6},\"parallel_s\":{:.6},\"speedup\":{:.4}}},",
            "\"epochs\":{},\"steps\":{},",
            "\"allocs_per_step_legacy\":{:.1},",
            "\"allocs_per_step_ws_warm\":{:.1},",
            "\"ws_first_epoch_allocs\":{},",
            "\"ws_last_epoch_allocs\":{},",
            "\"epoch_seconds_legacy\":[{}],",
            "\"epoch_seconds_ws_parallel\":[{}]}}"
        ),
        scale_name,
        legacy.threads,
        ws_parallel.threads,
        phases,
        ls,
        ps,
        ls / ps.max(1e-9),
        ws_parallel.report.epoch_seconds.len(),
        ws_parallel.report.steps,
        steady_allocs_per_step(&legacy.report),
        steady_allocs_per_step(&ws_parallel.report),
        ws_parallel
            .report
            .epoch_allocs
            .first()
            .copied()
            .unwrap_or(0),
        ws_parallel.report.epoch_allocs.last().copied().unwrap_or(0),
        epoch_seconds(legacy),
        epoch_seconds(ws_parallel),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Deserialize)]
    struct Report {
        bench: String,
        scale: String,
        threads_serial: u32,
        threads_parallel: u32,
        phases: Vec<Phase>,
        total: Totals,
    }

    #[derive(Debug, Deserialize)]
    struct Phase {
        name: String,
        serial_s: f64,
        parallel_s: f64,
        speedup: f64,
    }

    #[derive(Debug, Deserialize)]
    struct Totals {
        serial_s: f64,
        parallel_s: f64,
        speedup: f64,
    }

    fn leg(name: &'static str, threads: usize, secs: f64) -> Leg {
        Leg {
            name,
            threads,
            report: TrainReport {
                cost_loss: vec![0.5, 0.4],
                domain_loss: vec![0.7, 0.6],
                seconds: secs,
                epoch_seconds: vec![secs / 2.0, secs / 2.0],
                epoch_allocs: vec![100, 0],
                steps: 20,
            },
            weights: Vec::new(),
        }
    }

    #[test]
    fn report_json_is_well_formed_and_compare_compatible() {
        let legacy = leg("legacy", 1, 4.0);
        let ws_serial = leg("ws serial", 1, 2.0);
        let ws_parallel = leg("ws pool", 4, 1.0);
        let json = report_json(Scale::Small, &legacy, &ws_serial, &ws_parallel);
        let r: Report = serde_json::from_str(&json).expect("valid json");
        assert_eq!(r.bench, "train");
        assert_eq!(r.scale, "small");
        assert_eq!(r.threads_serial, 1);
        assert_eq!(r.threads_parallel, 4);
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].name, "fig7_train");
        assert!((r.phases[0].serial_s - 4.0).abs() < 1e-9);
        assert!((r.phases[0].parallel_s - 1.0).abs() < 1e-9);
        assert!((r.phases[0].speedup - 4.0).abs() < 1e-9);
        assert_eq!(r.phases[1].name, "fig7_train_serial");
        assert!((r.phases[1].speedup - 2.0).abs() < 1e-9);
        assert!((r.total.serial_s - 4.0).abs() < 1e-9);
        assert!((r.total.parallel_s - 1.0).abs() < 1e-9);
        assert!((r.total.speedup - 4.0).abs() < 1e-9);
    }

    #[test]
    fn steady_allocs_use_the_last_epoch() {
        let l = leg("x", 1, 1.0);
        // 2 epochs, 20 steps → 10 steps/epoch; last epoch had 0 allocs.
        assert_eq!(steady_allocs_per_step(&l.report), 0.0);
    }

    #[test]
    fn checked_in_train_report_parses_against_itself() {
        let json = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_train.json"
        ))
        .expect("BENCH_train.json must be checked in at the repo root");
        let r: Report = serde_json::from_str(&json).expect("checked-in report must parse");
        assert_eq!(r.bench, "train");
        assert_eq!(r.phases.len(), 2);
        assert!(r.phases.iter().any(|p| p.name == "fig7_train"));
    }
}
