//! Theorem 1 sanity experiment: for every fixed (environment-blind) plan
//! choice `M`, `E[D(M)] ≥ E[D(M_b)] ≥ E[D(M_o)] = 0`, verified over
//! synchronized flighting samples; plus a cross-check of the log-normal
//! estimation route of Appendix E.1 against direct Monte Carlo.

use crate::report::Table;
use crate::scale::{scaled_eval_profile, Scale};
use loam_core::explorer::PlanExplorer;
use loam_core::theory::deviance::{
    best_achievable_deviance, deviance_lognormal, deviance_of_choice,
};
use loam_core::theory::lognormal::LogNormal;
use mcsim_catalog::ProjectId;
use mcsim_exec::Flighting;
use mcsim_optimizer::NativeOptimizer;
use mcsim_plan::PlanTree;

/// Runs the experiment.
pub fn run(scale: Scale) {
    println!("Theorem 1 — E[D(M)] ≥ E[D(M_b)] ≥ E[D(M_o)] = 0 for every blind model M\n");
    let profile = scaled_eval_profile(2, scale);
    let project = profile.generate(ProjectId(2));
    let optimizer = NativeOptimizer::new(&project.catalog);
    let explorer = PlanExplorer::default();
    let mut flighting = Flighting::new(0x701, project.profile.env_noise_sigma);

    let queries: Vec<_> = project.workload_for_day(0).into_iter().take(25).collect();
    let mut violations = 0usize;
    let mut total_checks = 0usize;
    let mut t = Table::new([
        "query",
        "candidates",
        "E[D(M_b)]",
        "max E[D(M)]",
        "ordering holds",
    ]);
    let mut lognormal_errors = Vec::new();

    for (qi, q) in queries.iter().enumerate() {
        let set = explorer.explore(&optimizer, q);
        if set.len() < 2 {
            continue;
        }
        let plans: Vec<&PlanTree> = set.candidates.iter().map(|c| &c.plan).collect();
        let costs = flighting.replay_synchronized(&plans, &project.catalog, 20);
        let db = best_achievable_deviance(&costs);
        let mut max_d = 0.0f64;
        let mut holds = true;
        for choice in 0..plans.len() {
            let d = deviance_of_choice(&costs, choice);
            max_d = max_d.max(d.expected);
            total_checks += 1;
            if d.expected < db.expected - 1e-9 {
                violations += 1;
                holds = false;
            }
        }
        if qi < 8 {
            t.row([
                format!("q{qi}"),
                format!("{}", plans.len()),
                format!("{:.1}", db.expected),
                format!("{:.1}", max_d),
                format!("{holds}"),
            ]);
        }

        // Log-normal route (Lemma 1 + numeric integration) vs Monte Carlo
        // for the default plan's deviance against the other candidates.
        if plans.len() >= 3 {
            let fits: Vec<LogNormal> = (0..plans.len())
                .map(|i| {
                    let samples: Vec<f64> = costs.iter().map(|r| r[i]).collect();
                    LogNormal::fit(&samples)
                })
                .collect();
            let others: Vec<LogNormal> = fits
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != set.default_idx)
                .map(|(_, d)| *d)
                .collect();
            let analytic = deviance_lognormal(&fits[set.default_idx], &others, 96);
            let mc = deviance_of_choice(&costs, set.default_idx).expected;
            if mc > 1.0 {
                lognormal_errors.push(((analytic - mc) / mc).abs());
            }
        }
    }
    println!("{}", t.render());
    println!(
        "ordering checks: {total_checks}, violations: {violations} (expected 0; D(M_b) is minimal by construction)"
    );
    if !lognormal_errors.is_empty() {
        let mean_err = lognormal_errors.iter().sum::<f64>() / lognormal_errors.len() as f64;
        println!(
            "log-normal estimation (Appendix E.1) vs Monte Carlo: mean relative gap {:.0}% over {} queries (finite-sample + independence approximation)",
            mean_err * 100.0,
            lognormal_errors.len()
        );
    }
}
