//! Figure 10: plan cost inference under invisible environments — LOAM's
//! representative mean-environment strategy vs. the LOAM-CE / LOAM-CB /
//! LOAM-NL variants, in E2E cost (a) and relative deviance (b).

use crate::exps::common::ProjectRun;
use crate::report::Table;
use loam_core::inference::EnvStrategy;
use loam_core::pipeline::{evaluate_best_achievable, evaluate_model, evaluate_native};
use loam_core::predictor::train::{train, TrainConfig};
use loam_core::AdaptiveCostPredictor;
use mcsim_exec::{Cluster, ClusterConfig};

/// Evaluations of all inference strategies on one project.
pub struct Fig10Row {
    /// Project number.
    pub n: usize,
    /// (name, avg cost, relative deviance) per variant.
    pub variants: Vec<(String, f64, f64)>,
    /// Best-achievable relative deviance (paper: ≈10 %).
    pub best_rel: f64,
}

/// Evaluates the strategy variants for one project run.
pub fn evaluate_run(run: &ProjectRun) -> Fig10Row {
    // Cluster-wide views for the CE/CB variants: a production-like cluster
    // advanced past a warm-up, read at optimization time.
    let mut cluster = Cluster::new(run.cfg.seed ^ 0xcafe, ClusterConfig::default());
    cluster.advance(mcsim_exec::TICKS_PER_DAY / 2);

    let strategies = [
        EnvStrategy::MeanHistorical(run.prepared.mean_env),
        EnvStrategy::cluster_expected(&cluster),
        EnvStrategy::cluster_current(&cluster),
    ];

    let mut variants = Vec::new();
    for s in &strategies {
        let eval = evaluate_model(&run.loam, s, &run.evaluated).expect("model evaluation failed");
        variants.push((s.name().to_string(), eval.avg_cost, eval.deviance.relative));
    }

    // LOAM-NL: a predictor trained *without* environment features.
    let mut nl = AdaptiveCostPredictor::new(run.cfg.seed ^ 0x901, false);
    let nl_cfg = TrainConfig {
        ..run.cfg.train_cfg
    };
    train(
        &mut nl,
        &run.prepared.train_samples,
        &run.prepared.da_candidates,
        run.prepared.mean_env,
        &nl_cfg,
    );
    let eval =
        evaluate_model(&nl, &EnvStrategy::NoEnv, &run.evaluated).expect("model evaluation failed");
    variants.push(("LOAM-NL".to_string(), eval.avg_cost, eval.deviance.relative));

    let native = evaluate_native(&run.evaluated).expect("native evaluation failed");
    variants.push((
        "MaxCompute".to_string(),
        native.avg_cost,
        native.deviance.relative,
    ));

    Fig10Row {
        n: run.n,
        variants,
        best_rel: evaluate_best_achievable(&run.evaluated)
            .expect("best-achievable evaluation failed")
            .deviance
            .relative,
    }
}

/// Prints both sub-figures.
pub fn print(rows: &[Fig10Row]) {
    println!("Figure 10 — query optimization vs. cost-inference strategy");
    println!("(paper: LOAM (mean historical env) beats LOAM-CE/CB/NL; best-achievable relative deviance ≈10%)\n");

    println!("(a) E2E average CPU cost");
    let names: Vec<String> = rows
        .first()
        .map(|r| r.variants.iter().map(|v| v.0.clone()).collect())
        .unwrap_or_default();
    let mut header = vec!["project".to_string()];
    header.extend(names.iter().cloned());
    let mut t = Table::new(header.clone());
    for r in rows {
        let mut row = vec![format!("P{}", r.n)];
        row.extend(r.variants.iter().map(|v| format!("{:.0}", v.1)));
        t.row(row);
    }
    println!("{}", t.render());

    println!("(b) relative deviance from the oracle");
    let mut header2 = header;
    header2.push("best-achievable".to_string());
    let mut t = Table::new(header2);
    for r in rows {
        let mut row = vec![format!("P{}", r.n)];
        row.extend(r.variants.iter().map(|v| format!("{:.3}", v.2)));
        row.push(format!("{:.3}", r.best_rel));
        t.row(row);
    }
    println!("{}", t.render());
}
