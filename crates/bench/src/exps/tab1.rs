//! Table 1: statistics of the projects used in the experiments.

use crate::exps::common::ProjectRun;
use crate::report::Table;

/// Prints Table 1 from prepared project runs.
pub fn print(runs: &[ProjectRun]) {
    println!("Table 1 — statistics of the evaluation projects (at harness scale)");
    println!(
        "(paper full-scale: 253/125/348/209/229 tables, 10k/10k/10k/4.2k/8.7k train queries)\n"
    );
    let mut t = Table::new([
        "dataset",
        "# tables",
        "# columns",
        "# train queries",
        "# test queries",
        "avg CPU cost",
    ]);
    for r in runs {
        let avg_cost: f64 = r.evaluated.iter().map(|e| e.default_cost()).sum::<f64>()
            / r.evaluated.len().max(1) as f64;
        t.row([
            format!("Project {}", r.n),
            format!("{}", r.prepared.project.catalog.table_count()),
            format!("{}", r.prepared.project.catalog.column_count()),
            format!("{}", r.prepared.train_samples.len()),
            format!("{}", r.evaluated.len()),
            format!("{:.0}", avg_cost),
        ]);
    }
    println!("{}", t.render());
}
