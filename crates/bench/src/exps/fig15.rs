//! Figure 15 (Appendix E.1): cost distributions of recurring query plans —
//! log-normal histogram fit, Q-Q agreement, and Kolmogorov–Smirnov tests
//! (paper: average p-value ≈ 0.6).

use crate::report::Table;
use crate::scale::{scaled_eval_profile, Scale};
use loam_core::theory::lognormal::{ks_test, qq_points, LogNormal};
use mcsim_catalog::ProjectId;
use mcsim_exec::Flighting;
use mcsim_optimizer::{Knobs, NativeOptimizer};

/// Runs the experiment.
pub fn run(scale: Scale) {
    let profile = scaled_eval_profile(1, scale);
    let project = profile.generate(ProjectId(1));
    let optimizer = NativeOptimizer::new(&project.catalog);
    let queries: Vec<_> = project.workload_for_day(0).into_iter().take(20).collect();

    println!("Figure 15 — cost distributions of recurring plans vs. fitted log-normals\n");

    let mut p_values = Vec::new();
    let mut representative: Option<(Vec<f64>, LogNormal)> = None;
    for (i, q) in queries.iter().enumerate() {
        let plan = optimizer.optimize(q, &Knobs::default());
        let mut flighting = Flighting::new(0x515 + i as u64, project.profile.env_noise_sigma);
        let costs: Vec<f64> = flighting
            .replay(&plan, &project.catalog, 150)
            .into_iter()
            .map(|o| o.cpu_cost)
            .collect();
        let fit = LogNormal::fit(&costs);
        let ks = ks_test(&costs, &fit);
        p_values.push(ks.p_value);
        if representative.is_none() {
            representative = Some((costs, fit));
        }
    }

    // (a) histogram of the representative plan with the fitted density.
    let (costs, fit) = representative.expect("at least one plan");
    let min = costs.iter().cloned().fold(f64::MAX, f64::min);
    let max = costs.iter().cloned().fold(f64::MIN, f64::max);
    let bins = 10;
    let width = (max - min) / bins as f64;
    println!("(a) cost histogram of one recurring plan vs fitted log-normal density");
    let mut t = Table::new(["bin", "observed", "fitted", "bar"]);
    for b in 0..bins {
        let lo = min + b as f64 * width;
        let hi = lo + width;
        let observed = costs.iter().filter(|&&c| c >= lo && c < hi).count();
        let expected = ((fit.cdf(hi) - fit.cdf(lo)) * costs.len() as f64).round() as usize;
        t.row([
            format!("{:.0}-{:.0}", lo, hi),
            format!("{observed}"),
            format!("{expected}"),
            "#".repeat(observed / 2),
        ]);
    }
    println!("{}", t.render());

    // (b) Q-Q agreement.
    let qq = qq_points(&costs, &fit);
    let corr = {
        let n = qq.len() as f64;
        let mx = qq.iter().map(|p| p.0).sum::<f64>() / n;
        let my = qq.iter().map(|p| p.1).sum::<f64>() / n;
        let cov: f64 = qq.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        let vx: f64 = qq.iter().map(|p| (p.0 - mx).powi(2)).sum();
        let vy: f64 = qq.iter().map(|p| (p.1 - my).powi(2)).sum();
        cov / (vx * vy).sqrt().max(1e-12)
    };
    println!(
        "(b) Q-Q correlation between theoretical and empirical quantiles: {:.4}\n",
        corr
    );

    let avg_p = p_values.iter().sum::<f64>() / p_values.len().max(1) as f64;
    let reject = p_values.iter().filter(|&&p| p < 0.05).count();
    println!(
        "KS test over {} recurring plans: average p-value {:.2} (paper: ≈0.6); {} of {} rejected at 5%",
        p_values.len(),
        avg_p,
        reject,
        p_values.len()
    );
}
