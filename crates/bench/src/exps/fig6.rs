//! Figure 6 / Table 1: end-to-end average CPU cost of learned optimizers
//! vs. MaxCompute's native optimizer on the five evaluation projects, plus
//! the best-achievable model M_b (the dashed line).

use crate::exps::common::{gain_pct, ProjectRun};
use crate::report::Table;
use loam_core::pipeline::{
    evaluate_best_achievable, evaluate_model, evaluate_native, ModelEvaluation,
};
use loam_core::predictor::baselines::{GcnPredictor, TransformerPredictor, XgbPredictor};
use loam_core::CostModel;

/// All baseline evaluations for one project run.
pub struct Fig6Row {
    /// Project number.
    pub n: usize,
    /// MaxCompute (default plans).
    pub native: ModelEvaluation,
    /// LOAM.
    pub loam: ModelEvaluation,
    /// Transformer baseline.
    pub transformer: ModelEvaluation,
    /// GCN baseline.
    pub gcn: ModelEvaluation,
    /// XGBoost baseline.
    pub xgb: ModelEvaluation,
    /// Best-achievable model M_b.
    pub best: ModelEvaluation,
    /// Baseline training times (seconds): transformer, gcn, xgb.
    pub baseline_train_secs: [f64; 3],
    /// Baseline model sizes (bytes): transformer, gcn, xgb.
    pub baseline_sizes: [usize; 3],
}

/// Trains the baselines and evaluates every model on a project run.
pub fn evaluate_run(run: &ProjectRun) -> Fig6Row {
    let samples = &run.prepared.train_samples;
    let t0 = std::time::Instant::now();
    let transformer = TransformerPredictor::fit(samples, &run.cfg.train_cfg);
    let t_tr = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let gcn = GcnPredictor::fit(samples, &run.cfg.train_cfg);
    let t_gcn = t1.elapsed().as_secs_f64();
    let t2 = std::time::Instant::now();
    let xgb = XgbPredictor::fit(samples, run.cfg.seed);
    let t_xgb = t2.elapsed().as_secs_f64();

    let eval = |m: &dyn CostModel| {
        evaluate_model(m, &run.strategy, &run.evaluated).expect("model evaluation failed")
    };
    Fig6Row {
        n: run.n,
        native: evaluate_native(&run.evaluated).expect("native evaluation failed"),
        loam: eval(&run.loam),
        transformer: eval(&transformer),
        gcn: eval(&gcn),
        xgb: eval(&xgb),
        best: evaluate_best_achievable(&run.evaluated).expect("best-achievable evaluation failed"),
        baseline_train_secs: [t_tr, t_gcn, t_xgb],
        baseline_sizes: [transformer.size_bytes(), gcn.size_bytes(), xgb.size_bytes()],
    }
}

/// Prints the Figure 6 table from per-project rows.
pub fn print(rows: &[Fig6Row]) {
    println!("Figure 6 — average E2E CPU cost of selected plans per project");
    println!("(paper: LOAM gains ≈10%/23%/30% on P1/P2/P5, ≈flat on P3/P4)\n");
    let mut t = Table::new([
        "project",
        "MaxCompute",
        "Transformer",
        "GCN",
        "XGBoost",
        "LOAM",
        "best-achievable",
        "LOAM gain",
    ]);
    for r in rows {
        t.row([
            format!("P{}", r.n),
            format!("{:.0}", r.native.avg_cost),
            format!("{:.0}", r.transformer.avg_cost),
            format!("{:.0}", r.gcn.avg_cost),
            format!("{:.0}", r.xgb.avg_cost),
            format!("{:.0}", r.loam.avg_cost),
            format!("{:.0}", r.best.avg_cost),
            format!("{:+.1}%", gain_pct(r.native.avg_cost, r.loam.avg_cost)),
        ]);
    }
    println!("{}", t.render());
    println!("improvement space D(M_d) (relative deviance of default plans) per project:");
    for r in rows {
        println!(
            "  P{}: D(M_d) = {:.1}%, D(M_b) = {:.1}% of oracle cost",
            r.n,
            r.native.deviance.relative * 100.0,
            r.best.deviance.relative * 100.0
        );
    }
}
