//! Figure 8: LOAM's end-to-end performance as a function of training-set
//! size — gains grow with data, then saturate; data-hungry projects need
//! more queries to match MaxCompute.

use crate::exps::common::ProjectRun;
use crate::report::Table;
use loam_core::pipeline::{evaluate_best_achievable, evaluate_model, evaluate_native};
use loam_core::predictor::train::train;
use loam_core::AdaptiveCostPredictor;

/// Fractions of the available training set to sweep (the paper sweeps
/// 1k → MAX in finer steps; three points bound the curve at harness scale).
pub const FRACTIONS: [f64; 2] = [0.3, 1.0];

/// Runs the sweep for one project and prints its series.
pub fn print_project(run: &ProjectRun) {
    let total = run.prepared.train_samples.len();
    let native = evaluate_native(&run.evaluated).expect("native evaluation failed");
    let best = evaluate_best_achievable(&run.evaluated).expect("best-achievable evaluation failed");

    let mut t = Table::new(["train queries", "LOAM avg cost", "vs MaxCompute"]);
    for &f in &FRACTIONS {
        let k = ((total as f64 * f) as usize).max(20).min(total);
        let subset = &run.prepared.train_samples[..k];
        let mut model = AdaptiveCostPredictor::new(run.cfg.seed ^ 0x10a0, true);
        train(
            &mut model,
            subset,
            &run.prepared.da_candidates,
            run.prepared.mean_env,
            &run.cfg.train_cfg,
        );
        let eval =
            evaluate_model(&model, &run.strategy, &run.evaluated).expect("model evaluation failed");
        t.row([
            format!("{k}"),
            format!("{:.0}", eval.avg_cost),
            format!("{:+.1}%", 100.0 * (1.0 - eval.avg_cost / native.avg_cost)),
        ]);
    }
    println!(
        "Project {} (MaxCompute {:.0}, best-achievable {:.0}):",
        run.n, native.avg_cost, best.avg_cost
    );
    println!("{}", t.render());
}

/// Runs the sweep for all projects.
pub fn print(runs: &[ProjectRun]) {
    println!("Figure 8 — LOAM performance vs. training-data size");
    println!("(paper: gains grow then saturate on P1/P2/P5; P1 needs the most data)\n");
    for run in runs {
        print_project(run);
    }
}
