//! The `experiments sweep` subcommand: a deterministic scenario-matrix
//! harness.
//!
//! LOAM's headline claim is robustness across *environments*; the one-off
//! `experiments` subcommands each probe a single axis. This module turns
//! them into a matrix: a declarative plain-text spec expands into a job
//! grid over {cluster size × tenant count × fault multiplier × arrival
//! profile}, every job runs a reproducible
//! optimize → gate → execute → serve pass (a [`ServeSession`] over the
//! once-trained pipeline) with a seed derived by
//! [`seed_stream`]`(sweep_seed, job_index)`, once per `axis.threads` pool
//! size, and the whole matrix is emitted as **one canonical-JSON**
//! [`SweepReport`] (sorted keys, fixed float formatting, per-cell metrics
//! + config hashes + a runbook manifest) to `BENCH_sweep.json`.
//!
//! Determinism is the contract, not a nicety:
//!
//! * expansion is a pure function of the spec — same spec + seed ⇒
//!   byte-identical job grid (property-tested);
//! * every cell metric is a deterministic quantity (counts, exact cost
//!   sums, the decision-log digest) — wall-clock never enters the report,
//!   so reruns and thread counts cannot move a byte;
//! * the threads axis is the *replication* dimension: each job reruns at
//!   every pool size with the same seed, and the replicas' metrics must
//!   agree bit-for-bit (`runbook.thread_invariant` — the harness checks
//!   its own determinism claim on every run);
//! * the runbook manifest carries every cell's seed and config, so a sweep
//!   replays byte-for-byte from the report alone ([`replay`]).
//!
//! `experiments compare` understands sweep reports and diffs them
//! cell-by-cell with per-metric thresholds (see
//! [`compare`](crate::exps::compare)), so CI gates on a whole scenario
//! matrix instead of a single benchmark.
//!
//! # Spec format
//!
//! Plain text, `key = value` per line, `#` comments:
//!
//! ```text
//! mode = grid                 # or: lhs (seeded Latin hypercube)
//! samples = 12                # lhs only: number of jobs
//! seed = 48879                # master sweep seed
//! requests = 32               # arrival-trace length per cell
//! batch_size = 16             # serving batch width per cell
//! axis.machines = 8,16        # grid: value list; lhs: list or lo..hi
//! axis.tenants = 4,8
//! axis.fault_scale = 0.0,1.0
//! axis.arrival = poisson      # subset of poisson,bursty,diurnal
//! axis.threads = 1,2          # pool sizes every job is replicated at
//! ```
//!
//! Grid mode takes the cross-product of the workload axis value lists
//! (axes in alphabetical order, later axes fastest). LHS mode draws
//! `samples` jobs: each numeric axis is split into `samples` strata, a
//! seeded permutation assigns one stratum per job, and integer axes place
//! each stratum at a distinct value (validation requires an axis capable
//! of separating all samples, so jobs are pairwise distinct by
//! construction). Either way, cells = jobs × `axis.threads`.

use crate::canon;
use crate::report::Table;
use crate::scale::{scaled_eval_profile, Scale};
use loam_core::inference::EnvStrategy;
use loam_core::pipeline::{
    evaluate_candidates, prepare_project, train_loam, EvaluatedQuery, PipelineConfig,
    PreparedProject,
};
use loam_core::predictor::AdaptiveCostPredictor;
use loam_core::TrainConfig;
use mcsim_catalog::ProjectId;
use mcsim_exec::seed_stream;
use mcsim_serve::{ArrivalProfile, RequestOutcome, ServeConfig, ServeReport, ServeSession};
use serde::{Deserialize, Serialize};

/// The embedded quick spec (CI smoke and the checked-in
/// `BENCH_sweep.json`): a small grid, two thread counts.
pub const QUICK_SPEC: &str = include_str!("../../specs/quick.sweep");

/// The embedded full spec: a seeded Latin-hypercube over all five axes.
pub const FULL_SPEC: &str = include_str!("../../specs/full.sweep");

// ------------------------------------------------------------------ spec

/// Expansion mode of a sweep spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Cross-product of the axis value lists.
    Grid,
    /// Seeded Latin-hypercube sampling of `samples` cells.
    Lhs,
}

/// One numeric axis: an explicit value list or a sampling range.
#[derive(Debug, Clone, PartialEq)]
pub enum Axis {
    /// Explicit values (the only grid form).
    Values(Vec<f64>),
    /// Inclusive sampling range `lo..hi` (LHS only).
    Range(f64, f64),
}

/// A parsed, validated sweep specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Expansion mode.
    pub mode: Mode,
    /// LHS cell count (0 in grid mode).
    pub samples: usize,
    /// Master sweep seed; job `i` runs at `seed_stream(seed, i)`.
    pub seed: u64,
    /// Arrival-trace length per cell.
    pub requests: usize,
    /// Serving batch width per cell.
    pub batch_size: usize,
    /// Machines per per-request execution cluster.
    pub machines: Axis,
    /// Tenants the arrival trace is drawn over.
    pub tenants: Axis,
    /// Fault-injection multiplier of the per-request executors.
    pub fault_scale: Axis,
    /// Arrival shapes (subset of `poisson`, `bursty`, `diurnal`).
    pub arrival: Vec<String>,
    /// Pool sizes the cells run at.
    pub threads: Vec<usize>,
}

const ARRIVAL_NAMES: [&str; 3] = ["poisson", "bursty", "diurnal"];

impl SweepSpec {
    /// Parses and validates the plain-text spec format.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending line or
    /// constraint.
    pub fn parse(text: &str) -> Result<SweepSpec, String> {
        let mut spec = SweepSpec {
            mode: Mode::Grid,
            samples: 0,
            seed: 0x5eed_0bb1,
            requests: 48,
            batch_size: 16,
            machines: Axis::Values(vec![8.0]),
            tenants: Axis::Values(vec![4.0]),
            fault_scale: Axis::Values(vec![0.0]),
            arrival: vec!["poisson".to_string()],
            threads: vec![1],
        };
        let mut samples_set = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", lineno + 1));
            };
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("line {}: {what}: `{value}`", lineno + 1);
            match key {
                "mode" => {
                    spec.mode = match value {
                        "grid" => Mode::Grid,
                        "lhs" => Mode::Lhs,
                        _ => return Err(bad("mode must be `grid` or `lhs`")),
                    }
                }
                "samples" => {
                    spec.samples = value.parse().map_err(|_| bad("invalid sample count"))?;
                    samples_set = true;
                }
                "seed" => spec.seed = value.parse().map_err(|_| bad("invalid seed"))?,
                "requests" => {
                    spec.requests = value.parse().map_err(|_| bad("invalid request count"))?
                }
                "batch_size" => {
                    spec.batch_size = value.parse().map_err(|_| bad("invalid batch size"))?
                }
                "axis.machines" => spec.machines = parse_axis(value).map_err(|e| bad(&e))?,
                "axis.tenants" => spec.tenants = parse_axis(value).map_err(|e| bad(&e))?,
                "axis.fault_scale" => spec.fault_scale = parse_axis(value).map_err(|e| bad(&e))?,
                "axis.arrival" => {
                    spec.arrival = value.split(',').map(|s| s.trim().to_string()).collect()
                }
                "axis.threads" => {
                    spec.threads = value
                        .split(',')
                        .map(|s| s.trim().parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| bad("invalid thread list"))?
                }
                other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
            }
        }
        if spec.mode == Mode::Grid && samples_set {
            return Err("`samples` is only valid in lhs mode".to_string());
        }
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), String> {
        if self.requests == 0 || self.batch_size == 0 {
            return Err("requests and batch_size must be >= 1".to_string());
        }
        if self.arrival.is_empty() || self.threads.is_empty() {
            return Err("axis.arrival and axis.threads must be non-empty".to_string());
        }
        for a in &self.arrival {
            if !ARRIVAL_NAMES.contains(&a.as_str()) {
                return Err(format!(
                    "unknown arrival `{a}` (expected one of {})",
                    ARRIVAL_NAMES.join(", ")
                ));
            }
        }
        if has_duplicates(&self.arrival) || has_duplicates(&self.threads) {
            return Err("axis values must be distinct".to_string());
        }
        if self.threads.iter().any(|&t| t == 0 || t > 256) {
            return Err("axis.threads values must be in 1..=256".to_string());
        }
        for (name, axis, integral, min) in [
            ("machines", &self.machines, true, 1.0),
            ("tenants", &self.tenants, true, 1.0),
            ("fault_scale", &self.fault_scale, false, 0.0),
        ] {
            match axis {
                Axis::Values(vs) => {
                    if vs.is_empty() {
                        return Err(format!("axis.{name} must be non-empty"));
                    }
                    if has_duplicates(&vs.iter().map(|v| v.to_bits()).collect::<Vec<_>>()) {
                        return Err(format!("axis.{name} values must be distinct"));
                    }
                    for &v in vs {
                        if !v.is_finite() || v < min || (integral && v.fract() != 0.0) {
                            return Err(format!("axis.{name}: invalid value {v}"));
                        }
                    }
                }
                Axis::Range(lo, hi) => {
                    if self.mode == Mode::Grid {
                        return Err(format!(
                            "axis.{name}: ranges (`lo..hi`) are only valid in lhs mode"
                        ));
                    }
                    if !lo.is_finite() || !hi.is_finite() || *lo < min || hi < lo {
                        return Err(format!("axis.{name}: invalid range {lo}..{hi}"));
                    }
                    if integral && (lo.fract() != 0.0 || hi.fract() != 0.0) {
                        return Err(format!("axis.{name}: range endpoints must be integers"));
                    }
                }
            }
        }
        if self.mode == Mode::Lhs {
            if self.samples == 0 {
                return Err("lhs mode requires `samples >= 1`".to_string());
            }
            if self.samples > 1 && !self.lhs_separates() {
                return Err(format!(
                    "lhs with {} samples needs a separating axis: an integer range \
                     spanning >= samples values, or a non-degenerate fault_scale range",
                    self.samples
                ));
            }
        }
        Ok(())
    }

    /// True when some numeric axis is guaranteed to give every LHS cell a
    /// distinct value, making jobs pairwise distinct by construction.
    fn lhs_separates(&self) -> bool {
        let n = self.samples as f64;
        let int_separates = |a: &Axis| matches!(a, Axis::Range(lo, hi) if hi - lo + 1.0 >= n);
        int_separates(&self.machines)
            || int_separates(&self.tenants)
            || matches!(&self.fault_scale, Axis::Range(lo, hi) if hi > lo)
    }

    /// The normalized spec echo embedded in (and hashed into) the report.
    pub fn echo(&self) -> SpecEcho {
        let axis_str = |a: &Axis| match a {
            Axis::Values(vs) => vs.iter().map(|v| num_str(*v)).collect::<Vec<_>>().join(","),
            Axis::Range(lo, hi) => format!("{}..{}", num_str(*lo), num_str(*hi)),
        };
        SpecEcho {
            mode: match self.mode {
                Mode::Grid => "grid".to_string(),
                Mode::Lhs => "lhs".to_string(),
            },
            samples: self.samples as u64,
            seed: self.seed,
            requests: self.requests as u64,
            batch_size: self.batch_size as u64,
            axes: vec![
                AxisEcho::new("arrival", self.arrival.join(",")),
                AxisEcho::new("fault_scale", axis_str(&self.fault_scale)),
                AxisEcho::new("machines", axis_str(&self.machines)),
                AxisEcho::new("tenants", axis_str(&self.tenants)),
                AxisEcho::new(
                    "threads",
                    self.threads
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                ),
            ],
        }
    }
}

/// Integral values render without a decimal point in spec echoes
/// (`8`, not `8.0`); everything else uses the canonical float form.
fn num_str(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{v:.0}")
    } else {
        canon::fmt_f64(v)
    }
}

fn parse_axis(value: &str) -> Result<Axis, String> {
    if let Some((lo, hi)) = value.split_once("..") {
        let lo: f64 = lo.trim().parse().map_err(|_| "invalid range".to_string())?;
        let hi: f64 = hi.trim().parse().map_err(|_| "invalid range".to_string())?;
        return Ok(Axis::Range(lo, hi));
    }
    let vs: Result<Vec<f64>, _> = value.split(',').map(|s| s.trim().parse::<f64>()).collect();
    vs.map(Axis::Values)
        .map_err(|_| "invalid value list".into())
}

fn has_duplicates<T: PartialEq>(vs: &[T]) -> bool {
    vs.iter()
        .enumerate()
        .any(|(i, v)| vs[..i].iter().any(|w| w == v))
}

// ------------------------------------------------------------ job matrix

/// One job's semantic configuration — the four workload axes. The threads
/// axis deliberately lives *outside* the job: a job is one seeded
/// experiment, and each job runs once per `axis.threads` value **with the
/// same seed**, so thread-replica cells must produce identical metrics
/// (the harness's determinism self-check, recorded as
/// `runbook.thread_invariant`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobConfig {
    /// Arrival shape (`poisson`, `bursty`, `diurnal`).
    pub arrival: String,
    /// Fault-injection multiplier.
    pub fault_scale: f64,
    /// Machines per per-request execution cluster.
    pub machines: u64,
    /// Tenant count of the arrival trace.
    pub tenants: u64,
}

/// One cell's configuration: a job's semantic axes plus the pool size the
/// replica ran at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellConfig {
    /// Arrival shape (`poisson`, `bursty`, `diurnal`).
    pub arrival: String,
    /// Fault-injection multiplier.
    pub fault_scale: f64,
    /// Machines per per-request execution cluster.
    pub machines: u64,
    /// Tenant count of the arrival trace.
    pub tenants: u64,
    /// Pool size the cell ran at (the replication dimension).
    pub threads: u64,
}

impl CellConfig {
    fn of(job: &JobConfig, threads: u64) -> CellConfig {
        CellConfig {
            arrival: job.arrival.clone(),
            fault_scale: job.fault_scale,
            machines: job.machines,
            tenants: job.tenants,
            threads,
        }
    }
}

/// One expanded job: a semantic configuration plus its derived seed.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Position in the expanded matrix (row-major for grids, sample index
    /// for LHS).
    pub index: u64,
    /// `seed_stream(sweep_seed, index)` — pairwise distinct across jobs.
    pub seed: u64,
    /// The semantic configuration.
    pub config: JobConfig,
}

/// Expands a validated spec into its job matrix. Pure: the same spec
/// always yields the same jobs, byte for byte.
pub fn expand(spec: &SweepSpec) -> Result<Vec<JobSpec>, String> {
    spec.validate()?;
    let configs = match spec.mode {
        Mode::Grid => expand_grid(spec),
        Mode::Lhs => expand_lhs(spec),
    };
    Ok(configs
        .into_iter()
        .enumerate()
        .map(|(i, config)| JobSpec {
            index: i as u64,
            seed: seed_stream(spec.seed, i as u64),
            config,
        })
        .collect())
}

fn axis_values(a: &Axis) -> &[f64] {
    match a {
        Axis::Values(vs) => vs,
        Axis::Range(..) => unreachable!("grid axes are validated to be value lists"),
    }
}

/// Cross-product in alphabetical axis order (arrival, fault_scale,
/// machines, tenants), later axes fastest.
fn expand_grid(spec: &SweepSpec) -> Vec<JobConfig> {
    let mut out = Vec::new();
    for arrival in &spec.arrival {
        for &fault_scale in axis_values(&spec.fault_scale) {
            for &machines in axis_values(&spec.machines) {
                for &tenants in axis_values(&spec.tenants) {
                    out.push(JobConfig {
                        arrival: arrival.clone(),
                        fault_scale,
                        machines: machines as u64,
                        tenants: tenants as u64,
                    });
                }
            }
        }
    }
    out
}

/// A seeded Fisher–Yates permutation of `0..n`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (seed_stream(seed, i as u64) % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

/// Latin-hypercube expansion: each numeric axis is split into `samples`
/// strata; a per-axis seeded permutation assigns cell `j` stratum
/// `perm[j]`. Integer axes place strata at evenly-spaced distinct values;
/// float axes jitter inside the stratum with a seeded uniform draw (so
/// values stay strictly inside `[lo, hi)`); categorical axes map strata
/// onto the value list round-robin.
fn expand_lhs(spec: &SweepSpec) -> Vec<JobConfig> {
    let n = spec.samples;
    let axis_seed = |tag: u64| seed_stream(spec.seed ^ 0x5eed_a715, tag);
    let perm_of = |tag: u64| permutation(n, axis_seed(tag));

    let int_axis = |a: &Axis, tag: u64| -> Vec<u64> {
        let perm = perm_of(tag);
        match a {
            Axis::Values(vs) => perm.iter().map(|&s| vs[s % vs.len()] as u64).collect(),
            Axis::Range(lo, hi) => perm
                .iter()
                .map(|&s| {
                    if n == 1 {
                        ((lo + hi) / 2.0).round() as u64
                    } else {
                        (lo + (s as f64 * (hi - lo) / (n - 1) as f64).round()) as u64
                    }
                })
                .collect(),
        }
    };
    let float_axis = |a: &Axis, tag: u64| -> Vec<f64> {
        let perm = perm_of(tag);
        match a {
            Axis::Values(vs) => perm.iter().map(|&s| vs[s % vs.len()]).collect(),
            Axis::Range(lo, hi) => perm
                .iter()
                .enumerate()
                .map(|(j, &s)| {
                    // A seeded jitter inside stratum `s`: exact dyadic
                    // rational in [0, 1), so the draw is bit-stable.
                    let u = (seed_stream(axis_seed(tag ^ 0xf2ac), j as u64) >> 11) as f64
                        * (1.0 / (1u64 << 53) as f64);
                    lo + (s as f64 + u) * (hi - lo) / n as f64
                })
                .collect(),
        }
    };

    let machines = int_axis(&spec.machines, 1);
    let tenants = int_axis(&spec.tenants, 2);
    let fault = float_axis(&spec.fault_scale, 3);
    let arrival_perm = perm_of(4);
    (0..n)
        .map(|j| JobConfig {
            arrival: spec.arrival[arrival_perm[j] % spec.arrival.len()].clone(),
            fault_scale: fault[j],
            machines: machines[j],
            tenants: tenants[j],
        })
        .collect()
}

// ------------------------------------------------------------- reporting

/// Normalized spec echo, embedded in the report and hashed into
/// `spec_hash`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecEcho {
    /// `grid` or `lhs`.
    pub mode: String,
    /// LHS cell count (0 for grids).
    pub samples: u64,
    /// Master sweep seed.
    pub seed: u64,
    /// Arrival-trace length per cell.
    pub requests: u64,
    /// Serving batch width per cell.
    pub batch_size: u64,
    /// Axes in alphabetical order with normalized value strings.
    pub axes: Vec<AxisEcho>,
}

/// One normalized axis line of the spec echo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisEcho {
    /// Axis name.
    pub name: String,
    /// Normalized value list (`8,16`) or range (`8..64`).
    pub values: String,
}

impl AxisEcho {
    fn new(name: &str, values: String) -> AxisEcho {
        AxisEcho {
            name: name.to_string(),
            values,
        }
    }
}

/// Deterministic metrics of one cell: counts, exact cost sums, and the
/// decision-log digest. Wall-clock never appears here — that is what
/// makes the whole report bit-stable across reruns and thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellMetrics {
    /// Arrivals in the cell's trace.
    pub requests: u64,
    /// Requests dropped by admission control.
    pub shed: u64,
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Admitted requests that completed.
    pub completed: u64,
    /// Admitted requests whose default plan failed too.
    pub failed: u64,
    /// Batched forwards issued.
    pub batches: u64,
    /// Served requests resolved below a clean steered/default serve.
    pub degraded: u64,
    /// Fault-injected retries survived.
    pub total_retries: u64,
    /// Total observed CPU cost of completed requests (exact f64 sum in
    /// arrival order).
    pub total_cost: f64,
    /// CPU cost burnt by killed attempts.
    pub total_wasted_cost: f64,
    /// completed / admitted.
    pub completion_rate: f64,
    /// shed / requests.
    pub shed_rate: f64,
    /// Hex digest of the decision log
    /// ([`ServeReport::decision_digest`]).
    pub decision_hash: String,
}

/// One cell of a sweep report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Matrix position.
    pub index: u64,
    /// The job's derived seed.
    pub seed: u64,
    /// The swept configuration.
    pub config: CellConfig,
    /// Canonical hash of `config` — the key `compare` matches cells by.
    pub config_hash: String,
    /// The deterministic metrics.
    pub metrics: CellMetrics,
    /// Canonical hash of `metrics`.
    pub metrics_hash: String,
}

/// The reproducibility manifest: everything needed to replay the sweep
/// without the spec file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Runbook {
    /// Hash of (spec_hash, seeds) — the sweep's identity.
    pub id: String,
    /// Number of semantic jobs (distinct seeds).
    pub jobs: u64,
    /// Number of cells (jobs × thread replicas).
    pub cells: u64,
    /// Master sweep seed.
    pub sweep_seed: u64,
    /// Per-job seeds, in matrix order.
    pub seeds: Vec<u64>,
    /// Artifacts this manifest describes.
    pub artifacts: Vec<String>,
    /// True when every group of cells differing only in `threads`
    /// produced identical metrics — the harness's determinism
    /// self-check.
    pub thread_invariant: bool,
}

/// The whole scenario matrix as one canonical-JSON document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Always `sweep`.
    pub bench: String,
    /// Scale the pipeline context was prepared at.
    pub scale: String,
    /// Normalized spec echo.
    pub spec: SpecEcho,
    /// Canonical hash of `spec`.
    pub spec_hash: String,
    /// One cell per job, in matrix order.
    pub cells: Vec<SweepCell>,
    /// The reproducibility manifest.
    pub runbook: Runbook,
}

/// Renders a report as canonical JSON with a trailing newline — the exact
/// bytes written to `BENCH_sweep.json`.
pub fn canonical_report(r: &SweepReport) -> String {
    let mut s = canon::canonical_of(r);
    s.push('\n');
    s
}

fn metrics_of(report: &ServeReport) -> CellMetrics {
    let degraded = report
        .decision_log
        .iter()
        .filter(|r| match r.outcome {
            RequestOutcome::Served { resolution, .. } => resolution.is_degraded(),
            RequestOutcome::Shed => false,
        })
        .count() as u64;
    CellMetrics {
        requests: report.requests as u64,
        shed: report.shed as u64,
        admitted: report.admitted as u64,
        completed: report.completed as u64,
        failed: report.failed as u64,
        batches: report.batches as u64,
        degraded,
        total_retries: u64::from(report.total_retries),
        total_cost: report.total_cost,
        total_wasted_cost: report.total_wasted_cost,
        completion_rate: report.completion_rate(),
        shed_rate: report.shed_rate(),
        decision_hash: canon::hex16(report.decision_digest()),
    }
}

// --------------------------------------------------------------- running

/// The once-trained pipeline context every cell serves against. Preparing
/// it is the expensive part of a sweep; tests share one across runs.
pub struct SweepContext {
    prepared: PreparedProject,
    predictor: AdaptiveCostPredictor,
    evaluated: Vec<EvaluatedQuery>,
    strategy: EnvStrategy,
}

/// A pipeline configuration small enough that training is a footnote next
/// to the matrix itself (mirrors the chaos/serve benchmarks).
fn sweep_pipeline_config(scale: Scale) -> PipelineConfig {
    let f = scale.fraction();
    PipelineConfig {
        train_days: 6,
        test_days: 2,
        max_train: ((1200.0 * f) as usize).max(120),
        max_test: ((60.0 * f) as usize).max(12),
        eval_rounds: 3,
        da_queries: 12,
        train_cfg: TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        },
        ..PipelineConfig::default()
    }
}

impl SweepContext {
    /// Prepares, trains, and evaluates the pipeline once. Deterministic at
    /// any thread count (the training-determinism guarantee).
    pub fn prepare(scale: Scale) -> SweepContext {
        let profile = scaled_eval_profile(1, scale);
        let cfg = sweep_pipeline_config(scale);
        let prepared =
            prepare_project(&profile, ProjectId(1), &cfg).expect("project preparation failed");
        let predictor = train_loam(&prepared, &cfg).expect("LOAM training failed");
        let evaluated = evaluate_candidates(&prepared, &cfg).expect("candidate evaluation failed");
        let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
        SweepContext {
            prepared,
            predictor,
            evaluated,
            strategy,
        }
    }
}

fn arrival_profile(name: &str) -> Result<ArrivalProfile, String> {
    // Shared rate constants across shapes (the serve benchmark's values),
    // so the arrival axis varies *shape*, not offered load.
    match name {
        "poisson" => Ok(ArrivalProfile::Poisson { rate_qps: 64.0 }),
        "bursty" => Ok(ArrivalProfile::Bursty {
            rate_qps: 64.0,
            burst_factor: 8.0,
            burst_fraction: 0.25,
        }),
        "diurnal" => Ok(ArrivalProfile::Diurnal {
            rate_qps: 64.0,
            amplitude: 0.6,
            period_s: 4.0,
        }),
        other => Err(format!("unknown arrival profile `{other}`")),
    }
}

/// Per-cell serving knobs shared by fresh runs and runbook replays.
#[derive(Debug, Clone, Copy)]
struct CellRunParams {
    requests: usize,
    batch_size: usize,
}

/// One cell ready to run: a job replica pinned to a pool size.
#[derive(Debug, Clone)]
struct CellSpec {
    index: u64,
    seed: u64,
    config: CellConfig,
}

fn run_cell(
    ctx: &SweepContext,
    params: CellRunParams,
    cell: &CellSpec,
) -> Result<SweepCell, String> {
    let cfg = ServeConfig::builder()
        .arrival(arrival_profile(&cell.config.arrival)?)
        .tenants(cell.config.tenants as usize)
        .requests(params.requests)
        .batch_size(params.batch_size)
        .machines(cell.config.machines as usize)
        .fault_scale(cell.config.fault_scale)
        .warmup_ticks(2)
        .strategy(ctx.strategy)
        .seed(cell.seed)
        .build()
        .map_err(|e| format!("cell {}: invalid serve config: {e:?}", cell.index))?;
    let session =
        ServeSession::new(cfg).map_err(|e| format!("cell {}: session: {e:?}", cell.index))?;
    let report = session
        .run(
            &ctx.predictor,
            &ctx.evaluated,
            &ctx.prepared.project.catalog,
            None,
        )
        .map_err(|e| format!("cell {}: serving failed: {e:?}", cell.index))?;
    let metrics = metrics_of(&report);
    Ok(SweepCell {
        index: cell.index,
        seed: cell.seed,
        config: cell.config.clone(),
        config_hash: canon::hash_of(&cell.config),
        metrics_hash: canon::hash_of(&metrics),
        metrics,
    })
}

/// Runs every cell, grouped by thread count: each group executes under
/// [`mcsim_par::with_threads`] at its declared pool size, cells fanned out
/// through the gated pool (nested fan-outs inside a cell run inline).
/// Results return in matrix order regardless of grouping.
fn run_cells(
    ctx: &SweepContext,
    params: CellRunParams,
    cells: &[CellSpec],
) -> Result<Vec<SweepCell>, String> {
    let mut thread_counts: Vec<u64> = cells.iter().map(|c| c.config.threads).collect();
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let mut out: Vec<Option<SweepCell>> = Vec::with_capacity(cells.len());
    out.resize_with(cells.len(), || None);
    for t in thread_counts {
        let group: Vec<(usize, &CellSpec)> = cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.config.threads == t)
            .collect();
        let results: Vec<(usize, Result<SweepCell, String>)> =
            mcsim_par::with_threads(t as usize, || {
                mcsim_par::ThreadPool::global().parallel_map_gated(
                    &group,
                    // Each cell serves a whole trace against its own
                    // cluster — always worth a fan-out slot.
                    usize::MAX / group.len().max(1),
                    |(pos, cell)| (*pos, run_cell(ctx, params, cell)),
                )
            });
        for (pos, r) in results {
            out[pos] = Some(r?);
        }
    }
    Ok(out
        .into_iter()
        .map(|c| c.expect("every cell ran exactly once"))
        .collect())
}

/// True when every group of cells differing only in `threads` produced
/// identical metrics.
fn thread_invariant(cells: &[SweepCell]) -> bool {
    let mut groups: std::collections::HashMap<String, &str> = std::collections::HashMap::new();
    for c in cells {
        let key = canon::hash_of(&CellConfig {
            threads: 0,
            ..c.config.clone()
        });
        match groups.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != c.metrics_hash {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(&c.metrics_hash);
            }
        }
    }
    true
}

fn assemble(scale_name: String, echo: SpecEcho, cells: Vec<SweepCell>) -> SweepReport {
    let spec_hash = canon::hash_of(&echo);
    let seeds: Vec<u64> = cells.iter().map(|c| c.seed).collect();
    let mut distinct = seeds.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let runbook = Runbook {
        id: canon::hex16(canon::fnv1a64(
            canon::canonical_of(&(spec_hash.clone(), seeds.clone())).as_bytes(),
        )),
        jobs: distinct.len() as u64,
        cells: cells.len() as u64,
        sweep_seed: echo.seed,
        seeds,
        artifacts: vec!["BENCH_sweep.json".to_string()],
        thread_invariant: thread_invariant(&cells),
    };
    SweepReport {
        bench: "sweep".to_string(),
        scale: scale_name,
        spec: echo,
        spec_hash,
        cells,
        runbook,
    }
}

/// Expands the spec and runs the whole matrix against a prepared context.
///
/// # Errors
///
/// Returns a message when the spec fails validation or a cell fails to
/// serve.
pub fn run_sweep(
    ctx: &SweepContext,
    scale: Scale,
    spec: &SweepSpec,
) -> Result<SweepReport, String> {
    let jobs = expand(spec)?;
    // Cells = jobs × thread replicas, job-major with replicas adjacent.
    // Every replica of a job reuses the job's seed — by construction the
    // replicas are reruns of the same experiment at different pool sizes.
    let cells: Vec<CellSpec> = jobs
        .iter()
        .flat_map(|job| {
            spec.threads
                .iter()
                .enumerate()
                .map(move |(ti, &t)| CellSpec {
                    index: job.index * spec.threads.len() as u64 + ti as u64,
                    seed: job.seed,
                    config: CellConfig::of(&job.config, t as u64),
                })
        })
        .collect();
    let cells = run_cells(
        ctx,
        CellRunParams {
            requests: spec.requests,
            batch_size: spec.batch_size,
        },
        &cells,
    )?;
    Ok(assemble(
        format!("{scale:?}").to_lowercase(),
        spec.echo(),
        cells,
    ))
}

/// Replays a sweep from its own report: jobs are reconstructed from the
/// runbook's cells (config + seed), never from the spec, so a report is a
/// self-contained reproduction recipe. A replay of an untampered report
/// is byte-identical to the original.
///
/// # Errors
///
/// Returns a message when the report's spec echo or a cell is invalid.
pub fn replay(ctx: &SweepContext, report: &SweepReport) -> Result<SweepReport, String> {
    let cells: Vec<CellSpec> = report
        .cells
        .iter()
        .map(|c| CellSpec {
            index: c.index,
            seed: c.seed,
            config: c.config.clone(),
        })
        .collect();
    let cells = run_cells(
        ctx,
        CellRunParams {
            requests: report.spec.requests as usize,
            batch_size: report.spec.batch_size as usize,
        },
        &cells,
    )?;
    Ok(SweepReport {
        bench: report.bench.clone(),
        scale: report.scale.clone(),
        spec: report.spec.clone(),
        spec_hash: report.spec_hash.clone(),
        runbook: assemble(report.scale.clone(), report.spec.clone(), cells.clone()).runbook,
        cells,
    })
}

/// The `experiments sweep` subcommand: parses the spec (a `--spec` file,
/// or the embedded quick/full spec), runs the matrix, prints the cell
/// table, and writes canonical JSON to `BENCH_sweep.json`.
pub fn run(scale: Scale, quick: bool, spec_path: Option<&str>) {
    println!("Sweep — deterministic scenario matrix over a once-trained pipeline\n");
    let text = match spec_path {
        Some(p) => std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("sweep: cannot read spec `{p}`: {e}");
            std::process::exit(2);
        }),
        None => (if quick { QUICK_SPEC } else { FULL_SPEC }).to_string(),
    };
    let spec = SweepSpec::parse(&text).unwrap_or_else(|e| {
        eprintln!("sweep: invalid spec: {e}");
        std::process::exit(2);
    });
    let jobs = expand(&spec).expect("validated specs expand");
    eprintln!(
        "matrix: {} jobs x {} thread replica(s) = {} cells ({} mode), seed {}; \
         preparing + training the pipeline...",
        jobs.len(),
        spec.threads.len(),
        jobs.len() * spec.threads.len(),
        match spec.mode {
            Mode::Grid => "grid",
            Mode::Lhs => "lhs",
        },
        spec.seed
    );
    let ctx = SweepContext::prepare(scale);
    let started = std::time::Instant::now();
    let report = run_sweep(&ctx, scale, &spec).unwrap_or_else(|e| {
        eprintln!("sweep: {e}");
        std::process::exit(2);
    });
    let wall = started.elapsed().as_secs_f64();

    let mut t = Table::new([
        "cell",
        "arrival",
        "fault",
        "machines",
        "tenants",
        "threads",
        "completed",
        "degraded",
        "shed",
        "cost",
        "decisions",
    ]);
    for c in &report.cells {
        t.row([
            c.index.to_string(),
            c.config.arrival.clone(),
            format!("{:.2}", c.config.fault_scale),
            c.config.machines.to_string(),
            c.config.tenants.to_string(),
            c.config.threads.to_string(),
            format!("{}/{}", c.metrics.completed, c.metrics.admitted),
            c.metrics.degraded.to_string(),
            c.metrics.shed.to_string(),
            format!("{:.0}", c.metrics.total_cost),
            c.metrics.decision_hash[..8].to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "runbook {} over {} jobs / {} cells (spec {}): thread_invariant={}, wall {:.1}s",
        report.runbook.id,
        report.runbook.jobs,
        report.runbook.cells,
        report.spec_hash,
        report.runbook.thread_invariant,
        wall
    );

    let path = "BENCH_sweep.json";
    match std::fs::write(path, canonical_report(&report)) {
        Ok(()) => println!("wrote {path} (canonical JSON; bit-identical across reruns)"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_and_full_specs_parse_and_expand() {
        let quick = SweepSpec::parse(QUICK_SPEC).expect("quick spec parses");
        let jobs = expand(&quick).expect("quick spec expands");
        assert!(!jobs.is_empty());
        assert_eq!(quick.mode, Mode::Grid);
        let full = SweepSpec::parse(FULL_SPEC).expect("full spec parses");
        let jobs = expand(&full).expect("full spec expands");
        assert_eq!(full.mode, Mode::Lhs);
        assert_eq!(jobs.len(), full.samples);
    }

    #[test]
    fn grid_expansion_is_the_ordered_cross_product() {
        let spec = SweepSpec::parse(
            "mode = grid\nseed = 7\naxis.machines = 8,16\naxis.tenants = 4,8\n\
             axis.fault_scale = 0.0,1.0\naxis.arrival = poisson\naxis.threads = 1,2\n",
        )
        .expect("spec parses");
        let jobs = expand(&spec).expect("expands");
        // The job matrix covers the workload axes only; threads replicates.
        assert_eq!(jobs.len(), 2 * 2 * 2);
        // tenants is the fastest axis, machines slower, fault_scale slowest.
        assert_eq!(jobs[0].config.tenants, 4);
        assert_eq!(jobs[1].config.tenants, 8);
        assert_eq!(jobs[0].config.machines, 8);
        assert_eq!(jobs[2].config.machines, 16);
        assert_eq!(jobs[0].config.fault_scale, 0.0);
        assert_eq!(jobs[4].config.fault_scale, 1.0);
        // Indices are dense and seeds derived per index.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i as u64);
            assert_eq!(j.seed, mcsim_exec::seed_stream(7, i as u64));
        }
    }

    #[test]
    fn spec_validation_rejects_bad_input() {
        for (text, what) in [
            ("mode = warp\n", "bad mode"),
            ("nonsense\n", "no equals"),
            ("axis.machines = 8,8\n", "duplicate values"),
            ("axis.machines = 2.5\n", "fractional machines"),
            ("mode = grid\nsamples = 4\n", "samples in grid mode"),
            ("mode = grid\naxis.machines = 8..16\n", "range in grid mode"),
            ("mode = lhs\n", "lhs without samples"),
            (
                "mode = lhs\nsamples = 4\naxis.machines = 8,16\n",
                "lhs without a separating axis",
            ),
            ("axis.arrival = warp\n", "unknown arrival"),
            ("axis.threads = 0\n", "zero threads"),
            ("requests = 0\n", "zero requests"),
        ] {
            assert!(SweepSpec::parse(text).is_err(), "{what} must be rejected");
        }
    }

    #[test]
    fn lhs_is_stratified_in_bounds_and_duplicate_free() {
        let spec = SweepSpec::parse(
            "mode = lhs\nsamples = 9\nseed = 1234\naxis.machines = 8..64\n\
             axis.tenants = 2..16\naxis.fault_scale = 0.0..2.0\n\
             axis.arrival = poisson,bursty,diurnal\naxis.threads = 1,2,4\n",
        )
        .expect("spec parses");
        let jobs = expand(&spec).expect("expands");
        assert_eq!(jobs.len(), 9);
        for j in &jobs {
            assert!((8..=64).contains(&j.config.machines));
            assert!((2..=16).contains(&j.config.tenants));
            assert!(j.config.fault_scale >= 0.0 && j.config.fault_scale < 2.0);
        }
        // The separating axis gives every job a distinct machine count.
        let mut machines: Vec<u64> = jobs.iter().map(|j| j.config.machines).collect();
        machines.sort_unstable();
        machines.dedup();
        assert_eq!(machines.len(), jobs.len());
    }

    #[test]
    fn echo_hash_is_stable_under_reparse() {
        let spec = SweepSpec::parse(QUICK_SPEC).expect("parses");
        let echo = spec.echo();
        let json = canon::canonical_of(&echo);
        let back: SpecEcho = serde_json::from_str(&json).expect("echo round-trips");
        assert_eq!(back, echo);
        assert_eq!(canon::hash_of(&back), canon::hash_of(&echo));
    }
}
