//! Figure 7: per-query execution cost of LOAM vs. MaxCompute — queries
//! sorted by cost delta (slowdown → speedup), with improvement/regression
//! counts and magnitudes.

use crate::exps::common::ProjectRun;
use loam_core::pipeline::evaluate_model;

/// Prints the per-query analysis for one project.
pub fn print_project(run: &ProjectRun) {
    let loam =
        evaluate_model(&run.loam, &run.strategy, &run.evaluated).expect("model evaluation failed");
    // (default − chosen): positive = speedup.
    let mut deltas: Vec<(f64, f64, f64)> = loam
        .per_query
        .iter()
        .map(|&(def, chosen)| (def - chosen, def, chosen))
        .collect();
    deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    let slowdowns = deltas
        .iter()
        .filter(|d| d.0 < -1e-9 && d.2 > d.1 * 1.02)
        .count();
    let speedups = deltas
        .iter()
        .filter(|d| d.0 > 1e-9 && d.2 < d.1 * 0.98)
        .count();
    let worst = deltas.first().map(|d| -d.0).unwrap_or(0.0).max(0.0);
    let best = deltas.last().map(|d| d.0).unwrap_or(0.0).max(0.0);
    let n = deltas.len();

    // Relative improvements among improved queries.
    let mut rel_gains: Vec<f64> = deltas
        .iter()
        .filter(|d| d.0 > 0.0 && d.1 > 0.0)
        .map(|d| d.0 / d.1)
        .collect();
    rel_gains.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median_gain = rel_gains.get(rel_gains.len() / 2).copied().unwrap_or(0.0);

    println!(
        "Project {}: {} test queries — {} slowdowns ({:.0}%), {} speedups ({:.0}%)",
        run.n,
        n,
        slowdowns,
        100.0 * slowdowns as f64 / n.max(1) as f64,
        speedups,
        100.0 * speedups as f64 / n.max(1) as f64,
    );
    println!(
        "  worst regression {:.0}, best improvement {:.0} (ratio best/worst = {:.1}x), median relative gain among improved {:.0}%",
        worst,
        best,
        best / worst.max(1e-9),
        median_gain * 100.0
    );

    // Compact sorted-delta sparkline (16 buckets).
    let buckets = 16usize.min(n.max(1));
    let mut line = String::from("  sorted Δ(default−chosen): ");
    for b in 0..buckets {
        let idx = b * n / buckets;
        let d = deltas[idx].0;
        line.push(if d < -1e-9 {
            '▼'
        } else if d > 1e-9 {
            '▲'
        } else {
            '·'
        });
    }
    println!("{line}");
}

/// Prints the analysis for all projects.
pub fn print(runs: &[ProjectRun]) {
    println!("Figure 7 — per-query cost of LOAM vs MaxCompute (sorted slowdown→speedup)");
    println!("(paper: improvements far outnumber and outweigh regressions on P1/P2/P5)\n");
    for run in runs {
        print_project(run);
    }
}
