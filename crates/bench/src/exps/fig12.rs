//! Figure 12: Ranker performance — Recall@(k, n) and NDCG@k against a
//! uniform random ranking, cross-validated over splits of 28 projects
//! (13 train / 15 test, as in Section 7.2.6).

use crate::exps::population::{labeled_28, PopulationProject};
use crate::report::Table;
use crate::scale::Scale;
use loam_core::selector::metrics::{
    expected_random_ndcg, expected_random_recall, ndcg_at, recall_at,
};
use loam_core::selector::Ranker;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of the cross-validated evaluation.
pub struct RankerEval {
    /// Mean Recall@(k, k) per k (1-based index k−1).
    pub recall: Vec<f64>,
    /// Mean NDCG@k per k.
    pub ndcg: Vec<f64>,
    /// Expected random Recall@(k, k).
    pub random_recall: Vec<f64>,
    /// Expected random NDCG@k.
    pub random_ndcg: Vec<f64>,
}

/// Trains on `train` projects' per-query pairs, ranks `test` projects, and
/// scores against the ground-truth improvement ordering.
pub fn evaluate_split(
    train: &[&PopulationProject],
    test: &[&PopulationProject],
    ks: &[usize],
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    let mut feats: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<f64> = Vec::new();
    for p in train {
        feats.extend(p.query_features.iter().cloned());
        labels.extend(p.query_improvement.iter().copied());
    }
    let ranker = Ranker::fit(&feats, &labels, seed);

    let project_feats: Vec<Vec<Vec<f64>>> = test.iter().map(|p| p.query_features.clone()).collect();
    let predicted = ranker.rank_projects(&project_feats);
    let relevance: Vec<f64> = test.iter().map(|p| p.improvement()).collect();
    let mut truth: Vec<usize> = (0..test.len()).collect();
    truth.sort_by(|&a, &b| {
        relevance[b]
            .partial_cmp(&relevance[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let recalls = ks
        .iter()
        .map(|&k| recall_at(&predicted, &truth, k, k))
        .collect();
    let ndcgs = ks
        .iter()
        .map(|&k| ndcg_at(&predicted, &relevance, k))
        .collect();
    (recalls, ndcgs)
}

/// Cross-validates the Ranker over `n_splits` random splits.
pub fn cross_validate(
    population: &[PopulationProject],
    train_size: usize,
    n_splits: usize,
    ks: &[usize],
    seed: u64,
) -> RankerEval {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut recall_sum = vec![0.0; ks.len()];
    let mut ndcg_sum = vec![0.0; ks.len()];
    let mut random_ndcg_sum = vec![0.0; ks.len()];
    let mut idx: Vec<usize> = (0..population.len()).collect();
    let test_size = population.len() - train_size;
    for split in 0..n_splits {
        idx.shuffle(&mut rng);
        let train: Vec<&PopulationProject> =
            idx[..train_size].iter().map(|&i| &population[i]).collect();
        let test: Vec<&PopulationProject> =
            idx[train_size..].iter().map(|&i| &population[i]).collect();
        let (r, n) = evaluate_split(&train, &test, ks, seed ^ split as u64);
        for (i, v) in r.into_iter().enumerate() {
            recall_sum[i] += v;
        }
        for (i, v) in n.into_iter().enumerate() {
            ndcg_sum[i] += v;
        }
        let rel: Vec<f64> = test.iter().map(|p| p.improvement()).collect();
        for (i, &k) in ks.iter().enumerate() {
            random_ndcg_sum[i] += expected_random_ndcg(&rel, k);
        }
    }
    let s = n_splits as f64;
    RankerEval {
        recall: recall_sum.iter().map(|v| v / s).collect(),
        ndcg: ndcg_sum.iter().map(|v| v / s).collect(),
        random_recall: ks
            .iter()
            .map(|&k| expected_random_recall(k, test_size))
            .collect(),
        random_ndcg: random_ndcg_sum.iter().map(|v| v / s).collect(),
    }
}

/// Runs the full experiment and prints both metric curves.
pub fn run(scale: Scale) {
    println!("Figure 12 — Ranker vs Random (28 projects, 13 train / 15 test, cross-validated)\n");
    let population = labeled_28(scale);
    let ks = [1usize, 2, 3, 4, 5, 6, 7, 8];
    let eval = cross_validate(population, 13, 6, &ks, 0xabc);

    let mut t = Table::new([
        "k",
        "Recall@(k,k)",
        "Random recall",
        "NDCG@k",
        "Random NDCG",
    ]);
    for (i, &k) in ks.iter().enumerate() {
        t.row([
            format!("{k}"),
            format!("{:.3}", eval.recall[i]),
            format!("{:.3}", eval.random_recall[i]),
            format!("{:.3}", eval.ndcg[i]),
            format!("{:.3}", eval.random_ndcg[i]),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: Ranker consistently and substantially above Random on both metrics)");
}
