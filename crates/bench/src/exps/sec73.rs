//! Section 7.3: the expected deployment benefit across the whole project
//! population — filter pass rate × fraction of sampled (passing) projects
//! with ≥10 % end-to-end gain (paper: ≈40.5 % × ≈10 % ⇒ ≈4 %).

use crate::exps::population::{build, filter_config};
use crate::report::Table;
use crate::scale::{scaled_pipeline_config, Scale};
use loam_core::inference::EnvStrategy;
use loam_core::pipeline::{
    evaluate_candidates, evaluate_model, evaluate_native, prepare_project, train_loam,
};
use mcsim_catalog::{ProjectId, ProjectProfile};

/// Runs the experiment with the evaluation projects' measured LOAM gains
/// (from the Figure 6 runs), mirroring the paper's estimation: the five
/// evaluation projects are the highest-improvement members of a 30-project
/// random sample, the other 25 are conservatively treated as low-benefit,
/// so the ≥10 % rate is (winners among the five) / 30.
pub fn run_with_gains(scale: Scale, eval_gains: &[f64]) {
    println!(
        "Section 7.3 — expected deployment benefit across the population
"
    );
    let pass_rate = filter_pass_rate(scale);
    let winners = eval_gains.iter().filter(|&&g| g >= 0.10).count();
    let gain_rate = winners as f64 / 30.0;
    println!(
        "evaluation-project gains: {:?} ⇒ {} of the 30-project sample gain ≥10% (paper: 3 of 30)",
        eval_gains
            .iter()
            .map(|g| format!("{:+.1}%", g * 100.0))
            .collect::<Vec<_>>(),
        winners
    );
    println!(
        "estimated population-wide share with ≥10% gain: {:.1}% × {:.1}% = {:.1}% (paper: 40.5% × 10% ≈ 4%)",
        pass_rate * 100.0,
        gain_rate * 100.0,
        pass_rate * gain_rate * 100.0
    );
}

fn filter_pass_rate(scale: Scale) -> f64 {
    let population = build(100, scale, false, 0x7373);
    let passing = population.iter().filter(|p| p.filter.passes()).count();
    let cfg = filter_config(scale);
    println!(
        "Filter (R1: n_query ≥ {:.0}/day, R2: growth ≥ {:.3}, R3: stable ratio ≥ {:.2}):",
        cfg.n0, cfg.r, cfg.theta
    );
    println!(
        "  {} of {} projects pass ⇒ pass rate {:.1}% (paper: 40.5%)
",
        passing,
        population.len(),
        passing as f64 / population.len() as f64 * 100.0
    );
    passing as f64 / population.len() as f64
}

/// Standalone variant: also runs the end-to-end pipeline on a random sample
/// of *passing population* projects (supplementary evidence — most random
/// projects have little improvement space, which is the point of project
/// selection).
pub fn run(scale: Scale) {
    println!("Section 7.3 — expected deployment benefit across the population\n");

    // 1) Filter pass rate on a broad population (no labels needed).
    let pass_rate = filter_pass_rate(scale);
    let population = build(100, scale, false, 0x7373);
    let passing: Vec<_> = population.iter().filter(|p| p.filter.passes()).collect();

    // 2) End-to-end LOAM gain on a random sample of passing projects.
    let sample_n = match scale {
        Scale::Small => 6,
        Scale::Medium => 10,
        Scale::Full => 12,
    };
    let mut pipeline_cfg = scaled_pipeline_config(scale);
    // Population projects are smaller than the evaluation projects; keep the
    // per-project work bounded.
    pipeline_cfg.max_train = pipeline_cfg.max_train.min(1200);
    pipeline_cfg.max_test = pipeline_cfg.max_test.min(40);

    let mut t = Table::new(["project", "MaxCompute", "LOAM", "gain"]);
    let mut gains = Vec::new();
    for (i, pop) in passing.iter().take(sample_n).enumerate() {
        let profile: ProjectProfile = pop.project.profile.clone();
        // Degenerate population projects (no history, no test queries) are
        // expected here — skip them instead of failing the sweep.
        let Ok(prepared) = prepare_project(&profile, ProjectId(2000 + i as u32), &pipeline_cfg)
        else {
            continue;
        };
        let Ok(loam) = train_loam(&prepared, &pipeline_cfg) else {
            continue;
        };
        let Ok(evaluated) = evaluate_candidates(&prepared, &pipeline_cfg) else {
            continue;
        };
        let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
        let native = evaluate_native(&evaluated).expect("native evaluation failed");
        let model = evaluate_model(&loam, &strategy, &evaluated).expect("model evaluation failed");
        let gain = 1.0 - model.avg_cost / native.avg_cost;
        gains.push(gain);
        t.row([
            format!("sample-{i}"),
            format!("{:.0}", native.avg_cost),
            format!("{:.0}", model.avg_cost),
            format!("{:+.1}%", gain * 100.0),
        ]);
    }
    println!("{}", t.render());

    let big_gain = gains.iter().filter(|&&g| g >= 0.10).count();
    let gain_rate = big_gain as f64 / gains.len().max(1) as f64;
    println!(
        "{} of {} sampled passing projects gain ≥10% ⇒ rate {:.0}% (paper: ≈10%)",
        big_gain,
        gains.len(),
        gain_rate * 100.0
    );
    println!(
        "estimated population-wide share with ≥10% gain: {:.1}% × {:.0}% = {:.1}% (paper: ≈4%)",
        pass_rate * 100.0,
        gain_rate * 100.0,
        pass_rate * gain_rate * 100.0
    );
}
