//! The `experiments trace` subcommand: one representative query, fully
//! audited.
//!
//! Runs a deliberately small end-to-end pipeline — project selection
//! (filter + ranker), history building, training, candidate evaluation,
//! the deployment gate — under a per-query [`TraceContext`], then steers
//! and executes one representative test query with a machine-level
//! scheduling timeline. Writes `trace.json` (Chrome trace-event format,
//! loadable in `chrome://tracing` / Perfetto) and `trace_report.txt` (the
//! text waterfall + decision audit), and prints the report.

use crate::scale::{scaled_eval_profile, Scale};
use loam_core::inference::EnvStrategy;
use loam_core::pipeline::{
    evaluate_candidates_traced, prepare_project, train_loam, PipelineConfig,
};
use loam_core::robust::RobustConfig;
use loam_core::selector::{evaluate_filter_traced, ranker_features, FilterConfig, Ranker};
use loam_core::serving::RobustServer;
use loam_core::{validate_deployment_traced, GateConfig, TrainConfig};
use mcsim_catalog::ProjectId;
use mcsim_exec::{Cluster, ClusterConfig, Executor};
use mcsim_obs::trace::TraceContext;
use mcsim_plan::PlanTree;

/// A pipeline configuration small enough that the traced run (and the CI
/// smoke built on it) finishes in seconds: the trace's value is the *shape*
/// of the run, not its statistical power.
fn trace_config(scale: Scale) -> PipelineConfig {
    let f = scale.fraction();
    PipelineConfig {
        train_days: 6,
        test_days: 2,
        max_train: ((1200.0 * f) as usize).max(120),
        max_test: ((60.0 * f) as usize).max(12),
        eval_rounds: 3,
        da_queries: 12,
        train_cfg: TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// Runs the traced pipeline and writes `trace.json` + `trace_report.txt`.
pub fn run(scale: Scale) {
    let ctx = run_traced(scale);

    let json = ctx.to_chrome_json();
    let report = ctx.to_text_report();
    std::fs::write("trace.json", &json).expect("writing trace.json failed");
    std::fs::write("trace_report.txt", &report).expect("writing trace_report.txt failed");

    println!("{report}");
    println!(
        "wrote trace.json ({} bytes: {} spans, {} decisions, {} executor stage events)",
        json.len(),
        ctx.span_count(),
        ctx.decision_count(),
        ctx.timeline_len()
    );
    println!("wrote trace_report.txt ({} bytes)", report.len());
}

/// The traced end-to-end run, returned for inspection (tests use this
/// directly instead of going through the filesystem).
pub fn run_traced(scale: Scale) -> TraceContext {
    let profile = scaled_eval_profile(1, scale);
    let cfg = trace_config(scale);
    let ctx = TraceContext::new("experiments trace: evaluation project 1");

    // Phase 1 — project selection audit: the rule-based filter and the
    // learned ranker both leave decision records.
    let prepared = {
        let _s = ctx.span("prepare");
        prepare_project(&profile, ProjectId(1), &cfg).expect("project preparation failed")
    };
    {
        let s = ctx.span("project_selection");
        s.attr("project", 1u64);
        let filter_cfg = FilterConfig::scaled(scale.fraction());
        let report = evaluate_filter_traced(
            &prepared.project,
            0,
            cfg.train_days.min(5),
            &filter_cfg,
            Some(&ctx),
        );
        s.attr("filter_selected", report.passes());
        // Rank this project against itself: the record shows the scoring
        // machinery even with a single candidate project.
        let feats: Vec<Vec<f64>> = prepared
            .repo
            .records()
            .iter()
            .take(200)
            .map(|r| ranker_features(&r.plan, &prepared.project.catalog, r.cpu_cost))
            .collect();
        let labels: Vec<f64> = prepared
            .repo
            .records()
            .iter()
            .take(200)
            .map(|r| r.cpu_cost.max(1.0).ln())
            .collect();
        let ranker = Ranker::fit(&feats, &labels, cfg.seed);
        let order = ranker.rank_projects_traced(&[feats], Some(&ctx));
        s.attr("ranked_projects", order.len());
    }

    // Phase 2 — train and evaluate, with per-query optimize/execute spans.
    let predictor = {
        let s = ctx.span("train");
        s.attr("samples", prepared.train_samples.len());
        train_loam(&prepared, &cfg).expect("LOAM training failed")
    };
    let evaluated = {
        let s = ctx.span("evaluate");
        s.attr("test_queries", prepared.test_queries.len());
        evaluate_candidates_traced(&prepared, &cfg, Some(&ctx))
            .expect("candidate evaluation failed")
    };
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);

    // Phase 3 — the deployment gate's verdict, with evidence.
    {
        let _s = ctx.span("gate");
        let report = validate_deployment_traced(
            &predictor,
            &strategy,
            &evaluated,
            &GateConfig::default(),
            Some(&ctx),
        );
        println!(
            "gate: avg_ratio {:.4}, tail {:.3}, deploy = {}",
            report.avg_ratio,
            report.worst_tail_ratio,
            report.deploy()
        );
    }

    // Phase 4 — steer and execute one representative query (the one with
    // the richest candidate set) on a fresh cluster, capturing the
    // per-stage, per-machine scheduling timeline.
    {
        let rep = evaluated
            .iter()
            .max_by_key(|eq| eq.plans.len())
            .expect("at least one evaluated query");
        let s = ctx.span("representative_query");
        s.attr("query_id", rep.query_id);
        s.attr("candidates", rep.plans.len());
        let choice = {
            let _s = ctx.span("infer");
            let refs: Vec<&PlanTree> = rep.plans.iter().collect();
            RobustServer::new(strategy, RobustConfig::default())
                .expect("default margin is valid")
                .select_guarded(&predictor, &refs, rep.default_idx, Some(&ctx), rep.query_id)
                .0
        };
        let _s = ctx.span("execute");
        let cluster = Cluster::new(cfg.seed ^ 0x7ace, ClusterConfig::default());
        let mut exec = Executor::new(cfg.seed ^ 0x7ace, cluster, profile.env_noise_sigma);
        exec.cluster.advance(150);
        let outcome =
            exec.execute_traced(&rep.plans[choice], &prepared.project.catalog, Some(&ctx));
        println!(
            "representative query {}: chose candidate #{choice} of {}, observed cost {:.1} \
             over {} stages",
            rep.query_id,
            rep.plans.len(),
            outcome.cpu_cost,
            outcome.stage_costs.len()
        );
    }

    ctx
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_obs::trace::Decision;

    #[test]
    fn traced_run_covers_every_decision_class_and_the_timeline() {
        let ctx = run_traced(Scale::Small);
        assert!(ctx.span_count() > 5, "got {} spans", ctx.span_count());
        assert!(ctx.timeline_len() > 0, "executor timeline must be captured");
        let ds = ctx.decisions();
        let has = |f: fn(&Decision) -> bool| ds.iter().any(f);
        assert!(has(|d| matches!(d, Decision::ProjectFilter(_))));
        assert!(has(|d| matches!(d, Decision::ProjectRanking(_))));
        assert!(has(|d| matches!(d, Decision::PlanSelection(_))));
        assert!(has(|d| matches!(d, Decision::GateVerdict(_))));
        // The exports render without panicking and carry the decisions.
        let json = ctx.to_chrome_json();
        assert!(json.contains("decision.plan_selection"));
        assert!(json.contains("decision.gate_verdict"));
        let report = ctx.to_text_report();
        assert!(report.contains("-- executor timeline"));
    }
}
