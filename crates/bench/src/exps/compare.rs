//! The `experiments compare` subcommand: a regression gate over two
//! `BENCH_*.json` reports (as written by `experiments parallel`).
//!
//! Diffs per-phase and total wall-clock between an old (baseline) and a new
//! report and flags any phase whose `parallel_s` regressed past a
//! configurable percentage threshold. Exit codes: [`EXIT_OK`] = within
//! threshold, [`EXIT_REGRESSION`] = regression detected, [`EXIT_PARSE`] =
//! unreadable/unparsable input.
//!
//! Besides the timing schema shared by `BENCH_parallel.json` /
//! `BENCH_train.json` / `BENCH_chaos.json` / `BENCH_serve.json`, phases may
//! carry the `BENCH_exec.json` scaling extras (`machines`, `queries`,
//! `events_per_s`) and the `degenerate` marker `experiments parallel` sets
//! when both legs ran at the same thread count; both are surfaced in the
//! diff but never gate it.

use serde::Deserialize;

/// Exit code: every phase stayed within the threshold.
pub const EXIT_OK: i32 = 0;
/// Exit code: at least one phase (or the total) regressed past the
/// threshold.
pub const EXIT_REGRESSION: i32 = 1;
/// Exit code: a report could not be read or parsed.
pub const EXIT_PARSE: i32 = 2;

/// One phase row of a `BENCH_*.json` report.
#[derive(Debug, Clone, Deserialize)]
pub struct PhaseRow {
    /// Phase name (e.g. `fig7_context`).
    pub name: String,
    /// Serial-baseline wall-clock seconds.
    pub serial_s: f64,
    /// Pool wall-clock seconds (the figure the gate compares).
    pub parallel_s: f64,
    /// serial_s / parallel_s.
    pub speedup: f64,
    /// `BENCH_exec.json`: machines in the simulated pool.
    pub machines: Option<u64>,
    /// `BENCH_exec.json`: queries executed per engine leg.
    pub queries: Option<u64>,
    /// `BENCH_exec.json`: fault events drained per second by the event
    /// engine.
    pub events_per_s: Option<f64>,
    /// `BENCH_parallel.json`: both legs ran at the same thread count, so
    /// the speedup column is meaningless.
    pub degenerate: Option<bool>,
}

impl PhaseRow {
    /// Whether the phase carries the `degenerate: true` marker.
    pub fn is_degenerate(&self) -> bool {
        self.degenerate == Some(true)
    }
}

/// The `total` block of a report.
#[derive(Debug, Clone, Deserialize)]
pub struct TotalRow {
    /// Serial-baseline total seconds.
    pub serial_s: f64,
    /// Pool total seconds.
    pub parallel_s: f64,
    /// serial_s / parallel_s.
    pub speedup: f64,
}

/// A parsed `BENCH_*.json` report.
#[derive(Debug, Clone, Deserialize)]
pub struct BenchReport {
    /// Benchmark id (`parallel`).
    pub bench: String,
    /// Scale the report was produced at.
    pub scale: String,
    /// Thread count of the serial pass.
    pub threads_serial: usize,
    /// Thread count of the pool pass.
    pub threads_parallel: usize,
    /// Per-phase timings.
    pub phases: Vec<PhaseRow>,
    /// Whole-run timings.
    pub total: TotalRow,
}

/// One compared phase: old/new seconds and the relative delta.
#[derive(Debug, Clone)]
pub struct PhaseDelta {
    /// Phase name.
    pub name: String,
    /// Baseline pool seconds.
    pub old_s: f64,
    /// New pool seconds.
    pub new_s: f64,
    /// Percent change ((new − old) / old × 100; positive = slower).
    pub delta_pct: f64,
}

/// The comparison outcome.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Per-phase deltas, in the new report's phase order, plus a final
    /// `total` row.
    pub deltas: Vec<PhaseDelta>,
    /// Phases (or `total`) regressing past the threshold.
    pub regressions: Vec<String>,
}

fn pct(old_s: f64, new_s: f64) -> f64 {
    100.0 * (new_s - old_s) / old_s.max(1e-9)
}

/// Compares two parsed reports at a regression threshold (percent).
pub fn compare(old: &BenchReport, new: &BenchReport, threshold_pct: f64) -> Comparison {
    let mut deltas = Vec::new();
    let mut regressions = Vec::new();
    for np in &new.phases {
        let Some(op) = old.phases.iter().find(|p| p.name == np.name) else {
            // A phase the baseline never measured can't regress.
            continue;
        };
        let delta_pct = pct(op.parallel_s, np.parallel_s);
        if delta_pct > threshold_pct {
            regressions.push(np.name.clone());
        }
        deltas.push(PhaseDelta {
            name: np.name.clone(),
            old_s: op.parallel_s,
            new_s: np.parallel_s,
            delta_pct,
        });
    }
    let total_delta = pct(old.total.parallel_s, new.total.parallel_s);
    if total_delta > threshold_pct {
        regressions.push("total".to_string());
    }
    deltas.push(PhaseDelta {
        name: "total".to_string(),
        old_s: old.total.parallel_s,
        new_s: new.total.parallel_s,
        delta_pct: total_delta,
    });
    Comparison {
        deltas,
        regressions,
    }
}

/// Parses a report file. Errors are strings so the caller can decide the
/// exit code.
pub fn load_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse `{path}`: {e:?}"))
}

/// The full subcommand: loads both reports, prints the diff table, and
/// returns the process exit code ([`EXIT_OK`], [`EXIT_REGRESSION`], or
/// [`EXIT_PARSE`]).
pub fn run(old_path: &str, new_path: &str, threshold_pct: f64) -> i32 {
    let (old, new) = match (load_report(old_path), load_report(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("compare: {e}");
            return EXIT_PARSE;
        }
    };
    println!(
        "comparing {old_path} (scale {}, {} threads) -> {new_path} (scale {}, {} threads), \
         threshold {threshold_pct:.0}%",
        old.scale, old.threads_parallel, new.scale, new.threads_parallel
    );
    if old.bench != new.bench {
        eprintln!(
            "compare: warning: different benchmarks ({} vs {})",
            old.bench, new.bench
        );
    }
    if let Some(p) = new.phases.iter().find(|p| p.is_degenerate()) {
        eprintln!(
            "compare: warning: phase `{}` in {new_path} is marked degenerate \
             (both legs ran at the same thread count) — its speedup is meaningless",
            p.name
        );
    }
    let cmp = compare(&old, &new, threshold_pct);
    println!(
        "{:<16} {:>12} {:>12} {:>9}",
        "phase", "old (s)", "new (s)", "delta"
    );
    for d in &cmp.deltas {
        let flag = if d.delta_pct > threshold_pct {
            "  REGRESSED"
        } else {
            ""
        };
        // Exec-scaling extras ride along the row when the new report has
        // them (informational; the gate stays a pure timing diff).
        let extra = new
            .phases
            .iter()
            .find(|p| p.name == d.name)
            .map(|p| {
                let mut s = String::new();
                if let Some(m) = p.machines {
                    s.push_str(&format!("  machines={m}"));
                }
                if let Some(q) = p.queries {
                    s.push_str(&format!(" queries={q}"));
                }
                if let Some(e) = p.events_per_s {
                    s.push_str(&format!(" events/s={e:.0}"));
                }
                s
            })
            .unwrap_or_default();
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>+8.1}%{flag}{extra}",
            d.name, d.old_s, d.new_s, d.delta_pct
        );
    }
    if cmp.regressions.is_empty() {
        println!("ok: no phase regressed more than {threshold_pct:.0}%");
        EXIT_OK
    } else {
        eprintln!(
            "regression: {} exceeded the {threshold_pct:.0}% threshold",
            cmp.regressions.join(", ")
        );
        EXIT_REGRESSION
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(phase_s: f64, total_s: f64) -> BenchReport {
        BenchReport {
            bench: "parallel".into(),
            scale: "small".into(),
            threads_serial: 1,
            threads_parallel: 8,
            phases: vec![PhaseRow {
                name: "fig7_context".into(),
                serial_s: phase_s * 1.5,
                parallel_s: phase_s,
                speedup: 1.5,
                machines: None,
                queries: None,
                events_per_s: None,
                degenerate: None,
            }],
            total: TotalRow {
                serial_s: total_s * 1.5,
                parallel_s: total_s,
                speedup: 1.5,
            },
        }
    }

    #[test]
    fn within_threshold_passes_and_regression_is_flagged() {
        let old = report(10.0, 12.0);
        let ok = compare(&old, &report(11.0, 13.0), 25.0);
        assert!(ok.regressions.is_empty(), "{:?}", ok.regressions);
        let bad = compare(&old, &report(14.0, 16.0), 25.0);
        assert_eq!(bad.regressions, vec!["fig7_context", "total"]);
        // Deltas carry the phase rows plus the total row.
        assert_eq!(bad.deltas.len(), 2);
        assert!(bad.deltas[0].delta_pct > 25.0);
    }

    #[test]
    fn speedups_are_not_regressions() {
        let old = report(10.0, 12.0);
        let fast = compare(&old, &report(5.0, 6.0), 25.0);
        assert!(fast.regressions.is_empty());
        assert!(fast.deltas.iter().all(|d| d.delta_pct < 0.0));
    }

    #[test]
    fn checked_in_bench_report_parses_against_itself() {
        // The repository ships BENCH_parallel.json; comparing it against
        // itself must parse and report zero deltas. Skip silently if the
        // test runs from an unexpected working directory.
        let Ok(old) = load_report("../../BENCH_parallel.json") else {
            return;
        };
        let cmp = compare(&old, &old, 25.0);
        assert!(cmp.regressions.is_empty());
        assert!(cmp.deltas.iter().all(|d| d.delta_pct.abs() < 1e-9));
    }

    #[test]
    fn parse_errors_are_typed_not_panics() {
        assert!(load_report("/nonexistent/BENCH.json").is_err());
    }

    /// The exec scaling extras and the parallel degenerate marker parse out
    /// of the shared schema; plain reports without them default cleanly.
    #[test]
    fn exec_extras_and_degenerate_marker_parse() {
        let json = r#"{"bench":"exec","scale":"small","threads_serial":1,
            "threads_parallel":1,
            "phases":[{"name":"exec_10k","serial_s":40.0,"parallel_s":1.0,
                       "speedup":40.0,"machines":10000,"queries":1000,
                       "events_per_s":52000.0},
                      {"name":"warm","serial_s":1.0,"parallel_s":1.0,
                       "speedup":1.0,"degenerate":true}],
            "total":{"serial_s":41.0,"parallel_s":2.0,"speedup":20.5},
            "headline":{"machines":10000,"queries":1000000}}"#;
        let r: BenchReport = serde_json::from_str(json).expect("exec schema parses");
        assert_eq!(r.phases[0].machines, Some(10_000));
        assert_eq!(r.phases[0].queries, Some(1_000));
        assert_eq!(r.phases[0].events_per_s, Some(52_000.0));
        assert!(!r.phases[0].is_degenerate());
        assert!(r.phases[1].is_degenerate());
        // Extras never gate: a regression-free diff stays regression-free.
        let cmp = compare(&r, &r, 25.0);
        assert!(cmp.regressions.is_empty());
    }
}
