//! The `experiments compare` subcommand: a regression gate over two
//! `BENCH_*.json` reports.
//!
//! Two report kinds are understood, dispatched on the `bench` field:
//!
//! * **Timing reports** (as written by `experiments parallel` and friends):
//!   diffs per-phase and total wall-clock between an old (baseline) and a
//!   new report and flags any phase whose `parallel_s` regressed past a
//!   configurable percentage threshold. Phases may carry the
//!   `BENCH_exec.json` scaling extras (`machines`, `queries`,
//!   `events_per_s`) and the `degenerate` marker `experiments parallel`
//!   sets when both legs ran at the same thread count; both are surfaced
//!   in the diff but never gate it.
//! * **Sweep reports** (`bench: "sweep"`, as written by
//!   `experiments sweep`): diffs the scenario matrices cell-by-cell,
//!   matching cells by `config_hash`, with per-metric gates —
//!   `total_cost` / `total_wasted_cost` relative increase and
//!   `completion_rate` relative decrease past the threshold percentage,
//!   `shed_rate` absolute increase past the threshold in points, and any
//!   `decision_hash` drift (a determinism break regresses at any
//!   threshold). Cells present on only one side make the reports
//!   structurally incomparable.
//!
//! Exit codes are typed: [`EXIT_OK`] = within threshold,
//! [`EXIT_REGRESSION`] = regression detected, [`EXIT_PARSE`] =
//! unreadable/unparsable input, [`EXIT_DEGENERATE`] = structurally
//! incomparable reports (mixed kinds, missing cells, or nothing matched).

use super::sweep::SweepReport;
use serde::{Deserialize, Value};

/// Exit code: every phase stayed within the threshold.
pub const EXIT_OK: i32 = 0;
/// Exit code: at least one phase (or the total) regressed past the
/// threshold.
pub const EXIT_REGRESSION: i32 = 1;
/// Exit code: a report could not be read or parsed.
pub const EXIT_PARSE: i32 = 2;
/// Exit code: the reports are structurally incomparable — different report
/// kinds, sweep cells present on only one side, or no matching cells.
pub const EXIT_DEGENERATE: i32 = 3;

/// One phase row of a `BENCH_*.json` report.
#[derive(Debug, Clone, Deserialize)]
pub struct PhaseRow {
    /// Phase name (e.g. `fig7_context`).
    pub name: String,
    /// Serial-baseline wall-clock seconds.
    pub serial_s: f64,
    /// Pool wall-clock seconds (the figure the gate compares).
    pub parallel_s: f64,
    /// serial_s / parallel_s.
    pub speedup: f64,
    /// `BENCH_exec.json`: machines in the simulated pool.
    pub machines: Option<u64>,
    /// `BENCH_exec.json`: queries executed per engine leg.
    pub queries: Option<u64>,
    /// `BENCH_exec.json`: fault events drained per second by the event
    /// engine.
    pub events_per_s: Option<f64>,
    /// `BENCH_parallel.json`: both legs ran at the same thread count, so
    /// the speedup column is meaningless.
    pub degenerate: Option<bool>,
}

impl PhaseRow {
    /// Whether the phase carries the `degenerate: true` marker.
    pub fn is_degenerate(&self) -> bool {
        self.degenerate == Some(true)
    }
}

/// The `total` block of a report.
#[derive(Debug, Clone, Deserialize)]
pub struct TotalRow {
    /// Serial-baseline total seconds.
    pub serial_s: f64,
    /// Pool total seconds.
    pub parallel_s: f64,
    /// serial_s / parallel_s.
    pub speedup: f64,
}

/// A parsed `BENCH_*.json` report.
#[derive(Debug, Clone, Deserialize)]
pub struct BenchReport {
    /// Benchmark id (`parallel`).
    pub bench: String,
    /// Scale the report was produced at.
    pub scale: String,
    /// Thread count of the serial pass.
    pub threads_serial: usize,
    /// Thread count of the pool pass.
    pub threads_parallel: usize,
    /// Per-phase timings.
    pub phases: Vec<PhaseRow>,
    /// Whole-run timings.
    pub total: TotalRow,
}

/// One compared phase: old/new seconds and the relative delta.
#[derive(Debug, Clone)]
pub struct PhaseDelta {
    /// Phase name.
    pub name: String,
    /// Baseline pool seconds.
    pub old_s: f64,
    /// New pool seconds.
    pub new_s: f64,
    /// Percent change ((new − old) / old × 100; positive = slower).
    pub delta_pct: f64,
}

/// The comparison outcome.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Per-phase deltas, in the new report's phase order, plus a final
    /// `total` row.
    pub deltas: Vec<PhaseDelta>,
    /// Phases (or `total`) regressing past the threshold.
    pub regressions: Vec<String>,
}

fn pct(old_s: f64, new_s: f64) -> f64 {
    100.0 * (new_s - old_s) / old_s.max(1e-9)
}

/// Compares two parsed reports at a regression threshold (percent).
pub fn compare(old: &BenchReport, new: &BenchReport, threshold_pct: f64) -> Comparison {
    let mut deltas = Vec::new();
    let mut regressions = Vec::new();
    for np in &new.phases {
        let Some(op) = old.phases.iter().find(|p| p.name == np.name) else {
            // A phase the baseline never measured can't regress.
            continue;
        };
        let delta_pct = pct(op.parallel_s, np.parallel_s);
        if delta_pct > threshold_pct {
            regressions.push(np.name.clone());
        }
        deltas.push(PhaseDelta {
            name: np.name.clone(),
            old_s: op.parallel_s,
            new_s: np.parallel_s,
            delta_pct,
        });
    }
    let total_delta = pct(old.total.parallel_s, new.total.parallel_s);
    if total_delta > threshold_pct {
        regressions.push("total".to_string());
    }
    deltas.push(PhaseDelta {
        name: "total".to_string(),
        old_s: old.total.parallel_s,
        new_s: new.total.parallel_s,
        delta_pct: total_delta,
    });
    Comparison {
        deltas,
        regressions,
    }
}

/// Parses a report file. Errors are strings so the caller can decide the
/// exit code.
pub fn load_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse `{path}`: {e:?}"))
}

// ------------------------------------------------------------ sweep diff

/// One gated issue of one compared sweep cell.
#[derive(Debug, Clone)]
pub struct SweepCellDelta {
    /// The cell's matrix index in the new report.
    pub index: u64,
    /// The `config_hash` the cells were matched by.
    pub config_hash: String,
    /// Human-readable gate breaches (empty = cell is clean).
    pub issues: Vec<String>,
}

/// The outcome of a cell-by-cell sweep comparison.
#[derive(Debug, Clone)]
pub struct SweepComparison {
    /// Cells matched by `config_hash` across both reports.
    pub matched: usize,
    /// Matched cells with byte-identical metrics.
    pub identical: usize,
    /// Config hashes only the baseline has.
    pub missing_in_new: Vec<String>,
    /// Config hashes only the new report has.
    pub missing_in_old: Vec<String>,
    /// One entry per matched cell that breached a gate.
    pub regressions: Vec<SweepCellDelta>,
}

impl SweepComparison {
    /// Whether the reports are structurally incomparable (missing cells or
    /// nothing matched) — [`EXIT_DEGENERATE`] territory, which takes
    /// precedence over metric regressions.
    pub fn is_degenerate(&self) -> bool {
        self.matched == 0 || !self.missing_in_new.is_empty() || !self.missing_in_old.is_empty()
    }

    /// The typed exit code this comparison maps to.
    pub fn exit_code(&self) -> i32 {
        if self.is_degenerate() {
            EXIT_DEGENERATE
        } else if self.regressions.is_empty() {
            EXIT_OK
        } else {
            EXIT_REGRESSION
        }
    }
}

/// Compares two sweep reports cell-by-cell. `threshold_pct` gates the
/// relative cost/completion metrics (percent) and the shed-rate increase
/// (points); `decision_hash` drift regresses at any threshold.
pub fn compare_sweeps(old: &SweepReport, new: &SweepReport, threshold_pct: f64) -> SweepComparison {
    let rel = |o: f64, n: f64| 100.0 * (n - o) / o.max(1e-9);
    let mut cmp = SweepComparison {
        matched: 0,
        identical: 0,
        missing_in_new: Vec::new(),
        missing_in_old: Vec::new(),
        regressions: Vec::new(),
    };
    for nc in &new.cells {
        if !old.cells.iter().any(|oc| oc.config_hash == nc.config_hash) {
            cmp.missing_in_old.push(nc.config_hash.clone());
        }
    }
    for oc in &old.cells {
        let Some(nc) = new.cells.iter().find(|c| c.config_hash == oc.config_hash) else {
            cmp.missing_in_new.push(oc.config_hash.clone());
            continue;
        };
        cmp.matched += 1;
        if nc.metrics_hash == oc.metrics_hash {
            cmp.identical += 1;
            continue;
        }
        let (om, nm) = (&oc.metrics, &nc.metrics);
        let mut issues = Vec::new();
        if nm.decision_hash != om.decision_hash {
            issues.push(format!(
                "decision_hash drift ({} -> {})",
                om.decision_hash, nm.decision_hash
            ));
        }
        let cost = rel(om.total_cost, nm.total_cost);
        if cost > threshold_pct {
            issues.push(format!("total_cost {cost:+.1}%"));
        }
        let waste = rel(om.total_wasted_cost, nm.total_wasted_cost);
        if waste > threshold_pct {
            issues.push(format!("total_wasted_cost {waste:+.1}%"));
        }
        let completion = rel(om.completion_rate, nm.completion_rate);
        if -completion > threshold_pct {
            issues.push(format!("completion_rate {completion:+.1}%"));
        }
        let shed_pts = 100.0 * (nm.shed_rate - om.shed_rate);
        if shed_pts > threshold_pct {
            issues.push(format!("shed_rate {shed_pts:+.1} pts"));
        }
        if !issues.is_empty() {
            cmp.regressions.push(SweepCellDelta {
                index: nc.index,
                config_hash: nc.config_hash.clone(),
                issues,
            });
        }
    }
    cmp
}

/// The `bench` field of a report, read without committing to a schema.
fn report_kind(text: &str) -> Option<String> {
    let v: Value = serde_json::from_str(text).ok()?;
    let Value::Map(entries) = v else { return None };
    entries.into_iter().rev().find_map(|(k, v)| match v {
        Value::Str(s) if k == "bench" => Some(s),
        _ => None,
    })
}

fn run_sweep_diff(
    old_path: &str,
    old: &SweepReport,
    new_path: &str,
    new: &SweepReport,
    threshold_pct: f64,
) -> i32 {
    println!(
        "comparing sweep {old_path} (runbook {}, {} cells) -> {new_path} (runbook {}, {} cells), \
         threshold {threshold_pct:.0}%",
        old.runbook.id,
        old.cells.len(),
        new.runbook.id,
        new.cells.len()
    );
    if old.spec_hash != new.spec_hash {
        eprintln!(
            "compare: warning: different sweep specs ({} vs {}) — matching cells by config",
            old.spec_hash, new.spec_hash
        );
    }
    for (path, r) in [(old_path, old), (new_path, new)] {
        if !r.runbook.thread_invariant {
            eprintln!(
                "compare: warning: {path} failed its thread-invariance self-check — \
                 its metrics may not be trustworthy"
            );
        }
    }
    let cmp = compare_sweeps(old, new, threshold_pct);
    println!(
        "{} matched cell(s): {} byte-identical, {} drifted",
        cmp.matched,
        cmp.identical,
        cmp.matched - cmp.identical
    );
    for d in &cmp.regressions {
        println!(
            "  cell {} ({}): {}",
            d.index,
            d.config_hash,
            d.issues.join(", ")
        );
    }
    if cmp.is_degenerate() {
        if cmp.matched == 0 {
            eprintln!("degenerate: no cell matched between the reports");
        }
        if !cmp.missing_in_new.is_empty() {
            eprintln!(
                "degenerate: {} baseline cell(s) missing from {new_path}: {}",
                cmp.missing_in_new.len(),
                cmp.missing_in_new.join(", ")
            );
        }
        if !cmp.missing_in_old.is_empty() {
            eprintln!(
                "degenerate: {} cell(s) in {new_path} missing from the baseline: {}",
                cmp.missing_in_old.len(),
                cmp.missing_in_old.join(", ")
            );
        }
    } else if cmp.regressions.is_empty() {
        println!("ok: no cell regressed more than {threshold_pct:.0}%");
    } else {
        eprintln!(
            "regression: {} cell(s) breached the {threshold_pct:.0}% threshold",
            cmp.regressions.len()
        );
    }
    cmp.exit_code()
}

/// The full subcommand: loads both reports, dispatches on report kind
/// (sweep vs timing), prints the diff table, and returns the process exit
/// code ([`EXIT_OK`], [`EXIT_REGRESSION`], [`EXIT_PARSE`], or
/// [`EXIT_DEGENERATE`]).
pub fn run(old_path: &str, new_path: &str, threshold_pct: f64) -> i32 {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
    };
    let (old_text, new_text) = match (read(old_path), read(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("compare: {e}");
            return EXIT_PARSE;
        }
    };
    let old_sweep = report_kind(&old_text).as_deref() == Some("sweep");
    let new_sweep = report_kind(&new_text).as_deref() == Some("sweep");
    if old_sweep != new_sweep {
        eprintln!(
            "compare: `{old_path}` and `{new_path}` are different report kinds \
             (sweep vs timing) — incomparable"
        );
        return EXIT_DEGENERATE;
    }
    if old_sweep {
        let parse = |path: &str, text: &str| -> Result<SweepReport, String> {
            serde_json::from_str(text).map_err(|e| format!("cannot parse `{path}`: {e:?}"))
        };
        let (old, new) = match (parse(old_path, &old_text), parse(new_path, &new_text)) {
            (Ok(o), Ok(n)) => (o, n),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("compare: {e}");
                return EXIT_PARSE;
            }
        };
        return run_sweep_diff(old_path, &old, new_path, &new, threshold_pct);
    }
    let parse = |path: &str, text: &str| -> Result<BenchReport, String> {
        serde_json::from_str(text).map_err(|e| format!("cannot parse `{path}`: {e:?}"))
    };
    let (old, new) = match (parse(old_path, &old_text), parse(new_path, &new_text)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("compare: {e}");
            return EXIT_PARSE;
        }
    };
    println!(
        "comparing {old_path} (scale {}, {} threads) -> {new_path} (scale {}, {} threads), \
         threshold {threshold_pct:.0}%",
        old.scale, old.threads_parallel, new.scale, new.threads_parallel
    );
    if old.bench != new.bench {
        eprintln!(
            "compare: warning: different benchmarks ({} vs {})",
            old.bench, new.bench
        );
    }
    if let Some(p) = new.phases.iter().find(|p| p.is_degenerate()) {
        eprintln!(
            "compare: warning: phase `{}` in {new_path} is marked degenerate \
             (both legs ran at the same thread count) — its speedup is meaningless",
            p.name
        );
    }
    let cmp = compare(&old, &new, threshold_pct);
    println!(
        "{:<16} {:>12} {:>12} {:>9}",
        "phase", "old (s)", "new (s)", "delta"
    );
    for d in &cmp.deltas {
        let flag = if d.delta_pct > threshold_pct {
            "  REGRESSED"
        } else {
            ""
        };
        // Exec-scaling extras ride along the row when the new report has
        // them (informational; the gate stays a pure timing diff).
        let extra = new
            .phases
            .iter()
            .find(|p| p.name == d.name)
            .map(|p| {
                let mut s = String::new();
                if let Some(m) = p.machines {
                    s.push_str(&format!("  machines={m}"));
                }
                if let Some(q) = p.queries {
                    s.push_str(&format!(" queries={q}"));
                }
                if let Some(e) = p.events_per_s {
                    s.push_str(&format!(" events/s={e:.0}"));
                }
                s
            })
            .unwrap_or_default();
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>+8.1}%{flag}{extra}",
            d.name, d.old_s, d.new_s, d.delta_pct
        );
    }
    if cmp.regressions.is_empty() {
        println!("ok: no phase regressed more than {threshold_pct:.0}%");
        EXIT_OK
    } else {
        eprintln!(
            "regression: {} exceeded the {threshold_pct:.0}% threshold",
            cmp.regressions.join(", ")
        );
        EXIT_REGRESSION
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(phase_s: f64, total_s: f64) -> BenchReport {
        BenchReport {
            bench: "parallel".into(),
            scale: "small".into(),
            threads_serial: 1,
            threads_parallel: 8,
            phases: vec![PhaseRow {
                name: "fig7_context".into(),
                serial_s: phase_s * 1.5,
                parallel_s: phase_s,
                speedup: 1.5,
                machines: None,
                queries: None,
                events_per_s: None,
                degenerate: None,
            }],
            total: TotalRow {
                serial_s: total_s * 1.5,
                parallel_s: total_s,
                speedup: 1.5,
            },
        }
    }

    #[test]
    fn within_threshold_passes_and_regression_is_flagged() {
        let old = report(10.0, 12.0);
        let ok = compare(&old, &report(11.0, 13.0), 25.0);
        assert!(ok.regressions.is_empty(), "{:?}", ok.regressions);
        let bad = compare(&old, &report(14.0, 16.0), 25.0);
        assert_eq!(bad.regressions, vec!["fig7_context", "total"]);
        // Deltas carry the phase rows plus the total row.
        assert_eq!(bad.deltas.len(), 2);
        assert!(bad.deltas[0].delta_pct > 25.0);
    }

    #[test]
    fn speedups_are_not_regressions() {
        let old = report(10.0, 12.0);
        let fast = compare(&old, &report(5.0, 6.0), 25.0);
        assert!(fast.regressions.is_empty());
        assert!(fast.deltas.iter().all(|d| d.delta_pct < 0.0));
    }

    #[test]
    fn checked_in_bench_report_parses_against_itself() {
        // The repository ships BENCH_parallel.json; comparing it against
        // itself must parse and report zero deltas. Skip silently if the
        // test runs from an unexpected working directory.
        let Ok(old) = load_report("../../BENCH_parallel.json") else {
            return;
        };
        let cmp = compare(&old, &old, 25.0);
        assert!(cmp.regressions.is_empty());
        assert!(cmp.deltas.iter().all(|d| d.delta_pct.abs() < 1e-9));
    }

    #[test]
    fn parse_errors_are_typed_not_panics() {
        assert!(load_report("/nonexistent/BENCH.json").is_err());
    }

    /// The exec scaling extras and the parallel degenerate marker parse out
    /// of the shared schema; plain reports without them default cleanly.
    #[test]
    fn exec_extras_and_degenerate_marker_parse() {
        let json = r#"{"bench":"exec","scale":"small","threads_serial":1,
            "threads_parallel":1,
            "phases":[{"name":"exec_10k","serial_s":40.0,"parallel_s":1.0,
                       "speedup":40.0,"machines":10000,"queries":1000,
                       "events_per_s":52000.0},
                      {"name":"warm","serial_s":1.0,"parallel_s":1.0,
                       "speedup":1.0,"degenerate":true}],
            "total":{"serial_s":41.0,"parallel_s":2.0,"speedup":20.5},
            "headline":{"machines":10000,"queries":1000000}}"#;
        let r: BenchReport = serde_json::from_str(json).expect("exec schema parses");
        assert_eq!(r.phases[0].machines, Some(10_000));
        assert_eq!(r.phases[0].queries, Some(1_000));
        assert_eq!(r.phases[0].events_per_s, Some(52_000.0));
        assert!(!r.phases[0].is_degenerate());
        assert!(r.phases[1].is_degenerate());
        // Extras never gate: a regression-free diff stays regression-free.
        let cmp = compare(&r, &r, 25.0);
        assert!(cmp.regressions.is_empty());
    }

    // ------------------------------------------------------- sweep diff

    use crate::canon;
    use crate::exps::sweep::{CellConfig, CellMetrics, Runbook, SpecEcho, SweepCell};

    fn sweep_cell(machines: u64, total_cost: f64, decisions: &str) -> SweepCell {
        let config = CellConfig {
            arrival: "poisson".into(),
            fault_scale: 0.0,
            machines,
            tenants: 4,
            threads: 1,
        };
        let metrics = CellMetrics {
            requests: 32,
            shed: 2,
            admitted: 30,
            completed: 30,
            failed: 0,
            batches: 2,
            degraded: 1,
            total_retries: 0,
            total_cost,
            total_wasted_cost: 0.0,
            completion_rate: 1.0,
            shed_rate: 0.0625,
            decision_hash: decisions.to_string(),
        };
        SweepCell {
            index: 0,
            seed: 7,
            config_hash: canon::hash_of(&config),
            metrics_hash: canon::hash_of(&metrics),
            config,
            metrics,
        }
    }

    fn sweep_report(cells: Vec<SweepCell>) -> SweepReport {
        SweepReport {
            bench: "sweep".into(),
            scale: "small".into(),
            spec: SpecEcho {
                mode: "grid".into(),
                samples: 0,
                seed: 7,
                requests: 32,
                batch_size: 16,
                axes: vec![],
            },
            spec_hash: "0".repeat(16),
            runbook: Runbook {
                id: "0".repeat(16),
                jobs: cells.len() as u64,
                cells: cells.len() as u64,
                sweep_seed: 7,
                seeds: cells.iter().map(|c| c.seed).collect(),
                artifacts: vec!["BENCH_sweep.json".into()],
                thread_invariant: true,
            },
            cells,
        }
    }

    #[test]
    fn identical_sweeps_compare_clean() {
        let r = sweep_report(vec![sweep_cell(8, 100.0, "aa"), sweep_cell(16, 90.0, "bb")]);
        let cmp = compare_sweeps(&r, &r, 10.0);
        assert_eq!(cmp.exit_code(), EXIT_OK);
        assert_eq!(cmp.matched, 2);
        assert_eq!(cmp.identical, 2);
        assert!(cmp.regressions.is_empty());
    }

    #[test]
    fn cost_breach_past_threshold_is_a_regression() {
        let old = sweep_report(vec![sweep_cell(8, 100.0, "aa")]);
        let new = sweep_report(vec![sweep_cell(8, 125.0, "aa")]);
        // +25% cost: clean at a 30% threshold, regressed at 10%.
        assert_eq!(compare_sweeps(&old, &new, 30.0).exit_code(), EXIT_OK);
        let cmp = compare_sweeps(&old, &new, 10.0);
        assert_eq!(cmp.exit_code(), EXIT_REGRESSION);
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].issues[0].contains("total_cost"));
    }

    #[test]
    fn decision_hash_drift_regresses_at_any_threshold() {
        let old = sweep_report(vec![sweep_cell(8, 100.0, "aa")]);
        let new = sweep_report(vec![sweep_cell(8, 100.0, "bb")]);
        let cmp = compare_sweeps(&old, &new, 1e9);
        assert_eq!(cmp.exit_code(), EXIT_REGRESSION);
        assert!(cmp.regressions[0].issues[0].contains("decision_hash"));
    }

    #[test]
    fn missing_cells_are_degenerate_and_outrank_regressions() {
        let old = sweep_report(vec![sweep_cell(8, 100.0, "aa"), sweep_cell(16, 90.0, "bb")]);
        let new = sweep_report(vec![sweep_cell(8, 500.0, "aa")]);
        let cmp = compare_sweeps(&old, &new, 10.0);
        assert!(cmp.is_degenerate());
        assert_eq!(cmp.exit_code(), EXIT_DEGENERATE);
        assert_eq!(cmp.missing_in_new.len(), 1);
        // The matched cell's cost breach is still recorded for the diff
        // table even though the exit code is the degenerate one.
        assert_eq!(cmp.regressions.len(), 1);
        // Nothing matched at all is degenerate too.
        let disjoint = sweep_report(vec![sweep_cell(64, 10.0, "cc")]);
        assert_eq!(
            compare_sweeps(&old, &disjoint, 10.0).exit_code(),
            EXIT_DEGENERATE
        );
    }

    #[test]
    fn mixed_report_kinds_exit_degenerate() {
        let dir = std::env::temp_dir();
        let sweep_path = dir.join("cmp_mixed_sweep.json");
        let timing_path = dir.join("cmp_mixed_timing.json");
        let sweep = sweep_report(vec![sweep_cell(8, 100.0, "aa")]);
        std::fs::write(&sweep_path, canon::canonical_of(&sweep)).expect("write sweep");
        std::fs::write(
            &timing_path,
            r#"{"bench":"parallel","scale":"small","threads_serial":1,"threads_parallel":2,
               "phases":[],"total":{"serial_s":1.0,"parallel_s":1.0,"speedup":1.0}}"#,
        )
        .expect("write timing");
        let code = run(
            sweep_path.to_str().expect("utf8 path"),
            timing_path.to_str().expect("utf8 path"),
            25.0,
        );
        assert_eq!(code, EXIT_DEGENERATE);
        // Two sweeps through the same entry point take the sweep path.
        let code = run(
            sweep_path.to_str().expect("utf8 path"),
            sweep_path.to_str().expect("utf8 path"),
            25.0,
        );
        assert_eq!(code, EXIT_OK);
        let _ = std::fs::remove_file(&sweep_path);
        let _ = std::fs::remove_file(&timing_path);
    }

    #[test]
    fn completion_drop_and_shed_rise_are_gated() {
        let old = sweep_report(vec![sweep_cell(8, 100.0, "aa")]);
        let mut worse = sweep_report(vec![sweep_cell(8, 100.0, "aa")]);
        worse.cells[0].metrics.completion_rate = 0.5;
        worse.cells[0].metrics.shed_rate = 0.4;
        worse.cells[0].metrics_hash = canon::hash_of(&worse.cells[0].metrics);
        let cmp = compare_sweeps(&old, &worse, 10.0);
        assert_eq!(cmp.exit_code(), EXIT_REGRESSION);
        let issues = cmp.regressions[0].issues.join("; ");
        assert!(issues.contains("completion_rate"), "{issues}");
        assert!(issues.contains("shed_rate"), "{issues}");
        // Improvements never regress.
        let mut better = sweep_report(vec![sweep_cell(8, 50.0, "aa")]);
        better.cells[0].metrics.shed_rate = 0.0;
        better.cells[0].metrics_hash = canon::hash_of(&better.cells[0].metrics);
        assert_eq!(compare_sweeps(&old, &better, 10.0).exit_code(), EXIT_OK);
    }
}
