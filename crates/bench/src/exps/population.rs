//! Synthetic project populations for the project-selection experiments
//! (Figures 12, 16 and Section 7.3).

use crate::scale::Scale;
use loam_core::explorer::PlanExplorer;
use loam_core::selector::filter::{evaluate as evaluate_filter, FilterConfig, FilterReport};
use loam_core::selector::ranker::ranker_features;
use loam_core::theory::deviance::deviance_of_choice;
use mcsim_catalog::{Project, ProjectId, ProjectProfile};
use mcsim_exec::Flighting;
use mcsim_optimizer::NativeOptimizer;
use mcsim_plan::PlanTree;

/// One population project with its filter verdict and (optionally) its
/// ground-truth improvement space and Ranker features.
pub struct PopulationProject {
    /// Generation seed (identity).
    pub seed: u64,
    /// The generated project.
    pub project: Project,
    /// Rule-based filter outcome.
    pub filter: FilterReport,
    /// Per-query Ranker features of sampled default plans.
    pub query_features: Vec<Vec<f64>>,
    /// Per-query improvement space `D(M_d)` (relative), parallel to
    /// `query_features`.
    pub query_improvement: Vec<f64>,
}

impl PopulationProject {
    /// Mean improvement space of the sampled workload.
    pub fn improvement(&self) -> f64 {
        if self.query_improvement.is_empty() {
            0.0
        } else {
            self.query_improvement.iter().sum::<f64>() / self.query_improvement.len() as f64
        }
    }
}

/// The filter thresholds used at a given harness scale.
pub fn filter_config(scale: Scale) -> FilterConfig {
    FilterConfig::scaled(scale.fraction() * 0.05)
}

/// Builds a labeled 28-project population once per process (Figures 12 and
/// 16 share it; labeling is the expensive part).
pub fn labeled_28(scale: Scale) -> &'static Vec<PopulationProject> {
    use std::sync::OnceLock;
    static CACHE: OnceLock<Vec<PopulationProject>> = OnceLock::new();
    CACHE.get_or_init(|| build(28, scale, true, 0x1234))
}

/// Builds a population of `n` random projects. When `with_labels` is set,
/// each project's sampled workload is explored and flighting-replayed to
/// compute exact per-query improvement space (expensive; used by the Ranker
/// experiments).
pub fn build(n: usize, scale: Scale, with_labels: bool, seed0: u64) -> Vec<PopulationProject> {
    let cfg = filter_config(scale);
    // Each project is generated and labeled from its own seed, so the
    // population fans out across the pool; parallel_map preserves order.
    let indices: Vec<usize> = (0..n).collect();
    mcsim_par::ThreadPool::global().parallel_map(&indices, |&i| {
        let seed = seed0 + i as u64;
        let profile = ProjectProfile::random(seed);
        let project = profile.generate(ProjectId(1000 + i as u32));
        let filter = evaluate_filter(&project, 0, 5, &cfg);
        let (query_features, query_improvement) = if with_labels {
            label_project(&project, seed)
        } else {
            (Vec::new(), Vec::new())
        };
        PopulationProject {
            seed,
            project,
            filter,
            query_features,
            query_improvement,
        }
    })
}

/// Samples a small workload, explores candidates, and measures per-query
/// improvement space via synchronized flighting replay (Appendix E.1's
/// practical estimation).
fn label_project(project: &Project, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let optimizer = NativeOptimizer::new(&project.catalog);
    let explorer = PlanExplorer::default();
    let mut flighting = Flighting::new(seed ^ 0xd00d, project.profile.env_noise_sigma);
    let queries: Vec<_> = project
        .workload_for_days(0, 5)
        .into_iter()
        .take(25)
        .collect();
    let mut features = Vec::with_capacity(queries.len());
    let mut improvements = Vec::with_capacity(queries.len());
    for q in &queries {
        let set = explorer.explore(&optimizer, q);
        let plans: Vec<&PlanTree> = set.candidates.iter().map(|c| &c.plan).collect();
        let costs = flighting.replay_synchronized(&plans, &project.catalog, 6);
        let d = deviance_of_choice(&costs, set.default_idx);
        let default_cost = d.oracle_cost + d.expected;
        features.push(ranker_features(
            &set.candidates[set.default_idx].plan,
            &project.catalog,
            default_cost,
        ));
        improvements.push(d.relative);
    }
    (features, improvements)
}
