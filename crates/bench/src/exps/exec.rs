//! The `experiments exec` subcommand: the simulation-core scaling
//! benchmark behind the event-driven rewrite.
//!
//! Sweeps the cluster size (1k / 5k / 10k machines) and runs the same
//! seeded query stream through both simulation cores — the dense per-tick
//! reference engine and the event-driven engine with lazy load evaluation
//! — then runs the headline session: 10,000 machines × 1,000,000 queries
//! on the event engine alone. Writes `BENCH_exec.json` in the shared
//! `BenchReport` phase schema, mapping the dense engine to `serial_s` and
//! the event engine to `parallel_s`, so `experiments compare` gates on the
//! event engine's wall-clock; the scaling extras (`machines`, `queries`,
//! `events_per_s`, `lazy_advances`) ride along each phase row.
//!
//! Machine-failure rates are normalized to the pool (`FaultConfig::chaos`
//! is calibrated for 200 machines), so every sweep level injects the same
//! absolute fault traffic and the comparison across pool sizes is a pure
//! simulation-core measurement.

use crate::report::Table;
use crate::scale::Scale;
use mcsim_exec::{ChaosScenario, ClusterConfig, EngineMode, EngineStats, Executor, FaultConfig};
use mcsim_optimizer::{Knobs, NativeOptimizer};
use mcsim_plan::PlanTree;

/// Seed of every leg: cluster trajectories, faults, and noise all derive
/// from it, so the dense and event legs replay the identical scenario.
const SEED: u64 = 0xe8ec;

/// Pool size `FaultConfig::chaos` rates are calibrated for.
const CHAOS_REFERENCE_POOL: f64 = 200.0;

/// The sweep's query template library: a small project's day-0 workload,
/// optimized once. The benchmark cycles through these plans — recurring
/// queries, exactly the paper's workload shape.
fn workload() -> (mcsim_catalog::Project, Vec<PlanTree>) {
    let mut prof = mcsim_catalog::ProjectProfile::evaluation_project(1).expect("profile 1");
    prof.n_tables = 16;
    prof.n_temp_tables = 2;
    prof.n_columns = 120;
    prof.n_templates = 8;
    let project = prof.generate(mcsim_catalog::ProjectId(1));
    let opt = NativeOptimizer::new(&project.catalog);
    let plans: Vec<PlanTree> = project
        .workload_for_day(0)
        .iter()
        .take(8)
        .map(|q| opt.optimize(q, &Knobs::default()))
        .collect();
    assert!(!plans.is_empty(), "day-0 workload must not be empty");
    (project, plans)
}

/// The fault configuration of a leg: chaos rates with the machine-failure
/// probability normalized to the pool size.
fn leg_faults(machines: usize) -> FaultConfig {
    let base = FaultConfig::chaos(SEED ^ 0xfa);
    FaultConfig {
        machine_fail_prob: base.machine_fail_prob * CHAOS_REFERENCE_POOL / machines as f64,
        ..base
    }
}

/// A fault-armed executor over a pool of `machines` running `engine`.
fn leg_executor(machines: usize, engine: EngineMode) -> Executor {
    let cfg = ClusterConfig::builder()
        .n_machines(machines)
        .engine(engine)
        .build()
        .expect("valid sweep config");
    ChaosScenario::new(SEED)
        .cluster(cfg)
        .fault(leg_faults(machines))
        .warmup_ticks(60)
        .build()
}

/// What one engine leg measured.
#[derive(Debug, Clone, Copy)]
pub struct LegResult {
    /// Wall-clock seconds for the whole query stream.
    pub wall_s: f64,
    /// Engine work counters at the end of the leg.
    pub stats: EngineStats,
    /// Sum of every completed query's CPU cost (the bit pattern is the
    /// cross-engine identity check).
    pub total_cost: f64,
    /// Queries that completed.
    pub completed: usize,
    /// Queries that exhausted their retry budget.
    pub failed: usize,
}

/// Runs `queries` executions round-robin over `plans` on one engine.
pub fn run_leg(
    machines: usize,
    queries: usize,
    engine: EngineMode,
    plans: &[PlanTree],
    catalog: &mcsim_catalog::Catalog,
) -> LegResult {
    let mut exec = leg_executor(machines, engine);
    let mut total_cost = 0.0f64;
    let (mut completed, mut failed) = (0usize, 0usize);
    let t = std::time::Instant::now();
    for i in 0..queries {
        match exec.try_execute(&plans[i % plans.len()], catalog) {
            Ok(out) => {
                total_cost += out.cpu_cost;
                completed += 1;
            }
            Err(_) => failed += 1,
        }
    }
    let wall_s = t.elapsed().as_secs_f64();
    // In dense mode the checksum proves the eager per-tick work ran.
    if engine == EngineMode::DenseTick {
        assert!(exec.cluster.dense_checksum() != 0.0);
    }
    LegResult {
        wall_s,
        stats: exec.cluster.engine_stats(),
        total_cost,
        completed,
        failed,
    }
}

/// One sweep level: the same scenario on both engines.
pub struct LevelOutcome {
    /// Phase name (`exec_1k`, `exec_5k`, `exec_10k`).
    pub name: String,
    /// Machines in the pool.
    pub machines: usize,
    /// Queries per engine leg.
    pub queries: usize,
    /// The dense per-tick reference leg.
    pub dense: LegResult,
    /// The event-driven leg.
    pub event: LegResult,
}

impl LevelOutcome {
    /// Dense wall over event wall.
    pub fn speedup(&self) -> f64 {
        self.dense.wall_s / self.event.wall_s.max(1e-9)
    }
}

/// The headline event-only session.
pub struct Headline {
    /// Machines in the pool.
    pub machines: usize,
    /// Queries executed.
    pub queries: usize,
    /// The event-engine leg.
    pub leg: LegResult,
}

fn level_name(machines: usize) -> String {
    if machines.is_multiple_of(1000) {
        format!("exec_{}k", machines / 1000)
    } else {
        format!("exec_{machines}")
    }
}

/// Runs the dense-vs-event sweep at every pool size. Returned for
/// inspection — the acceptance tests consume this directly.
pub fn run_levels(pool_sizes: &[usize], queries: usize) -> Vec<LevelOutcome> {
    let (project, plans) = workload();
    pool_sizes
        .iter()
        .map(|&machines| {
            eprintln!("  {machines} machines × {queries} queries, dense reference...");
            let dense = run_leg(
                machines,
                queries,
                EngineMode::DenseTick,
                &plans,
                &project.catalog,
            );
            eprintln!("  {machines} machines × {queries} queries, event engine...");
            let event = run_leg(
                machines,
                queries,
                EngineMode::EventDriven,
                &plans,
                &project.catalog,
            );
            assert_eq!(
                dense.total_cost.to_bits(),
                event.total_cost.to_bits(),
                "engines must replay bit-identically at {machines} machines"
            );
            assert_eq!(dense.completed, event.completed);
            assert_eq!(dense.failed, event.failed);
            LevelOutcome {
                name: level_name(machines),
                machines,
                queries,
                dense,
                event,
            }
        })
        .collect()
}

/// Runs the event-only headline session.
pub fn run_headline(machines: usize, queries: usize) -> Headline {
    let (project, plans) = workload();
    eprintln!("  headline: {machines} machines × {queries} queries, event engine only...");
    let leg = run_leg(
        machines,
        queries,
        EngineMode::EventDriven,
        &plans,
        &project.catalog,
    );
    Headline {
        machines,
        queries,
        leg,
    }
}

/// Runs the benchmark and writes `BENCH_exec.json`. `quick` restricts the
/// sweep to the 1k pool and skips the headline (the CI smoke); the scale
/// flag sizes the sweep's query stream.
pub fn run(scale: Scale, quick: bool) {
    println!("Exec-core benchmark — dense per-tick reference vs event-driven engine\n");
    let queries = if quick {
        60
    } else {
        ((400.0 * scale.fraction()) as usize).max(100)
    };
    let pool_sizes: &[usize] = if quick {
        &[1_000]
    } else {
        &[1_000, 5_000, 10_000]
    };
    let outcomes = run_levels(pool_sizes, queries);

    let mut t = Table::new([
        "pool",
        "queries",
        "dense (s)",
        "event (s)",
        "speedup",
        "events",
        "lazy evals",
        "heap peak",
    ]);
    for o in &outcomes {
        t.row([
            o.machines.to_string(),
            o.queries.to_string(),
            format!("{:.3}", o.dense.wall_s),
            format!("{:.3}", o.event.wall_s),
            format!("{:.1}x", o.speedup()),
            o.event.stats.events.to_string(),
            o.event.stats.lazy_advances.to_string(),
            o.event.stats.heap_peak.to_string(),
        ]);
    }
    println!("{}", t.render());

    let headline = if quick {
        None
    } else {
        let h = run_headline(10_000, 1_000_000);
        println!(
            "headline: {} machines × {} queries in {:.1}s ({:.0} queries/s, {} events, \
             {} lazy evaluations)",
            h.machines,
            h.queries,
            h.leg.wall_s,
            h.queries as f64 / h.leg.wall_s.max(1e-9),
            h.leg.stats.events,
            h.leg.stats.lazy_advances,
        );
        Some(h)
    };

    let json = report_json(scale, &outcomes, headline.as_ref());
    let path = "BENCH_exec.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Renders the sweep as a JSON document in the `BenchReport` shape: dense
/// is `serial_s`, event is `parallel_s`, so `compare` gates on event-engine
/// wall-clock. The `machines`/`queries`/`events_per_s`/`lazy_advances`
/// extras ride along each phase; the headline session is a top-level
/// object `compare` ignores.
fn report_json(scale: Scale, outcomes: &[LevelOutcome], headline: Option<&Headline>) -> String {
    let scale_name = format!("{scale:?}").to_lowercase();
    let phases = outcomes
        .iter()
        .map(|o| {
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"serial_s\":{:.6},\"parallel_s\":{:.6},",
                    "\"speedup\":{:.4},\"machines\":{},\"queries\":{},",
                    "\"events_per_s\":{:.3},\"lazy_advances\":{},\"heap_peak\":{}}}"
                ),
                o.name,
                o.dense.wall_s,
                o.event.wall_s,
                o.speedup(),
                o.machines,
                o.queries,
                o.event.stats.events as f64 / o.event.wall_s.max(1e-9),
                o.event.stats.lazy_advances,
                o.event.stats.heap_peak,
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let dense_total: f64 = outcomes.iter().map(|o| o.dense.wall_s).sum();
    let event_total: f64 = outcomes.iter().map(|o| o.event.wall_s).sum();
    let headline_json = headline
        .map(|h| {
            format!(
                concat!(
                    ",\"headline\":{{\"machines\":{},\"queries\":{},\"wall_s\":{:.6},",
                    "\"queries_per_s\":{:.3},\"events\":{},\"lazy_advances\":{},",
                    "\"heap_peak\":{},\"completed\":{},\"failed\":{}}}"
                ),
                h.machines,
                h.queries,
                h.leg.wall_s,
                h.queries as f64 / h.leg.wall_s.max(1e-9),
                h.leg.stats.events,
                h.leg.stats.lazy_advances,
                h.leg.stats.heap_peak,
                h.leg.completed,
                h.leg.failed,
            )
        })
        .unwrap_or_default();
    format!(
        concat!(
            "{{\"bench\":\"exec\",\"scale\":\"{}\",",
            "\"threads_serial\":1,\"threads_parallel\":1,",
            "\"phases\":[{}],",
            "\"total\":{{\"serial_s\":{:.6},\"parallel_s\":{:.6},\"speedup\":{:.4}}}",
            "{}}}"
        ),
        scale_name,
        phases,
        dense_total,
        event_total,
        dense_total / event_total.max(1e-9),
        headline_json,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exps::compare::BenchReport;

    /// The bench workload replays bit-identically on both engines — the
    /// assertion `run_levels` enforces at every sweep level, exercised at
    /// a test-sized pool.
    #[test]
    fn engines_agree_on_the_bench_workload() {
        let levels = run_levels(&[64], 12);
        assert_eq!(levels.len(), 1);
        let l = &levels[0];
        assert_eq!(l.dense.total_cost.to_bits(), l.event.total_cost.to_bits());
        assert_eq!(l.dense.completed + l.dense.failed, 12);
        assert!(
            l.event.stats.lazy_advances > 0,
            "the event leg must evaluate lazily"
        );
        assert!(
            l.event.stats.lazy_advances >= l.dense.stats.lazy_advances,
            "the event leg counts allocator reads plus lazy load evaluations; \
             the dense leg counts only allocator reads"
        );
    }

    /// The emitted JSON parses as a `BenchReport` with the scaling extras,
    /// so `experiments compare` can gate on it.
    #[test]
    fn report_json_is_compare_compatible() {
        let levels = run_levels(&[48], 8);
        let headline = Headline {
            machines: 48,
            queries: 8,
            leg: levels[0].event,
        };
        let json = report_json(Scale::Small, &levels, Some(&headline));
        let r: BenchReport = serde_json::from_str(&json).expect("BenchReport-compatible JSON");
        assert_eq!(r.bench, "exec");
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0].name, "exec_48");
        assert_eq!(r.phases[0].machines, Some(48));
        assert_eq!(r.phases[0].queries, Some(8));
        assert!(r.phases[0].events_per_s.is_some());
        assert!(r.total.parallel_s > 0.0);
    }

    /// The checked-in repo-root report stays parseable, carries the full
    /// 1k/5k/10k sweep, and documents the acceptance headline: ≥ 1M
    /// queries over 10k machines with the event engine ≥ 20× the dense
    /// reference at the largest pool.
    #[test]
    fn checked_in_bench_exec_report_parses() {
        let json = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_exec.json"
        ))
        .expect("BENCH_exec.json must be checked in at the repo root");
        let r: BenchReport = serde_json::from_str(&json).expect("parseable report");
        assert_eq!(r.bench, "exec");
        let ten_k = r
            .phases
            .iter()
            .find(|p| p.machines == Some(10_000))
            .expect("the sweep must include the 10k pool");
        assert!(
            ten_k.speedup >= 20.0,
            "event engine must be >= 20x dense at 10k machines, got {:.1}x",
            ten_k.speedup
        );
        // The headline block is outside the BenchReport schema; parse it
        // with a dedicated row type.
        #[derive(serde::Deserialize)]
        struct ExecReport {
            headline: HeadlineRow,
        }
        #[derive(serde::Deserialize)]
        struct HeadlineRow {
            machines: u64,
            queries: u64,
            completed: u64,
        }
        let e: ExecReport = serde_json::from_str(&json).expect("headline block");
        assert!(e.headline.machines >= 10_000);
        assert!(e.headline.queries >= 1_000_000);
        assert!(e.headline.completed > 0);
    }
}
