//! Figure 1: relative standard deviation of CPU costs of recurring queries
//! over one month — "an identical query can exhibit up to 50 % cost
//! fluctuation".

use crate::report::Table;
use crate::scale::{scaled_eval_profile, Scale};
use mcsim_catalog::ProjectId;
use mcsim_exec::{build_history, HistoryOptions};

/// Runs the experiment and prints the bar-plot series.
pub fn run(scale: Scale) {
    let mut profile = scaled_eval_profile(1, scale);
    // A month of a compact recurring workload.
    profile.n_query_day0 = profile.n_query_day0.min(40.0);
    let project = profile.generate(ProjectId(1));
    let repo = build_history(
        &project,
        &HistoryOptions {
            days: 30,
            max_queries: 1200,
            seed: 0xf1f1,
            ..HistoryOptions::default()
        },
    );

    let groups = repo.recurring_groups(8);
    let mut rsds: Vec<(usize, usize, f64)> = groups
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let costs: Vec<f64> = g.iter().map(|r| r.cpu_cost).collect();
            let mean = costs.iter().sum::<f64>() / costs.len() as f64;
            let var = costs.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / costs.len() as f64;
            (i, g.len(), var.sqrt() / mean)
        })
        .collect();
    rsds.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));

    println!("Figure 1 — relative std-dev of CPU cost, recurring queries over 30 days");
    println!("(paper: identical queries fluctuate by up to ~50 %)\n");
    let mut t = Table::new(["recurring query", "executions", "relative std-dev"]);
    for (rank, &(i, n, rsd)) in rsds.iter().take(12).enumerate() {
        let _ = i;
        t.row([
            format!("Q{}", rank + 1),
            format!("{n}"),
            format!("{:.1}%", rsd * 100.0),
        ]);
    }
    println!("{}", t.render());
    let max = rsds.first().map(|r| r.2).unwrap_or(0.0);
    let mean: f64 = rsds.iter().map(|r| r.2).sum::<f64>() / rsds.len().max(1) as f64;
    println!(
        "recurring groups: {}; max RSD {:.1}% (paper: up to ~50%), mean RSD {:.1}%",
        rsds.len(),
        max * 100.0,
        mean * 100.0
    );
}
