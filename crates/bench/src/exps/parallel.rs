//! The parallel-compute benchmark: runs the fig5+fig7 experiment subset
//! twice — once pinned to a single thread (the serial baseline) and once on
//! the default pool — and reports wall-clock per phase plus the speedup,
//! both as a table and as a `BENCH_parallel.json` report.

use crate::exps::{common, fig5};
use crate::report::Table;
use crate::scale::Scale;
use loam_core::pipeline::evaluate_model;

/// Wall-clock seconds of each phase of the fig5+fig7 subset.
struct PhaseTimes {
    /// (phase name, seconds) in execution order.
    phases: Vec<(&'static str, f64)>,
}

impl PhaseTimes {
    fn total(&self) -> f64 {
        self.phases.iter().map(|p| p.1).sum()
    }
}

/// Runs the fig5 load sweep, the fig7 project context (prepare + train +
/// replay), and the fig7 model evaluation, timing each phase under whatever
/// thread count is currently configured.
fn run_phases(scale: Scale) -> PhaseTimes {
    let mut phases = Vec::new();

    let t = std::time::Instant::now();
    let sweep = fig5::sweep(scale);
    phases.push(("fig5_sweep", t.elapsed().as_secs_f64()));
    // Consume the sweep so the work cannot be considered dead.
    assert!(sweep.iter().map(|s| s.3).sum::<f64>().is_finite());

    let t = std::time::Instant::now();
    let run = common::run_project(1, scale);
    phases.push(("fig7_context", t.elapsed().as_secs_f64()));

    let t = std::time::Instant::now();
    let report =
        evaluate_model(&run.loam, &run.strategy, &run.evaluated).expect("model evaluation failed");
    phases.push(("fig7_eval", t.elapsed().as_secs_f64()));
    assert_eq!(report.per_query.len(), run.evaluated.len());

    PhaseTimes { phases }
}

/// Renders the report as a JSON document. Both thread counts are the ones
/// the legs actually ran with, not assumptions. When both legs ran at the
/// same thread count the speedup signal is degenerate — every phase is
/// marked `degenerate: true` so downstream tooling (`experiments compare`)
/// knows not to read meaning into the ratio.
fn report_json(
    scale: Scale,
    serial_threads: usize,
    parallel_threads: usize,
    serial: &PhaseTimes,
    parallel: &PhaseTimes,
) -> String {
    let scale_name = format!("{scale:?}").to_lowercase();
    let degenerate = serial_threads == parallel_threads;
    let mark = if degenerate {
        ",\"degenerate\":true"
    } else {
        ""
    };
    let mut phases = String::new();
    for (i, ((name, s), (_, p))) in serial.phases.iter().zip(&parallel.phases).enumerate() {
        if i > 0 {
            phases.push(',');
        }
        phases.push_str(&format!(
            "{{\"name\":\"{name}\",\"serial_s\":{s:.6},\"parallel_s\":{p:.6},\
             \"speedup\":{:.4}{mark}}}",
            s / p.max(1e-9)
        ));
    }
    format!(
        concat!(
            "{{\"bench\":\"parallel\",\"scale\":\"{}\",",
            "\"threads_serial\":{},\"threads_parallel\":{},",
            "\"phases\":[{}],",
            "\"total\":{{\"serial_s\":{:.6},\"parallel_s\":{:.6},\"speedup\":{:.4}}}}}"
        ),
        scale_name,
        serial_threads,
        parallel_threads,
        phases,
        serial.total(),
        parallel.total(),
        serial.total() / parallel.total().max(1e-9),
    )
}

/// Runs the benchmark and writes `BENCH_parallel.json` into the current
/// directory.
pub fn run(scale: Scale) {
    println!("Parallel-compute benchmark — fig5+fig7 subset, serial vs pool\n");
    // The pool-configured count (--threads / MCSIM_PAR_THREADS), unless the
    // pool sits at a single thread — then the parallel leg defaults to the
    // machine's available parallelism, so an unconfigured run still
    // exercises the pool instead of silently producing a degenerate 1-vs-1
    // report.
    let configured = mcsim_par::threads();
    let parallel_threads = if configured > 1 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    if parallel_threads != configured {
        eprintln!(
            "note: pool configured with {configured} thread(s); parallel leg \
             defaulted to the machine's {parallel_threads}"
        );
    }
    let serial_threads = 1;
    if parallel_threads == serial_threads {
        eprintln!(
            "warning: both legs will run with {serial_threads} thread(s) — the speedup \
             column is meaningless and every phase will be marked `degenerate: true` \
             in BENCH_parallel.json; pass --threads N or set MCSIM_PAR_THREADS"
        );
    }

    eprintln!("serial baseline ({serial_threads} thread)...");
    let prev = mcsim_par::set_threads(serial_threads);
    let serial = run_phases(scale);

    eprintln!("parallel run ({parallel_threads} threads)...");
    mcsim_par::set_threads(parallel_threads);
    let parallel = run_phases(scale);
    mcsim_par::set_threads(prev);

    let mut t = Table::new(["phase", "serial (s)", "parallel (s)", "speedup"]);
    for ((name, s), (_, p)) in serial.phases.iter().zip(&parallel.phases) {
        t.row([
            name.to_string(),
            format!("{s:.3}"),
            format!("{p:.3}"),
            format!("{:.2}x", s / p.max(1e-9)),
        ]);
    }
    t.row([
        "total".to_string(),
        format!("{:.3}", serial.total()),
        format!("{:.3}", parallel.total()),
        format!("{:.2}x", serial.total() / parallel.total().max(1e-9)),
    ]);
    println!("{}", t.render());
    println!("threads: serial={serial_threads}, parallel={parallel_threads}");

    let json = report_json(scale, serial_threads, parallel_threads, &serial, &parallel);
    let path = "BENCH_parallel.json";
    if serial_threads == parallel_threads && existing_is_nondegenerate(path) {
        eprintln!(
            "refusing to overwrite the non-degenerate {path} with a degenerate \
             1-vs-1 run; pass --threads N or set MCSIM_PAR_THREADS to regenerate it"
        );
        return;
    }
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// True when `path` holds a parseable report whose two legs ran at distinct
/// thread counts. Missing or malformed files are treated as degenerate (and
/// may therefore be overwritten freely).
fn existing_is_nondegenerate(path: &str) -> bool {
    #[derive(serde::Deserialize)]
    struct ThreadCounts {
        threads_serial: u64,
        threads_parallel: u64,
    }
    let Ok(s) = std::fs::read_to_string(path) else {
        return false;
    };
    match serde_json::from_str::<ThreadCounts>(&s) {
        Ok(t) => t.threads_serial != t.threads_parallel,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Deserialize)]
    struct Report {
        bench: String,
        scale: String,
        threads_serial: u32,
        threads_parallel: u32,
        phases: Vec<Phase>,
        total: Totals,
    }

    #[derive(Debug, Deserialize)]
    struct Phase {
        name: String,
        serial_s: f64,
        parallel_s: f64,
        speedup: f64,
        degenerate: Option<bool>,
    }

    #[derive(Debug, Deserialize)]
    struct Totals {
        serial_s: f64,
        parallel_s: f64,
        speedup: f64,
    }

    #[test]
    fn report_json_is_well_formed() {
        let serial = PhaseTimes {
            phases: vec![("a", 2.0), ("b", 4.0)],
        };
        let parallel = PhaseTimes {
            phases: vec![("a", 1.0), ("b", 2.0)],
        };
        let json = report_json(Scale::Small, 1, 8, &serial, &parallel);
        let r: Report = serde_json::from_str(&json).expect("valid json");
        assert_eq!(r.bench, "parallel");
        assert_eq!(r.scale, "small");
        assert_eq!(r.threads_serial, 1);
        assert_eq!(r.threads_parallel, 8);
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].name, "a");
        assert!((r.phases[0].serial_s - 2.0).abs() < 1e-9);
        assert!((r.phases[0].parallel_s - 1.0).abs() < 1e-9);
        assert!((r.phases[0].speedup - 2.0).abs() < 1e-9);
        assert!(
            r.phases[0].degenerate.is_none(),
            "distinct thread counts are sound"
        );
        assert!((r.total.serial_s - 6.0).abs() < 1e-9);
        assert!((r.total.parallel_s - 3.0).abs() < 1e-9);
        assert!((r.total.speedup - 2.0).abs() < 1e-9);
    }

    /// The overwrite guard recognizes a checked-in non-degenerate report
    /// and treats missing/garbage/degenerate files as fair game.
    #[test]
    fn overwrite_guard_classifies_existing_reports() {
        let dir = std::env::temp_dir().join("mcsim-parallel-guard-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

        let times = PhaseTimes {
            phases: vec![("a", 2.0)],
        };
        let good = p("good.json");
        std::fs::write(&good, report_json(Scale::Small, 1, 4, &times, &times)).unwrap();
        assert!(existing_is_nondegenerate(&good));

        let degen = p("degen.json");
        std::fs::write(&degen, report_json(Scale::Small, 1, 1, &times, &times)).unwrap();
        assert!(!existing_is_nondegenerate(&degen));

        let junk = p("junk.json");
        std::fs::write(&junk, "not json").unwrap();
        assert!(!existing_is_nondegenerate(&junk));

        assert!(!existing_is_nondegenerate(&p("missing.json")));
    }

    /// A run where both legs use the same thread count marks every phase
    /// degenerate, so nobody mistakes a 1.0x "speedup" for a measurement.
    #[test]
    fn same_thread_count_marks_phases_degenerate() {
        let times = PhaseTimes {
            phases: vec![("a", 2.0), ("b", 4.0)],
        };
        let json = report_json(Scale::Small, 1, 1, &times, &times);
        let r: Report = serde_json::from_str(&json).expect("valid json");
        assert!(r.phases.iter().all(|p| p.degenerate == Some(true)));
    }
}
