//! Shared experiment context: prepared projects, trained models, evaluated
//! candidate sets — computed once and reused by every end-to-end experiment.

use crate::scale::{scaled_eval_profile, scaled_pipeline_config, Scale};
use loam_core::inference::EnvStrategy;
use loam_core::pipeline::{
    evaluate_candidates, prepare_project, train_loam, EvaluatedQuery, PipelineConfig,
    PreparedProject,
};
use loam_core::AdaptiveCostPredictor;
use mcsim_catalog::ProjectId;

/// One fully-evaluated project: history, trained LOAM, replayed candidates.
pub struct ProjectRun {
    /// 1-based evaluation-project number.
    pub n: usize,
    /// Pipeline configuration used.
    pub cfg: PipelineConfig,
    /// Prepared project (history, training data, test queries).
    pub prepared: PreparedProject,
    /// Flighting-replayed candidate sets for every test query.
    pub evaluated: Vec<EvaluatedQuery>,
    /// The trained adaptive predictor.
    pub loam: AdaptiveCostPredictor,
    /// Wall-clock seconds spent training LOAM.
    pub loam_train_secs: f64,
    /// LOAM's inference-time environment strategy (`e_r`).
    pub strategy: EnvStrategy,
}

/// Prepares, trains, and evaluates one evaluation project.
pub fn run_project(n: usize, scale: Scale) -> ProjectRun {
    let profile = scaled_eval_profile(n, scale);
    let cfg = scaled_pipeline_config(scale);
    let prepared = prepare_project(&profile, ProjectId(n as u32), &cfg)
        .expect("evaluation project preparation failed");
    let t = std::time::Instant::now();
    let loam = train_loam(&prepared, &cfg).expect("LOAM training failed");
    let loam_train_secs = t.elapsed().as_secs_f64();
    let evaluated = evaluate_candidates(&prepared, &cfg).expect("candidate evaluation failed");
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    ProjectRun {
        n,
        cfg,
        prepared,
        evaluated,
        loam,
        loam_train_secs,
        strategy,
    }
}

/// Runs all five evaluation projects, fanned out across the global pool
/// (order-preserving, so `runs[i]` is always project `i + 1`).
pub fn run_all_projects(scale: Scale) -> Vec<ProjectRun> {
    let ns: Vec<usize> = (1..=5).collect();
    // Each project is seconds of prepare+train+replay — far above any
    // sensible work gate, so this fan-out always parallelizes when the pool
    // has threads to spare.
    mcsim_par::ThreadPool::global().parallel_map_gated(&ns, 1 << 24, |&n| run_project(n, scale))
}

/// Percentage gain of `model_cost` relative to `baseline_cost`.
pub fn gain_pct(baseline_cost: f64, model_cost: f64) -> f64 {
    100.0 * (1.0 - model_cost / baseline_cost)
}
