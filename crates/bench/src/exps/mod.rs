//! One module per reproduced table/figure, plus shared context helpers.

pub mod chaos;
pub mod common;
pub mod compare;
pub mod exec;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig15;
pub mod fig16;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod infer;
pub mod parallel;
pub mod population;
pub mod sec73;
pub mod serve;
pub mod sweep;
pub mod tab1;
pub mod thm1;
pub mod trace;
pub mod train;
