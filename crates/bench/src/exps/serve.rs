//! The `experiments serve` subcommand: serving throughput under traffic.
//!
//! Trains a small LOAM pipeline once, then drives the evaluated query
//! templates through a [`ServeSession`] under several serving
//! configurations at the *same* arrival seed:
//!
//! * `single`  — batch size 1, both caches off: the per-query baseline
//!   every request pays full featurization + inference;
//! * `batched` — batch size 32 with the sharded feature cache and the
//!   plan-signature decision cache: the production configuration;
//! * (full scale) `bursty` / `diurnal` — the batched configuration under
//!   the other arrival shapes, plus `shed`, an overloaded point with the
//!   queue-bound admission control armed.
//!
//! Because the arrival trace, the guarded selection, and the per-request
//! executors are all seeded, `single` and `batched` make bit-identical
//! decisions — the phases differ only in wall-clock, so the QPS ratio is
//! a pure measurement of batching + caching. Writes `BENCH_serve.json` in
//! the `BenchReport` phase schema (`single` is every phase's `serial_s`
//! baseline, so for the equal-traffic phases `speedup` *is* the QPS
//! ratio); serve-specific fields (latency percentiles, shed rate, cache
//! hit rates) ride along unparsed.

use crate::report::Table;
use crate::scale::{scaled_eval_profile, Scale};
use loam_core::inference::EnvStrategy;
use loam_core::pipeline::{evaluate_candidates, prepare_project, train_loam, PipelineConfig};
use loam_core::TrainConfig;
use mcsim_catalog::ProjectId;
use mcsim_serve::{ArrivalProfile, ServeConfig, ServeReport, ServeSession, ShedPolicy};

/// A pipeline configuration small enough that training is a footnote next
/// to the serving sweep itself.
fn serve_pipeline_config(scale: Scale) -> PipelineConfig {
    let f = scale.fraction();
    PipelineConfig {
        train_days: 6,
        test_days: 2,
        max_train: ((1200.0 * f) as usize).max(120),
        max_test: ((60.0 * f) as usize).max(12),
        eval_rounds: 3,
        da_queries: 12,
        train_cfg: TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// Shared serving knobs: every phase serves the same trace against the
/// same small execution clusters, so inference-side batching/caching is
/// the only variable.
fn base_config(scale: Scale, requests: usize) -> mcsim_serve::ServeConfigBuilder {
    let _ = scale;
    ServeConfig::builder()
        .arrival(ArrivalProfile::Poisson { rate_qps: 64.0 })
        .tenants(8)
        .requests(requests)
        .machines(8)
        .warmup_ticks(2)
        .seed(0x5e12_7e55)
}

/// One serving configuration's outcome.
pub struct PhaseOutcome {
    /// Phase name (`single`, `batched`, ...).
    pub name: &'static str,
    /// The phase's arrival shape (`poisson`, `bursty`, `diurnal`).
    pub arrival: &'static str,
    /// The session report (carries its own wall-clock).
    pub report: ServeReport,
}

/// Trains the pipeline once and serves every phase. Returned directly for
/// the acceptance tests.
pub fn run_phases(scale: Scale, quick: bool) -> Vec<PhaseOutcome> {
    let profile = scaled_eval_profile(1, scale);
    let cfg = serve_pipeline_config(scale);
    eprintln!("preparing + training the serving pipeline...");
    let prepared =
        prepare_project(&profile, ProjectId(1), &cfg).expect("project preparation failed");
    let predictor = train_loam(&prepared, &cfg).expect("LOAM training failed");
    let evaluated = evaluate_candidates(&prepared, &cfg).expect("candidate evaluation failed");
    let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
    let catalog = &prepared.project.catalog;
    let requests = ((512.0 * scale.fraction()) as usize).max(192);

    let single = base_config(scale, requests)
        .batch_size(1)
        .feature_cache(false)
        .decision_cache(false)
        .strategy(strategy)
        .build()
        .expect("single-query config is valid");
    let batched = base_config(scale, requests)
        .batch_size(32)
        .strategy(strategy)
        .build()
        .expect("batched config is valid");

    let mut phases: Vec<(&'static str, ServeConfig)> =
        vec![("single", single), ("batched", batched.clone())];
    if !quick {
        // Decision cache off: recurring templates re-score every time, so
        // this phase isolates what the sharded feature cache contributes.
        phases.push((
            "feat_cache",
            ServeConfig {
                decision_cache: false,
                ..batched.clone()
            },
        ));
        phases.push((
            "bursty",
            ServeConfig {
                arrival: ArrivalProfile::Bursty {
                    rate_qps: 64.0,
                    burst_factor: 8.0,
                    burst_fraction: 0.25,
                },
                ..batched.clone()
            },
        ));
        phases.push((
            "diurnal",
            ServeConfig {
                arrival: ArrivalProfile::Diurnal {
                    rate_qps: 64.0,
                    amplitude: 0.6,
                    period_s: 4.0,
                },
                ..batched.clone()
            },
        ));
        phases.push((
            "shed",
            ServeConfig {
                arrival: ArrivalProfile::Poisson { rate_qps: 512.0 },
                shed: ShedPolicy::QueueBound {
                    capacity: 32,
                    drain_qps: 128.0,
                },
                ..batched
            },
        ));
    }

    phases
        .into_iter()
        .map(|(name, cfg)| {
            eprintln!("serving `{name}`...");
            let arrival = cfg.arrival.name();
            let session = ServeSession::new(cfg).expect("serve config is valid");
            let report = session
                .run(&predictor, &evaluated, catalog, None)
                .expect("serving must terminate with a report");
            PhaseOutcome {
                name,
                arrival,
                report,
            }
        })
        .collect()
}

/// Runs the sweep and writes `BENCH_serve.json`. `quick` restricts the
/// sweep to the `single` / `batched` pair (the CI smoke).
pub fn run(scale: Scale, quick: bool) {
    println!("Serving benchmark — batched + cached sessions vs single-query\n");
    let outcomes = run_phases(scale, quick);
    let base_qps = outcomes[0].report.qps().max(1e-9);

    let mut t = Table::new([
        "phase",
        "requests",
        "shed",
        "completed",
        "qps",
        "vs single",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "feat hit",
        "dec hit",
    ]);
    for o in &outcomes {
        let r = &o.report;
        t.row([
            o.name.to_string(),
            r.requests.to_string(),
            format!("{:.1}%", r.shed_rate() * 100.0),
            r.completed.to_string(),
            format!("{:.0}", r.qps()),
            format!("{:.2}x", r.qps() / base_qps),
            format!("{:.3}", r.latency.p50() * 1e3),
            format!("{:.3}", r.latency.p95() * 1e3),
            format!("{:.3}", r.latency.p99() * 1e3),
            format!("{:.0}%", r.feature_hit_rate() * 100.0),
            format!("{:.0}%", r.decision_hit_rate() * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "gate deployed: {}; decisions identical across phases at equal seed",
        outcomes[0].report.gate_deployed
    );

    let json = report_json(scale, &outcomes);
    let path = "BENCH_serve.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Renders the sweep as `BenchReport`-shaped JSON: the `single` phase is
/// every phase's `serial_s` baseline and each phase's own wall-clock is
/// `parallel_s`, so `speedup` is the QPS ratio and `compare` gates on
/// serving-throughput regressions.
fn report_json(scale: Scale, outcomes: &[PhaseOutcome]) -> String {
    let scale_name = format!("{scale:?}").to_lowercase();
    let base_wall = outcomes[0].report.wall_s.max(1e-9);
    let threads = mcsim_par::ThreadPool::global().threads();
    let phases = outcomes
        .iter()
        .map(|o| {
            let r = &o.report;
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"serial_s\":{:.6},\"parallel_s\":{:.6},",
                    "\"speedup\":{:.4},\"serve\":{{\"arrival\":\"{}\",\"requests\":{},",
                    "\"shed\":{},\"shed_rate\":{:.6},\"completed\":{},\"failed\":{},",
                    "\"batches\":{},\"qps\":{:.3},\"p50_ms\":{:.6},\"p95_ms\":{:.6},",
                    "\"p99_ms\":{:.6},\"feature_hit_rate\":{:.6},",
                    "\"decision_hit_rate\":{:.6}}}}}"
                ),
                o.name,
                base_wall,
                r.wall_s,
                base_wall / r.wall_s.max(1e-9),
                o.arrival,
                r.requests,
                r.shed,
                r.shed_rate(),
                r.completed,
                r.failed,
                r.batches,
                r.qps(),
                r.latency.p50() * 1e3,
                r.latency.p95() * 1e3,
                r.latency.p99() * 1e3,
                r.feature_hit_rate(),
                r.decision_hit_rate(),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let total_wall: f64 = outcomes.iter().map(|o| o.report.wall_s).sum();
    format!(
        concat!(
            "{{\"bench\":\"serve\",\"scale\":\"{}\",",
            "\"threads_serial\":{},\"threads_parallel\":{},",
            "\"phases\":[{}],",
            "\"total\":{{\"serial_s\":{:.6},\"parallel_s\":{:.6},\"speedup\":{:.4}}},",
            "\"gate_deployed\":{}}}"
        ),
        scale_name,
        threads,
        threads,
        phases,
        base_wall * outcomes.len() as f64,
        total_wall,
        base_wall * outcomes.len() as f64 / total_wall.max(1e-9),
        outcomes[0].report.gate_deployed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exps::compare::BenchReport;

    /// The headline acceptance criterion: batching + caching at least
    /// doubles sustained QPS over the single-query baseline while making
    /// the *same decisions* on the same arrival trace.
    #[test]
    fn batched_cached_serving_at_least_doubles_qps() {
        let outcomes = run_phases(Scale::Small, true);
        let (single, batched) = (&outcomes[0].report, &outcomes[1].report);
        assert_eq!(single.requests, batched.requests);
        assert_eq!(single.decision_log.len(), batched.decision_log.len());
        for (s, b) in single.decision_log.iter().zip(&batched.decision_log) {
            assert!(
                s.same_decision(b),
                "phases must decide identically: {s:?} vs {b:?}"
            );
        }
        let ratio = batched.qps() / single.qps().max(1e-9);
        assert!(
            ratio >= 2.0,
            "batched+cached serving must at least double QPS, got {ratio:.2}x \
             ({:.0} vs {:.0})",
            batched.qps(),
            single.qps()
        );
        assert!(batched.decision_cache_hits > 0);
        assert!(batched.feature_cache_misses > 0);
    }

    /// The emitted JSON parses as a `BenchReport` (so `experiments
    /// compare` can gate on it) and the phase speedup is the QPS ratio.
    #[test]
    fn report_json_is_compare_compatible() {
        let outcomes = run_phases(Scale::Small, true);
        let json = report_json(Scale::Small, &outcomes);
        let r: BenchReport = serde_json::from_str(&json).expect("BenchReport-compatible JSON");
        assert_eq!(r.bench, "serve");
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].name, "single");
        assert_eq!(r.phases[1].name, "batched");
        assert!((r.phases[0].speedup - 1.0).abs() < 1e-9);
        assert!(r.total.parallel_s > 0.0);
    }

    /// The checked-in repo-root report stays parseable and in sync with
    /// the schema (mirrors the `BENCH_chaos.json` test).
    #[test]
    fn checked_in_bench_serve_report_parses() {
        let json = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_serve.json"
        ))
        .expect("BENCH_serve.json must be checked in at the repo root");
        let r: BenchReport = serde_json::from_str(&json).expect("parseable report");
        assert_eq!(r.bench, "serve");
        assert!(!r.phases.is_empty());
        assert_eq!(r.phases[0].name, "single");
        let batched = r
            .phases
            .iter()
            .find(|p| p.name == "batched")
            .expect("a batched phase");
        assert!(
            batched.speedup >= 2.0,
            "checked-in report must show >= 2x QPS, got {:.2}x",
            batched.speedup
        );
    }
}
