//! Figure 11 (Section 7.2.3): effects of adaptive training — LOAM vs. the
//! LOAM-NA ablation (no domain classifier, no gradient reversal) vs.
//! MaxCompute.

use crate::exps::common::ProjectRun;
use crate::report::Table;
use loam_core::pipeline::{evaluate_model, evaluate_native};
use loam_core::predictor::train::{train, TrainConfig};
use loam_core::AdaptiveCostPredictor;

/// Average CPU costs of the three systems on one project.
pub struct Fig11Row {
    /// Project number.
    pub n: usize,
    /// MaxCompute average cost.
    pub native: f64,
    /// LOAM-NA (no adaptive training) average cost.
    pub na: f64,
    /// LOAM average cost.
    pub loam: f64,
}

/// Evaluates the ablation for one project run.
pub fn evaluate_run(run: &ProjectRun) -> Fig11Row {
    let mut na = AdaptiveCostPredictor::new(run.cfg.seed ^ 0x10a0, true);
    let na_cfg = TrainConfig {
        adaptive: false,
        ..run.cfg.train_cfg
    };
    // LOAM-NA trains purely on the cost loss: no candidate plans, no GRL.
    train(
        &mut na,
        &run.prepared.train_samples,
        &[],
        run.prepared.mean_env,
        &na_cfg,
    );
    Fig11Row {
        n: run.n,
        native: evaluate_native(&run.evaluated)
            .expect("native evaluation failed")
            .avg_cost,
        na: evaluate_model(&na, &run.strategy, &run.evaluated)
            .expect("model evaluation failed")
            .avg_cost,
        loam: evaluate_model(&run.loam, &run.strategy, &run.evaluated)
            .expect("model evaluation failed")
            .avg_cost,
    }
}

/// Prints the ablation table.
pub fn print(rows: &[Fig11Row]) {
    println!("Figure 11 — effects of adaptive training (average CPU cost)");
    println!("(paper: LOAM-NA is markedly worse than LOAM on P1/P2/P5, often ≤ MaxCompute)\n");
    let mut t = Table::new(["method", "P1", "P2", "P3", "P4", "P5"]);
    let mut native = vec!["MaxCompute".to_string()];
    let mut na = vec!["LOAM-NA".to_string()];
    let mut loam = vec!["LOAM".to_string()];
    for r in rows {
        native.push(format!("{:.0}", r.native));
        na.push(format!("{:.0}", r.na));
        loam.push(format!("{:.0}", r.loam));
    }
    for row in [native, na, loam] {
        t.row(row);
    }
    println!("{}", t.render());
}
