//! The inference hot-path benchmark: scores the fig7 project's candidate
//! sets six ways — the legacy single-plan allocating path (scalar and SIMD
//! kernels), the workspace-batched forward (dense scalar, dense SIMD,
//! sparse SIMD), and the batched sparse SIMD path on a warm feature cache —
//! asserts every leg is bit-identical to the baseline, reports
//! plans-predicted/sec per leg plus steady-state allocations per scoring
//! pass (via the counting allocator installed by the `experiments` binary),
//! and writes `BENCH_infer.json` in the same phase shape as
//! `BENCH_parallel.json` so `experiments compare` can diff it.
//!
//! The model is freshly initialized rather than trained: forward-pass cost
//! does not depend on the weight values, and skipping training keeps the
//! benchmark focused on the inference path itself.

use crate::report::Table;
use crate::scale::{scaled_eval_profile, scaled_pipeline_config, Scale};
use loam_core::pipeline::prepare_project;
use loam_core::{AdaptiveCostPredictor, EnvStrategy, FeatureCache, InferWs, PlanExplorer};
use mcsim_catalog::ProjectId;
use mcsim_optimizer::NativeOptimizer;
use mcsim_plan::PlanTree;
use tinynn::workspace::alloc_probe::allocation_count;
use tinynn::{set_kernel_mode, KernelMode};

/// Timed scoring passes per leg (after one untimed warm-up pass).
const REPS: usize = 20;
/// Timed passes per leg under `--quick`.
const QUICK_REPS: usize = 3;
/// Candidate sets kept under `--quick`.
const QUICK_QUERIES: usize = 12;

/// The scoring workload: per-query candidate sets plus the environment
/// strategy the serving path would use.
struct Workload {
    /// Candidate plans, one inner vec per test query.
    sets: Vec<Vec<PlanTree>>,
    /// Mean-historical environment strategy (the representative instance).
    env: EnvStrategy,
}

impl Workload {
    fn queries(&self) -> usize {
        self.sets.len()
    }

    fn plans(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// One measured leg of the benchmark.
struct Leg {
    name: &'static str,
    /// Wall-clock seconds per scoring pass over the whole workload.
    seconds: f64,
    /// Bit patterns of every predicted cost from one pass, in workload
    /// order, for exact cross-leg comparisons.
    bits: Vec<u64>,
}

impl Leg {
    fn plans_per_s(&self, plans: usize) -> f64 {
        plans as f64 / self.seconds.max(1e-12)
    }
}

/// One pass of the legacy path: every plan scored by its own
/// [`AdaptiveCostPredictor::predict`] call (fresh workspaces each time).
fn pass_single(model: &AdaptiveCostPredictor, w: &Workload, bits: &mut Vec<u64>) {
    bits.clear();
    for set in &w.sets {
        for plan in set {
            bits.push(model.predict(plan, w.env.env_source()).to_bits());
        }
    }
}

/// One pass of the batched path: each candidate set scored by a single
/// [`AdaptiveCostPredictor::predict_batch_into`] call on a warm workspace.
#[allow(clippy::too_many_arguments)]
fn pass_batched(
    model: &AdaptiveCostPredictor,
    w: &Workload,
    ref_sets: &[Vec<&PlanTree>],
    sparse: bool,
    cache: Option<&FeatureCache>,
    ws: &mut InferWs,
    out: &mut Vec<f64>,
    bits: &mut Vec<u64>,
) {
    bits.clear();
    ws.sparse = sparse;
    for refs in ref_sets {
        model.predict_batch_into(refs, w.env.env_source(), cache, ws, out);
        bits.extend(out.iter().map(|c| c.to_bits()));
    }
}

/// Times `reps` passes of `pass` (after one warm-up pass that also captures
/// the leg's prediction bits).
fn time_leg(
    name: &'static str,
    mode: KernelMode,
    reps: usize,
    mut pass: impl FnMut(&mut Vec<u64>),
) -> Leg {
    eprintln!("{name}...");
    let prev = set_kernel_mode(mode);
    let mut bits = Vec::new();
    pass(&mut bits); // warm-up: grows every buffer to its steady size
    let kept = bits.clone();
    let t = std::time::Instant::now();
    for _ in 0..reps {
        pass(&mut bits);
    }
    let seconds = t.elapsed().as_secs_f64() / reps.max(1) as f64;
    set_kernel_mode(prev);
    assert_eq!(kept, bits, "{name}: predictions changed between passes");
    Leg {
        name,
        seconds,
        bits,
    }
}

/// Builds the fig7 candidate-set workload (prepare + explore, no replay —
/// the costs are irrelevant to inference throughput).
fn build_workload(scale: Scale, quick: bool) -> Workload {
    let profile = scaled_eval_profile(1, scale);
    let cfg = scaled_pipeline_config(scale);
    eprintln!("preparing the fig7 evaluation project...");
    let prepared =
        prepare_project(&profile, ProjectId(1), &cfg).expect("project preparation failed");
    let optimizer = NativeOptimizer::new(&prepared.project.catalog);
    let explorer = PlanExplorer::new(cfg.explorer.clone());
    let mut sets: Vec<Vec<PlanTree>> = prepared
        .test_queries
        .iter()
        .map(|q| {
            let set = explorer.explore(&optimizer, q);
            set.candidates.into_iter().map(|c| c.plan).collect()
        })
        .collect();
    if quick {
        sets.truncate(QUICK_QUERIES);
    }
    Workload {
        sets,
        env: EnvStrategy::MeanHistorical(prepared.mean_env),
    }
}

/// Runs the benchmark and writes `BENCH_infer.json` into the current
/// directory. `quick` shrinks the workload and repetition count for CI
/// smoke runs.
pub fn run(scale: Scale, quick: bool) {
    println!("Inference hot-path benchmark — fig7 candidate sets, single vs batched\n");
    let reps = if quick { QUICK_REPS } else { REPS };
    let w = build_workload(scale, quick);
    let (queries, plans) = (w.queries(), w.plans());
    eprintln!("workload: {queries} queries, {plans} candidate plans, {reps} passes/leg");

    let cfg = scaled_pipeline_config(scale);
    let model = AdaptiveCostPredictor::new(cfg.seed ^ 0x1f3a, true);
    let ref_sets: Vec<Vec<&PlanTree>> = w.sets.iter().map(|s| s.iter().collect()).collect();
    let mut ws = InferWs::new();
    let mut out = Vec::new();
    let cache = FeatureCache::new();

    let single_scalar = time_leg("single, scalar", KernelMode::Scalar, reps, |b| {
        pass_single(&model, &w, b)
    });
    let single_simd = time_leg("single, simd", KernelMode::Simd, reps, |b| {
        pass_single(&model, &w, b)
    });
    let batched_dense_scalar = time_leg("batched dense, scalar", KernelMode::Scalar, reps, |b| {
        pass_batched(&model, &w, &ref_sets, false, None, &mut ws, &mut out, b)
    });
    let batched_dense_simd = time_leg("batched dense, simd", KernelMode::Simd, reps, |b| {
        pass_batched(&model, &w, &ref_sets, false, None, &mut ws, &mut out, b)
    });
    let batched_sparse_simd = time_leg("batched sparse, simd", KernelMode::Simd, reps, |b| {
        pass_batched(&model, &w, &ref_sets, true, None, &mut ws, &mut out, b)
    });
    let batched_cached = time_leg(
        "batched sparse, simd, cached",
        KernelMode::Simd,
        reps,
        |b| {
            pass_batched(
                &model,
                &w,
                &ref_sets,
                true,
                Some(&cache),
                &mut ws,
                &mut out,
                b,
            )
        },
    );

    // Every optimized leg must reproduce the legacy path bit for bit.
    let legs = [
        single_scalar,
        single_simd,
        batched_dense_scalar,
        batched_dense_simd,
        batched_sparse_simd,
        batched_cached,
    ];
    for leg in &legs[1..] {
        assert_eq!(
            legs[0].bits, leg.bits,
            "`{}` predictions diverged from the single-scalar baseline",
            leg.name
        );
    }
    println!(
        "predictions bit-identical across all {} legs ✓\n",
        legs.len()
    );

    // Steady-state allocations of one warm cached scoring pass. The cache
    // and every workspace buffer are already at their high-water marks, so
    // the pass must not touch the allocator at all (the probe reads 0 when
    // the counting allocator is not installed — skip the assertion then).
    let prev = set_kernel_mode(KernelMode::Simd);
    let mut bits = Vec::with_capacity(plans);
    pass_batched(
        &model,
        &w,
        &ref_sets,
        true,
        Some(&cache),
        &mut ws,
        &mut out,
        &mut bits,
    );
    let before = allocation_count();
    pass_batched(
        &model,
        &w,
        &ref_sets,
        true,
        Some(&cache),
        &mut ws,
        &mut out,
        &mut bits,
    );
    let allocs_per_pass = allocation_count() - before;
    set_kernel_mode(prev);
    if allocation_count() > 0 {
        assert_eq!(
            allocs_per_pass, 0,
            "warm cached scoring pass must not allocate"
        );
        println!("warm cached scoring pass: 0 heap allocations ✓\n");
    }

    let mut t = Table::new(["leg", "pass (s)", "plans/s", "speedup"]);
    for leg in &legs {
        t.row([
            leg.name.to_string(),
            format!("{:.4}", leg.seconds),
            format!("{:.0}", leg.plans_per_s(plans)),
            format!("{:.2}x", legs[0].seconds / leg.seconds.max(1e-12)),
        ]);
    }
    println!("{}", t.render());

    let json = report_json(scale, queries, plans, reps, allocs_per_pass, &legs);
    let path = "BENCH_infer.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Renders the report in the `BenchReport` phase shape: every optimized leg
/// becomes a phase whose `serial_s` is the single-scalar baseline and whose
/// `parallel_s` is the leg itself (the `compare` subcommand ignores the
/// inference-specific extras).
fn report_json(
    scale: Scale,
    queries: usize,
    plans: usize,
    reps: usize,
    allocs_per_pass_warm: u64,
    legs: &[Leg],
) -> String {
    let scale_name = format!("{scale:?}").to_lowercase();
    let baseline = &legs[0];
    let mut phases = String::new();
    for (i, leg) in legs[1..].iter().enumerate() {
        if i > 0 {
            phases.push(',');
        }
        phases.push_str(&format!(
            "{{\"name\":\"{}\",\"serial_s\":{:.6},\"parallel_s\":{:.6},\
             \"speedup\":{:.4},\"plans_per_s\":{:.1}}}",
            leg.name.replace(", ", "_").replace(' ', "_"),
            baseline.seconds,
            leg.seconds,
            baseline.seconds / leg.seconds.max(1e-12),
            leg.plans_per_s(plans),
        ));
    }
    let best = legs
        .last()
        .expect("at least the baseline leg must be present");
    format!(
        concat!(
            "{{\"bench\":\"infer\",\"scale\":\"{}\",",
            "\"threads_serial\":1,\"threads_parallel\":1,",
            "\"phases\":[{}],",
            "\"total\":{{\"serial_s\":{:.6},\"parallel_s\":{:.6},\"speedup\":{:.4}}},",
            "\"queries\":{},\"plans\":{},\"reps\":{},",
            "\"plans_per_s_single_scalar\":{:.1},",
            "\"plans_per_s_best\":{:.1},",
            "\"allocs_per_pass_warm\":{}}}"
        ),
        scale_name,
        phases,
        baseline.seconds,
        best.seconds,
        baseline.seconds / best.seconds.max(1e-12),
        queries,
        plans,
        reps,
        baseline.plans_per_s(plans),
        best.plans_per_s(plans),
        allocs_per_pass_warm,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Deserialize)]
    struct Report {
        bench: String,
        scale: String,
        threads_serial: u32,
        threads_parallel: u32,
        phases: Vec<Phase>,
        total: Totals,
        plans: u64,
        allocs_per_pass_warm: u64,
    }

    #[derive(Debug, Deserialize)]
    struct Phase {
        name: String,
        serial_s: f64,
        parallel_s: f64,
        speedup: f64,
        plans_per_s: f64,
    }

    #[derive(Debug, Deserialize)]
    struct Totals {
        serial_s: f64,
        parallel_s: f64,
        speedup: f64,
    }

    fn leg(name: &'static str, seconds: f64) -> Leg {
        Leg {
            name,
            seconds,
            bits: Vec::new(),
        }
    }

    #[test]
    fn report_json_is_well_formed_and_compare_compatible() {
        let legs = [
            leg("single, scalar", 1.0),
            leg("single, simd", 0.8),
            leg("batched sparse, simd, cached", 0.1),
        ];
        let json = report_json(Scale::Small, 10, 200, 5, 0, &legs);
        let r: Report = serde_json::from_str(&json).expect("valid json");
        assert_eq!(r.bench, "infer");
        assert_eq!(r.scale, "small");
        assert_eq!(r.threads_serial, 1);
        assert_eq!(r.threads_parallel, 1);
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].name, "single_simd");
        assert!((r.phases[0].serial_s - 1.0).abs() < 1e-9);
        assert!((r.phases[0].parallel_s - 0.8).abs() < 1e-9);
        assert!((r.phases[0].speedup - 1.25).abs() < 1e-9);
        assert!((r.phases[0].plans_per_s - 250.0).abs() < 1e-6);
        assert_eq!(r.phases[1].name, "batched_sparse_simd_cached");
        assert!((r.total.serial_s - 1.0).abs() < 1e-9);
        assert!((r.total.parallel_s - 0.1).abs() < 1e-9);
        assert!((r.total.speedup - 10.0).abs() < 1e-9);
        assert_eq!(r.plans, 200);
        assert_eq!(r.allocs_per_pass_warm, 0);
    }

    #[test]
    fn checked_in_infer_report_parses_and_hits_the_speedup_target() {
        let json = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_infer.json"
        ))
        .expect("BENCH_infer.json must be checked in at the repo root");
        let r: Report = serde_json::from_str(&json).expect("checked-in report must parse");
        assert_eq!(r.bench, "infer");
        assert!(r.phases.iter().any(|p| p.name == "batched_sparse_simd"));
        assert_eq!(
            r.allocs_per_pass_warm, 0,
            "warm cached scoring must be allocation-free"
        );
        // The PR's headline: batched+SIMD inference at least 5x the legacy
        // single-plan scalar path.
        let best = r
            .phases
            .iter()
            .find(|p| p.name == "batched_sparse_simd_cached")
            .expect("cached batched leg must be present");
        assert!(
            best.speedup >= 5.0,
            "batched+SIMD+cached speedup {:.2}x is below the 5x target",
            best.speedup
        );
    }
}
