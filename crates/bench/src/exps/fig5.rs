//! Figure 5: CPU cost of a recurring query against machine load
//! (CPU_IDLE and LOAD5) — "a discernible, roughly monotonic influence …
//! that can be coarsely approximated as linear".

use crate::report::Table;
use crate::scale::{scaled_eval_profile, Scale};
use mcsim_catalog::{Project, ProjectId};
use mcsim_exec::{Cluster, ClusterConfig, Executor};
use mcsim_optimizer::{Knobs, NativeOptimizer};
use mcsim_plan::PlanTree;

/// One load step of the sweep: seeds a fresh cluster at the given baseline
/// busy fraction, replays the recurring plan, and averages cost and the
/// observed load metrics. Each step is self-contained (own cluster + own
/// executor from a fixed seed), so steps run independently.
pub fn run_step(step: usize, plan: &PlanTree, project: &Project) -> (f64, f64, f64, f64) {
    let busy = 0.12 + 0.1 * step as f64;
    let cluster = Cluster::new(
        42,
        ClusterConfig {
            base_busy: busy,
            diurnal_amplitude: 0.0,
            ..ClusterConfig::default()
        },
    );
    let mut exec = Executor::new(42, cluster, 0.08);
    exec.cluster.advance(80);
    let mut cost_sum = 0.0;
    let mut idle_sum = 0.0;
    let mut load_sum = 0.0;
    let runs = 12;
    for _ in 0..runs {
        exec.cluster.advance(10);
        let out = exec.execute(plan, &project.catalog);
        cost_sum += out.cpu_cost;
        let env = mcsim_catalog::EnvMetrics::mean(out.stage_envs.iter());
        idle_sum += env.cpu_idle;
        load_sum += env.load5;
    }
    (
        busy,
        idle_sum / runs as f64,
        load_sum / runs as f64,
        cost_sum / runs as f64,
    )
}

/// Sweeps the cluster's baseline busy fraction across the pool and returns
/// per-step `(busy, idle, load5, cost)` tuples in step order.
pub fn sweep(scale: Scale) -> Vec<(f64, f64, f64, f64)> {
    let profile = scaled_eval_profile(1, scale);
    let project = profile.generate(ProjectId(1));
    let optimizer = NativeOptimizer::new(&project.catalog);
    let query = &project.workload_for_day(0)[0];
    let plan = optimizer.optimize(query, &Knobs::default());
    let steps: Vec<usize> = (0..8).collect();
    // Per-step work estimate: 12 replay runs over the plan's stages. At
    // small scale this falls below the pool's min-parallel-work gate and the
    // sweep runs serially, avoiding pool overhead on a ~100ms phase.
    let step_work = plan.len() * 12 * 2_000;
    mcsim_par::ThreadPool::global()
        .parallel_map_gated(&steps, step_work, |&step| run_step(step, &plan, &project))
}

/// Runs the experiment: sweeps the cluster's baseline busy fraction and
/// reports mean cost vs. the observed load metrics.
pub fn run(scale: Scale) {
    println!("Figure 5 — CPU cost of a recurring query vs. machine load\n");
    let mut t = Table::new(["baseline busy", "CPU_IDLE", "LOAD5", "mean CPU cost"]);
    let mut series: Vec<(f64, f64, f64)> = Vec::new();
    for (busy, idle, load5, cost) in sweep(scale) {
        t.row([
            format!("{:.2}", busy),
            format!("{:.2}", idle),
            format!("{:.1}", load5),
            format!("{:.0}", cost),
        ]);
        series.push((idle, load5, cost));
    }
    println!("{}", t.render());

    // Monotonicity summary: correlation of cost with (1 - idle) and load5.
    let corr = |xs: &[f64], ys: &[f64]| {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        cov / (vx * vy).sqrt().max(1e-12)
    };
    let busy_axis: Vec<f64> = series.iter().map(|s| 1.0 - s.0).collect();
    let load_axis: Vec<f64> = series.iter().map(|s| s.1).collect();
    let costs: Vec<f64> = series.iter().map(|s| s.2).collect();
    println!(
        "correlation(cost, 1−CPU_IDLE) = {:.3}; correlation(cost, LOAD5) = {:.3} (paper: strong, ≈linear)",
        corr(&busy_axis, &costs),
        corr(&load_axis, &costs)
    );
}
