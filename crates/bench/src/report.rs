//! Plain-text table rendering for experiment output.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Self {
        self.rows.push(row.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_line = |cells: &[String]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{:<width$}  ", cell, width = w));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_line(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_line(row));
            out.push('\n');
        }
        out
    }
}

/// Wraps a [`mcsim_obs::MetricsSnapshot`] in a JSON document tagged with the
/// experiment id and scale, ready to pipe into downstream tooling:
///
/// ```json
/// {"experiment":"fig6","scale":"small","metrics":{"counters":{...},...}}
/// ```
pub fn metrics_json(
    experiment: &str,
    scale: &str,
    snapshot: &mcsim_obs::MetricsSnapshot,
) -> String {
    format!(
        "{{\"experiment\":\"{experiment}\",\"scale\":\"{scale}\",\"metrics\":{}}}",
        snapshot.to_json()
    )
}

/// Formats a float compactly: integers under 1k exactly, thousands with
/// separators, tiny values with precision.
pub fn fmt_row(v: f64) -> String {
    if !v.is_finite() {
        return "-".to_string();
    }
    if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 10.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.3}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    fn fmt_row_scales() {
        assert_eq!(fmt_row(1234567.0), "1234567");
        assert_eq!(fmt_row(12.34), "12.3");
        assert_eq!(fmt_row(0.1234), "0.123");
        assert_eq!(fmt_row(f64::NAN), "-");
    }
}
