//! Experiment scaling.
//!
//! The paper's evaluation runs on production volumes (10,000 training
//! queries per project, a 10,000-machine cluster). The harness reproduces
//! every experiment at a configurable scale: `Small` finishes a full run in
//! minutes on a laptop; `Full` approaches the paper's volumes.

use loam_core::pipeline::PipelineConfig;
use loam_core::TrainConfig;
use mcsim_catalog::ProjectProfile;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop scale: ~600 training queries per project.
    Small,
    /// Intermediate scale: ~2,500 training queries.
    Medium,
    /// Paper scale: up to 10,000 training queries.
    Full,
}

impl Scale {
    /// Parses `small`/`medium`/`full`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Fraction of the paper's training volume.
    pub fn fraction(self) -> f64 {
        match self {
            Scale::Small => 0.09,
            Scale::Medium => 0.25,
            Scale::Full => 1.0,
        }
    }
}

/// The evaluation-project profile scaled for the harness: schema size and
/// workload volume shrink together so training density per table stays
/// realistic.
pub fn scaled_eval_profile(n: usize, scale: Scale) -> ProjectProfile {
    let mut prof = ProjectProfile::evaluation_project(n).expect("evaluation project 1..=5");
    let f = scale.fraction();
    if f < 1.0 {
        // The schema shrink is FIXED for every sub-full scale so that the
        // project *instance* (tables, templates, improvement space) is
        // identical between small and medium — only the data volume (query
        // rate, training cap) scales. Otherwise changing the scale would
        // silently change the experiment subject.
        let shrink = 0.245;
        prof.n_tables = ((prof.n_tables as f64 * shrink) as usize).max(15);
        prof.n_temp_tables = (prof.n_temp_tables / 2).max(2);
        prof.n_columns = ((prof.n_columns as f64 * shrink) as usize).max(100);
        prof.n_templates = ((prof.n_templates as f64 * shrink) as usize).max(12);
        prof.n_query_day0 = (prof.n_query_day0 * f).max(8.0);
    }
    prof
}

/// Pipeline configuration matched to a scale.
pub fn scaled_pipeline_config(scale: Scale) -> PipelineConfig {
    let f = scale.fraction();
    PipelineConfig {
        train_days: 25,
        test_days: 5,
        max_train: ((10_000.0 * f) as usize).max(300),
        max_test: ((200.0 * f.max(0.3)) as usize).max(40),
        eval_rounds: match scale {
            Scale::Small => 4,
            Scale::Medium => 4,
            Scale::Full => 5,
        },
        da_queries: match scale {
            Scale::Small => 30,
            Scale::Medium => 60,
            Scale::Full => 120,
        },
        train_cfg: TrainConfig {
            epochs: match scale {
                Scale::Small => 24,
                Scale::Medium => 20,
                Scale::Full => 15,
            },
            ..TrainConfig::default()
        },
        ..PipelineConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn small_scale_shrinks_volumes() {
        let small = scaled_eval_profile(1, Scale::Small);
        let full = scaled_eval_profile(1, Scale::Full);
        assert!(small.n_query_day0 < full.n_query_day0);
        assert!(small.n_tables < full.n_tables);
        // Improvement-space knobs are preserved.
        assert_eq!(small.misestimation, full.misestimation);
    }

    #[test]
    fn configs_scale_consistently() {
        let s = scaled_pipeline_config(Scale::Small);
        let f = scaled_pipeline_config(Scale::Full);
        assert!(s.max_train < f.max_train);
        assert_eq!(s.train_days, 25);
        assert_eq!(f.test_days, 5);
    }
}
