//! # loam-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! LOAM paper, plus shared helpers (scaled project profiles, model zoo,
//! reporting utilities) and criterion micro-benchmarks.

pub mod canon;
pub mod exps;
pub mod report;
pub mod scale;

pub use report::{fmt_row, metrics_json, Table};
pub use scale::{scaled_eval_profile, scaled_pipeline_config, Scale};
