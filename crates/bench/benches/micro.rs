//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! plan featurization (hash encoding included), TCN inference, native
//! optimization with join-order DP, simulated execution, candidate
//! exploration, GBDT prediction, the parallel compute layer (serial vs.
//! pool matmul, dense vs. sparse inputs, cached vs. uncached featurization),
//! and the training hot path (fused vs. unfused linear+ReLU, workspace-reuse
//! vs. allocating MLP train step).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use loam_core::explorer::PlanExplorer;
use loam_core::featurize::{EnvSource, FeatureCache, PlanFeaturizer};
use loam_core::selector::ranker_features;
use loam_core::AdaptiveCostPredictor;
use mcsim_catalog::{EnvMetrics, Project, ProjectId, ProjectProfile};
use mcsim_exec::{Cluster, ClusterConfig, Executor};
use mcsim_optimizer::{Knobs, NativeOptimizer};
use tinynn::Mat;

fn bench_project() -> Project {
    let mut prof = ProjectProfile::evaluation_project(1).expect("project 1");
    prof.n_tables = 40;
    prof.n_temp_tables = 4;
    prof.n_columns = 300;
    prof.n_templates = 20;
    prof.generate(ProjectId(1))
}

fn benches(c: &mut Criterion) {
    let project = bench_project();
    let optimizer = NativeOptimizer::new(&project.catalog);
    let queries = project.workload_for_day(0);
    let query = queries
        .iter()
        .find(|q| q.table_count() >= 3)
        .unwrap_or(&queries[0]);
    let plan = optimizer.optimize(query, &Knobs::default());
    let env = EnvMetrics::new(0.5, 0.04, 8.0, 0.55);

    c.bench_function("optimize_default_plan", |b| {
        b.iter(|| optimizer.optimize(black_box(query), &Knobs::default()))
    });

    let explorer = PlanExplorer::default();
    c.bench_function("explore_candidate_set", |b| {
        b.iter(|| explorer.explore(&optimizer, black_box(query)))
    });

    let featurizer = PlanFeaturizer::default();
    c.bench_function("featurize_plan", |b| {
        b.iter(|| featurizer.featurize(black_box(&plan), EnvSource::Uniform(env)))
    });

    let predictor = AdaptiveCostPredictor::new(1, true);
    c.bench_function("tcn_predict_cost", |b| {
        b.iter(|| predictor.predict(black_box(&plan), EnvSource::Uniform(env)))
    });

    let mut executor = Executor::new(1, Cluster::new(1, ClusterConfig::default()), 0.2);
    executor.cluster.advance(50);
    c.bench_function("simulated_execution", |b| {
        b.iter(|| executor.execute(black_box(&plan), &project.catalog))
    });

    c.bench_function("intrinsic_cost", |b| {
        b.iter(|| executor.intrinsic_cost(black_box(&plan), &project.catalog))
    });

    c.bench_function("ranker_featurize", |b| {
        b.iter(|| ranker_features(black_box(&plan), &project.catalog, 1234.5))
    });

    // GBDT training and prediction on a small synthetic regression task.
    let x: Vec<Vec<f64>> = (0..300)
        .map(|i| vec![(i % 17) as f64, (i % 5) as f64, i as f64 / 300.0])
        .collect();
    let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0 + r[1] - r[2]).collect();
    c.bench_function("gbdt_fit_300x3", |b| {
        b.iter(|| {
            tinygbdt::Gbdt::fit(
                black_box(&x),
                black_box(&y),
                tinygbdt::GbdtConfig {
                    n_trees: 20,
                    ..tinygbdt::GbdtConfig::default()
                },
                7,
            )
        })
    });
    let model = tinygbdt::Gbdt::fit(&x, &y, tinygbdt::GbdtConfig::default(), 7);
    c.bench_function("gbdt_predict", |b| {
        b.iter(|| model.predict(black_box(&x[7])))
    });

    // Serial vs. pool matmul: same blocked kernel, dispatched on one thread
    // or row-partitioned across the pool (work gate forced open so even the
    // 64×64 case takes the parallel path).
    for size in [64usize, 256, 1024] {
        let a = Mat::from_fn(size, size, |i, j| {
            ((i * 31 + j * 7) % 13) as f32 / 13.0 - 0.4
        });
        let m = Mat::from_fn(size, size, |i, j| {
            ((i * 17 + j * 3) % 11) as f32 / 11.0 - 0.5
        });
        c.bench_function(&format!("matmul_serial_{size}"), |bch| {
            let prev = mcsim_par::set_threads(1);
            bch.iter(|| black_box(&a).matmul(black_box(&m)));
            mcsim_par::set_threads(prev);
        });
        c.bench_function(&format!("matmul_parallel_{size}"), |bch| {
            let prev_t = mcsim_par::set_threads(mcsim_par::default_threads());
            let prev_w = mcsim_par::set_min_parallel_work(1);
            bch.iter(|| black_box(&a).matmul(black_box(&m)));
            mcsim_par::set_threads(prev_t);
            mcsim_par::set_min_parallel_work(prev_w);
        });
    }

    // Dense-vs-sparse regression guard: the branchless kernels must cost the
    // same whether the operand is dense or mostly zeros (the old `a == 0.0`
    // zero-skip made sparse inputs look artificially fast and dense inputs
    // pay a branch per element).
    let a256 = Mat::from_fn(256, 256, |i, j| ((i * 31 + j * 7) % 13) as f32 / 13.0 - 0.4);
    let dense = Mat::from_fn(256, 256, |i, j| ((i * 5 + j) % 9) as f32 / 9.0 + 0.1);
    let sparse = Mat::from_fn(256, 256, |i, j| if (i + j) % 8 == 0 { 0.7 } else { 0.0 });
    c.bench_function("matmul_dense_256", |b| {
        b.iter(|| black_box(&a256).matmul(black_box(&dense)))
    });
    c.bench_function("matmul_sparse_256", |b| {
        b.iter(|| black_box(&a256).matmul(black_box(&sparse)))
    });

    // Cached vs. uncached featurization of the same plan.
    c.bench_function("featurize_uncached", |b| {
        b.iter(|| featurizer.featurize(black_box(&plan), EnvSource::Uniform(env)))
    });
    let cache = FeatureCache::new();
    c.bench_function("featurize_cached", |b| {
        b.iter(|| cache.featurize(&featurizer, black_box(&plan), EnvSource::Uniform(env)))
    });

    // Fused vs. unfused linear+ReLU forward: one fused output pass
    // (matmul+bias+ReLU) against the three-pass sequence over the same
    // reused buffer, so the difference is purely the fusion.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    let lin = tinynn::Linear::new(128, 128, &mut rng);
    let lx = Mat::from_fn(64, 128, |i, j| ((i * 13 + j * 5) % 23) as f32 / 23.0 - 0.5);
    let mut ly = Mat::default();
    c.bench_function("linear_relu_fused_64x128", |b| {
        b.iter(|| lin.forward_relu_into(black_box(&lx), &mut ly))
    });
    c.bench_function("linear_relu_unfused_64x128", |b| {
        b.iter(|| {
            black_box(&lx).matmul_nt_into(&lin.w.value, &mut ly);
            ly.add_row_broadcast(&lin.b.value.data);
            for v in &mut ly.data {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        })
    });

    // Workspace-reuse vs. allocating MLP train step (forward + MSE +
    // backward): the ws leg keeps its activation buffers, gradient set, and
    // scratch arena alive across iterations and allocates nothing once warm.
    let mut mlp = tinynn::Mlp::new(&[32, 16, 1], &mut rng);
    let mx = Mat::from_fn(16, 32, |i, j| ((i * 7 + j * 3) % 19) as f32 / 19.0 - 0.5);
    let target = Mat::from_fn(16, 1, |i, _| (i % 4) as f32 / 4.0);
    c.bench_function("mlp_step_allocating", |b| {
        b.iter(|| {
            let (y, mlp_cache) = mlp.forward(black_box(&mx));
            let (loss, grad) = tinynn::mse(&y, &target);
            mlp.zero_grad();
            mlp.backward(&mlp_cache, &grad);
            loss
        })
    });
    let mut ws = tinynn::MlpWs::default();
    let mut grads = tinynn::GradSet::from_shapes(&mlp.grad_shapes());
    let mut grad = Mat::default();
    let mut scratch = tinynn::Workspace::new();
    c.bench_function("mlp_step_workspace", |b| {
        b.iter(|| {
            mlp.forward_ws(black_box(&mx), &mut ws);
            let loss = tinynn::mse_into(ws.out(), &target, &mut grad);
            grads.zero();
            mlp.backward_ws(&mx, &ws, &grad, &mut grads.mats, None, &mut scratch);
            loss
        })
    });

    // Single-plan vs. batched forest scoring of the same candidate set: the
    // per-plan loop pays one full forward (and its featurization) per plan,
    // the batched leg stacks every tree into one forest forward through a
    // warm workspace + feature cache — the inference hot path's win.
    let candidates = explorer.explore(&optimizer, query);
    let cand_refs: Vec<&mcsim_plan::PlanTree> = candidates.plans();
    let mut infer_ws = loam_core::predictor::InferWs::new();
    let feat_cache = FeatureCache::new();
    let mut costs = Vec::new();
    c.bench_function("score_candidates_single", |b| {
        b.iter(|| {
            cand_refs
                .iter()
                .map(|p| predictor.predict(black_box(p), EnvSource::Uniform(env)))
                .sum::<f64>()
        })
    });
    c.bench_function("score_candidates_batched", |b| {
        b.iter(|| {
            predictor.predict_batch_into(
                black_box(&cand_refs),
                EnvSource::Uniform(env),
                Some(&feat_cache),
                &mut infer_ws,
                &mut costs,
            );
            costs.iter().sum::<f64>()
        })
    });

    // Scalar vs. SIMD kernel tier on the same blocked matmul (the tiers are
    // bit-identical; this measures the four-lane unroll's throughput).
    let ka = Mat::from_fn(128, 199, |i, j| {
        ((i * 29 + j * 13) % 17) as f32 / 17.0 - 0.4
    });
    let kb = Mat::from_fn(199, 128, |i, j| {
        ((i * 11 + j * 19) % 23) as f32 / 23.0 - 0.5
    });
    for (label, mode) in [
        ("matmul_scalar_kernel", tinynn::KernelMode::Scalar),
        ("matmul_simd_kernel", tinynn::KernelMode::Simd),
    ] {
        c.bench_function(label, |b| {
            let prev = tinynn::set_kernel_mode(mode);
            b.iter(|| black_box(&ka).matmul(black_box(&kb)));
            tinynn::set_kernel_mode(prev);
        });
    }

    // Dense vs. CSR conv1 in the batched inference forward: same plans,
    // same warm workspace, toggling only `InferWs::sparse` (the CSR leg
    // indexes the ~90%-zero stacked feature rows and streams the blocked
    // sparse kernel over the stored nonzeros — bit-identical outputs).
    let mut dense_ws = loam_core::predictor::InferWs::new();
    dense_ws.sparse = false;
    c.bench_function("batched_forward_dense_conv1", |b| {
        b.iter(|| {
            predictor.predict_batch_into(
                black_box(&cand_refs),
                EnvSource::Uniform(env),
                Some(&feat_cache),
                &mut dense_ws,
                &mut costs,
            );
            costs.iter().sum::<f64>()
        })
    });
    let mut sparse_ws = loam_core::predictor::InferWs::new();
    sparse_ws.sparse = true;
    c.bench_function("batched_forward_csr_conv1", |b| {
        b.iter(|| {
            predictor.predict_batch_into(
                black_box(&cand_refs),
                EnvSource::Uniform(env),
                Some(&feat_cache),
                &mut sparse_ws,
                &mut costs,
            );
            costs.iter().sum::<f64>()
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(micro);
