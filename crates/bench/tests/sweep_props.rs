//! Property tests for the sweep harness's expansion layer: determinism of
//! the job grid, Latin-hypercube bounds and distinctness, and pairwise
//! distinct job seeds.
//!
//! These are the structural guarantees the `BENCH_sweep.json` contract
//! rests on — if expansion is a pure function of the spec and every job's
//! seed is unique, a sweep report is a complete, collision-free
//! reproduction recipe.

use loam_bench::canon;
use loam_bench::exps::sweep::{expand, SweepSpec};
use proptest::prelude::*;
use std::collections::HashSet;

/// Builds a grid spec over subsets of fixed value pools (masks are 1..8 so
/// every axis keeps at least one value).
fn grid_spec(seed: u64, m_mask: u8, t_mask: u8, f_mask: u8, a_mask: u8) -> String {
    let pick = |mask: u8, pool: &[&str]| -> String {
        pool.iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, v)| *v)
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "mode = grid\nseed = {seed}\nrequests = 16\n\
         axis.machines = {}\naxis.tenants = {}\naxis.fault_scale = {}\n\
         axis.arrival = {}\naxis.threads = 1,2\n",
        pick(m_mask, &["8", "16", "32"]),
        pick(t_mask, &["2", "4", "8"]),
        pick(f_mask, &["0.0", "0.5", "1.0"]),
        pick(a_mask, &["poisson", "bursty", "diurnal"]),
    )
}

fn lhs_spec(seed: u64, samples: usize, slack: u64) -> String {
    format!(
        "mode = lhs\nsamples = {samples}\nseed = {seed}\nrequests = 16\n\
         axis.machines = 8..{}\naxis.tenants = 2..16\n\
         axis.fault_scale = 0.0..2.0\n\
         axis.arrival = poisson,bursty,diurnal\naxis.threads = 1,2,4\n",
        8 + samples as u64 - 1 + slack
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same spec text ⇒ byte-identical job grid: equal jobs, equal seeds,
    /// and equal canonical hashes of the echo and of every job config.
    #[test]
    fn same_spec_and_seed_expand_identically(
        seed in 0u64..1_000_000,
        m_mask in 1u8..8,
        t_mask in 1u8..8,
        f_mask in 1u8..8,
        a_mask in 1u8..8,
    ) {
        let text = grid_spec(seed, m_mask, t_mask, f_mask, a_mask);
        let a = SweepSpec::parse(&text).expect("generated spec parses");
        let b = SweepSpec::parse(&text).expect("generated spec parses");
        prop_assert_eq!(&a, &b);
        let ja = expand(&a).expect("expands");
        let jb = expand(&b).expect("expands");
        prop_assert_eq!(&ja, &jb);
        prop_assert_eq!(canon::hash_of(&a.echo()), canon::hash_of(&b.echo()));
        for (x, y) in ja.iter().zip(&jb) {
            prop_assert_eq!(canon::hash_of(&x.config), canon::hash_of(&y.config));
        }
        // The grid covers the full cross-product of the workload axes.
        let expect = (m_mask.count_ones()
            * t_mask.count_ones()
            * f_mask.count_ones()
            * a_mask.count_ones()) as usize;
        prop_assert_eq!(ja.len(), expect);
    }

    /// Job seeds are pairwise distinct, and distinct configs get distinct
    /// canonical hashes (no silent cell collisions in `compare`).
    #[test]
    fn grid_job_seeds_and_config_hashes_are_pairwise_distinct(
        seed in 0u64..1_000_000,
        m_mask in 1u8..8,
        t_mask in 1u8..8,
        f_mask in 1u8..8,
    ) {
        let text = grid_spec(seed, m_mask, t_mask, f_mask, 0b111);
        let spec = SweepSpec::parse(&text).expect("parses");
        let jobs = expand(&spec).expect("expands");
        let seeds: HashSet<u64> = jobs.iter().map(|j| j.seed).collect();
        prop_assert_eq!(seeds.len(), jobs.len());
        let hashes: HashSet<String> =
            jobs.iter().map(|j| canon::hash_of(&j.config)).collect();
        prop_assert_eq!(hashes.len(), jobs.len());
    }

    /// LHS sampling is deterministic, stays inside every axis's bounds,
    /// and never produces duplicate jobs (the separating axis places each
    /// sample at a distinct value).
    #[test]
    fn lhs_cells_are_in_bounds_distinct_and_deterministic(
        seed in 0u64..1_000_000,
        samples in 2usize..12,
        slack in 0u64..40,
    ) {
        let text = lhs_spec(seed, samples, slack);
        let spec = SweepSpec::parse(&text).expect("parses");
        let jobs = expand(&spec).expect("expands");
        prop_assert_eq!(jobs.len(), samples);
        prop_assert_eq!(&jobs, &expand(&spec).expect("expands again"));
        let hi = 8 + samples as u64 - 1 + slack;
        for j in &jobs {
            prop_assert!((8..=hi).contains(&j.config.machines));
            prop_assert!((2..=16).contains(&j.config.tenants));
            prop_assert!(j.config.fault_scale >= 0.0 && j.config.fault_scale < 2.0);
            prop_assert!(["poisson", "bursty", "diurnal"]
                .contains(&j.config.arrival.as_str()));
        }
        let configs: HashSet<String> =
            jobs.iter().map(|j| canon::hash_of(&j.config)).collect();
        prop_assert_eq!(configs.len(), jobs.len());
        let seeds: HashSet<u64> = jobs.iter().map(|j| j.seed).collect();
        prop_assert_eq!(seeds.len(), jobs.len());
    }

    /// The master seed matters: different sweep seeds give different job
    /// seed streams (first job already differs).
    #[test]
    fn different_sweep_seeds_give_different_seed_streams(seed in 0u64..1_000_000) {
        let a = SweepSpec::parse(&grid_spec(seed, 1, 1, 1, 1)).expect("parses");
        let b = SweepSpec::parse(&grid_spec(seed + 1, 1, 1, 1, 1)).expect("parses");
        let ja = expand(&a).expect("expands");
        let jb = expand(&b).expect("expands");
        prop_assert_ne!(ja[0].seed, jb[0].seed);
        prop_assert_ne!(canon::hash_of(&a.echo()), canon::hash_of(&b.echo()));
    }
}
