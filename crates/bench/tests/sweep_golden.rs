//! Golden-file regression test for the canonical-JSON sweep report format.
//!
//! The checked-in fixture (`tests/golden/sweep_report.json`) is a real
//! mini sweep (2 arrivals × 2 fault levels × 2 thread replicas, 8
//! requests per cell) written by `experiments sweep --spec`. The test
//! pins the serialization contract: parsing the fixture and re-rendering
//! it canonically must reproduce the file **byte for byte**. Any change
//! to key ordering, float formatting, field names, or the hash scheme
//! shows up here as a diff against a reviewable artifact.

use loam_bench::canon;
use loam_bench::exps::sweep::{canonical_report, SweepReport};

const GOLDEN: &str = include_str!("golden/sweep_report.json");

#[test]
fn golden_report_roundtrips_byte_identically() {
    let report: SweepReport = serde_json::from_str(GOLDEN).expect("golden fixture parses");
    assert_eq!(
        canonical_report(&report),
        GOLDEN,
        "serialize(parse(golden)) must be the identity on bytes"
    );
    // And the round-trip is a fixpoint, not a one-off coincidence.
    let again: SweepReport =
        serde_json::from_str(&canonical_report(&report)).expect("canonical output reparses");
    assert_eq!(canonical_report(&again), GOLDEN);
}

#[test]
fn golden_hashes_are_self_consistent() {
    let report: SweepReport = serde_json::from_str(GOLDEN).expect("golden fixture parses");
    assert_eq!(report.bench, "sweep");
    assert_eq!(
        report.spec_hash,
        canon::hash_of(&report.spec),
        "spec_hash must be the canonical hash of the embedded spec echo"
    );
    assert_eq!(report.runbook.cells, report.cells.len() as u64);
    assert_eq!(report.runbook.seeds.len(), report.cells.len());
    for cell in &report.cells {
        assert_eq!(cell.config_hash, canon::hash_of(&cell.config));
        assert_eq!(cell.metrics_hash, canon::hash_of(&cell.metrics));
        assert_eq!(cell.metrics.decision_hash.len(), 16);
    }
    // The runbook id commits to the spec and the exact seed sequence.
    let expect = canon::hex16(canon::fnv1a64(
        canon::canonical_of(&(report.spec_hash.clone(), report.runbook.seeds.clone())).as_bytes(),
    ));
    assert_eq!(report.runbook.id, expect);
}

#[test]
fn golden_fixture_is_canonical_on_disk() {
    // Defense in depth: the raw file itself must already be in canonical
    // form (sorted keys, no whitespace, single trailing newline) — i.e.
    // nobody hand-edited or pretty-printed it.
    assert!(GOLDEN.ends_with('\n'));
    let body = &GOLDEN[..GOLDEN.len() - 1];
    assert!(!body.contains('\n'), "canonical JSON is a single line");
    let value: serde::Value = serde_json::from_str(body).expect("fixture is valid JSON");
    assert_eq!(canon::canonical(&value), body);
}
