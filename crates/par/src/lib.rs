//! `mcsim-par` — the workspace's parallel compute substrate.
//!
//! A dependency-free scoped thread pool built on [`std::thread::scope`],
//! offering three primitives:
//!
//! * [`ThreadPool::parallel_for`] — index-range fan-out in fixed chunks;
//! * [`ThreadPool::parallel_map`] — order-preserving map over a slice;
//! * [`ThreadPool::reduce`] — chunked reduction with **fixed chunk
//!   boundaries**, so the folding order (and therefore every floating-point
//!   rounding step) is identical at any thread count.
//!
//! # Determinism
//!
//! Every primitive partitions work into chunks whose boundaries depend only
//! on the input size (never on the thread count), processes each chunk with
//! a serial loop, and combines chunk results in chunk order. A computation
//! routed through this pool therefore produces **bit-identical** results at
//! 1, 2, or N threads — the property the workspace's training-determinism
//! tests pin down.
//!
//! # Sizing
//!
//! The pool defaults to [`std::thread::available_parallelism`]. Override
//! with the `MCSIM_PAR_THREADS` environment variable (read once, at first
//! use) or at runtime with [`set_threads`] (e.g. the experiment harness's
//! serial baseline sets 1). [`ThreadPool::new`] pins an explicit count,
//! ignoring the global setting.
//!
//! Because workers are scoped threads spawned per invocation (no `'static`
//! bound, no unsafe), each fan-out costs a few tens of microseconds; callers
//! gate on [`min_parallel_work`] so only operations with enough work fan
//! out. Tests lower the gate with [`set_min_parallel_work`] to force the
//! parallel path on tiny inputs. Fan-outs issued *from* a worker thread (or
//! any thread marked via [`enter_worker`]) run inline — nested parallelism
//! never spawns.
//!
//! # Observability
//!
//! When an [`mcsim_obs`] recorder is installed, every fan-out records the
//! invocation count (`par.invocations`), chunk count (`par.chunks`), chunks
//! executed by spawned workers rather than the caller (`par.chunks_stolen`),
//! the worker count (`par.threads` gauge), and a per-worker busy-time
//! histogram (`par.worker_busy_s`).

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ------------------------------------------------------------- global knobs

/// Current global thread-count override; 0 means "use the default".
static CURRENT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Minimum amount of work (caller-defined units, typically FLOPs or
/// elements) below which size-gated callers stay serial.
static MIN_PARALLEL_WORK: AtomicUsize = AtomicUsize::new(DEFAULT_MIN_PARALLEL_WORK);

/// Default work gate: ~2M scalar operations, roughly where a fan-out's
/// thread-spawn cost is safely amortized.
pub const DEFAULT_MIN_PARALLEL_WORK: usize = 1 << 21;

/// The baseline thread count: `MCSIM_PAR_THREADS` if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`] (1 if unknown).
/// Resolved once per process.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("MCSIM_PAR_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The effective global thread count: the latest [`set_threads`] override,
/// or [`default_threads`] if none was set.
pub fn threads() -> usize {
    match CURRENT_THREADS.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Overrides the global thread count at runtime (minimum 1). Pass the value
/// of [`default_threads`] to restore the baseline. Returns the previous
/// effective count.
pub fn set_threads(n: usize) -> usize {
    let prev = threads();
    CURRENT_THREADS.store(n.max(1), Ordering::Relaxed);
    prev
}

/// The current work gate used by size-gated callers (see
/// [`set_min_parallel_work`]).
pub fn min_parallel_work() -> usize {
    MIN_PARALLEL_WORK.load(Ordering::Relaxed)
}

thread_local! {
    /// True while this thread is executing work on behalf of a fan-out (a
    /// pool worker, or any thread marked via [`enter_worker`]).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True on a thread currently executing fan-out work. Pool primitives run
/// inline on such threads instead of spawning nested workers.
pub fn on_worker_thread() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Marks the current thread as a compute worker until the guard drops:
/// every pool primitive called from it runs inline instead of spawning.
/// The pool marks its own workers automatically; external engines that
/// spawn long-lived compute threads (e.g. a training loop's microbatch
/// workers) should mark them too, so inner kernels never oversubscribe the
/// machine with nested thread spawns. Results are unaffected — the pool's
/// serial and parallel paths are bit-identical by construction.
pub fn enter_worker() -> WorkerGuard {
    let prev = IN_WORKER.with(|f| f.replace(true));
    WorkerGuard { prev }
}

/// Restores the thread's previous worker marking on drop (see
/// [`enter_worker`]).
#[must_use = "the worker marking lasts until the guard drops"]
pub struct WorkerGuard {
    prev: bool,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|f| f.set(self.prev));
    }
}

/// Runs `f` with the global thread count pinned to `n`, restoring the
/// previous setting afterwards (also on panic). The sweep harness uses this
/// to execute each thread-count group of a scenario matrix at its declared
/// pool size without leaking the override into the rest of the process.
///
/// The override is process-global, exactly like [`set_threads`]: concurrent
/// callers racing on it would observe each other's settings. Results are
/// unaffected either way — the pool is bit-identical at any thread count —
/// so the scope guard is about keeping *scheduling* intent local.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_threads(self.0);
        }
    }
    let _restore = Restore(set_threads(n));
    f()
}

/// Sets the work gate. Tests set 1 to force parallel execution on tiny
/// inputs; benchmarks may raise it to keep small kernels serial. Returns the
/// previous gate.
pub fn set_min_parallel_work(work: usize) -> usize {
    MIN_PARALLEL_WORK.swap(work.max(1), Ordering::Relaxed)
}

// ------------------------------------------------------------------- pool

/// A handle to the scoped thread pool.
///
/// The handle is `Copy` and holds no OS resources: workers are scoped
/// threads spawned per invocation and joined before the call returns, so a
/// `ThreadPool` can be freely stored, cloned, and shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    fixed: Option<usize>,
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::global()
    }
}

impl ThreadPool {
    /// A pool pinned to exactly `n` threads (minimum 1), ignoring the
    /// global setting.
    pub fn new(n: usize) -> ThreadPool {
        ThreadPool {
            fixed: Some(n.max(1)),
        }
    }

    /// The pool that tracks the global thread setting ([`threads`]) at each
    /// invocation — the handle every library hot path uses.
    pub fn global() -> ThreadPool {
        ThreadPool { fixed: None }
    }

    /// This pool's current thread count.
    pub fn threads(&self) -> usize {
        self.fixed.unwrap_or_else(threads)
    }

    /// Runs `body` over `0..n` split into contiguous chunks of at least
    /// `min_chunk` indices. Chunk boundaries depend only on `n` and
    /// `min_chunk`, so per-chunk work is identical at any thread count.
    pub fn parallel_for<F>(&self, n: usize, min_chunk: usize, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if n == 0 {
            return;
        }
        let chunk = chunk_size(n, min_chunk);
        let jobs: Vec<Range<usize>> = (0..n)
            .step_by(chunk)
            .map(|lo| lo..(lo + chunk).min(n))
            .collect();
        run_jobs(self.threads(), jobs, body);
    }

    /// Maps `f` over `items`, preserving order. `f` runs once per item; the
    /// output vector is exactly `items.iter().map(f).collect()` regardless
    /// of the thread count.
    pub fn parallel_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let n = items.len();
        let threads = self.threads();
        if n == 0 {
            return Vec::new();
        }
        if threads <= 1 || n == 1 {
            return items.iter().map(f).collect();
        }
        // Small chunks load-balance uneven items; boundaries only affect
        // scheduling, never results.
        let chunk = chunk_size(n, 1).min(n.div_ceil(threads * 4).max(1));
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        {
            let jobs: Vec<(&[T], &mut [Option<U>])> =
                items.chunks(chunk).zip(out.chunks_mut(chunk)).collect();
            run_jobs(threads, jobs, |(inp, outp)| {
                for (slot, item) in outp.iter_mut().zip(inp) {
                    *slot = Some(f(item));
                }
            });
        }
        out.into_iter()
            .map(|slot| slot.expect("every chunk was processed"))
            .collect()
    }

    /// [`ThreadPool::parallel_map`] behind the global work gate: stays on
    /// the calling thread when `items.len() × item_work` (caller-estimated
    /// units, typically FLOPs or elements) is below [`min_parallel_work`],
    /// so small fan-outs don't pay the thread-spawn cost. Results are
    /// identical either way — only the scheduling changes.
    pub fn parallel_map_gated<T, U, F>(&self, items: &[T], item_work: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        if items.len().saturating_mul(item_work) < min_parallel_work() {
            return items.iter().map(f).collect();
        }
        self.parallel_map(items, f)
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements (the
    /// last may be shorter) and runs `f(chunk_index, chunk)` on each. The
    /// chunks are disjoint `&mut` views, so workers write results in place
    /// without synchronization — the engine behind the parallel matrix
    /// kernels.
    pub fn parallel_for_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        let chunk_len = chunk_len.max(1);
        let jobs: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
        run_jobs(self.threads(), jobs, |(i, chunk)| f(i, chunk));
    }

    /// Runs `f` once per job, draining `jobs` across the pool. The
    /// lowest-level primitive: callers that need several mutable slices
    /// partitioned at matching boundaries (e.g. an optimizer updating
    /// value/grad/moment arrays in lock-step) zip the chunks into job
    /// tuples and hand them here.
    pub fn for_each<J, F>(&self, jobs: Vec<J>, f: F)
    where
        J: Send,
        F: Fn(J) + Sync,
    {
        run_jobs(self.threads(), jobs, f);
    }

    /// Deterministic chunked reduction: maps each fixed-boundary chunk of
    /// `chunk` items to a partial with `map`, then folds the partials **in
    /// chunk order** with `fold`. Returns `None` on empty input. Because
    /// both the chunk boundaries and the fold order are independent of the
    /// thread count, the result is bit-identical at any parallelism.
    pub fn reduce<T, A, M, F>(&self, items: &[T], chunk: usize, map: M, fold: F) -> Option<A>
    where
        T: Sync,
        A: Send,
        M: Fn(&[T]) -> A + Sync,
        F: Fn(A, A) -> A,
    {
        if items.is_empty() {
            return None;
        }
        let chunk = chunk.max(1);
        let chunks: Vec<&[T]> = items.chunks(chunk).collect();
        let partials = self.parallel_map(&chunks, |c| map(c));
        partials.into_iter().reduce(fold)
    }
}

/// Chunk size for `n` items with a floor of `min_chunk`.
fn chunk_size(n: usize, min_chunk: usize) -> usize {
    min_chunk.max(1).min(n.max(1))
}

/// The fan-out engine: drains `jobs` from a shared queue across
/// `threads - 1` spawned scoped workers plus the calling thread. Chunk
/// *assignment* is dynamic (work stealing from the queue); chunk *content*
/// is fixed by the caller, which is what preserves determinism.
fn run_jobs<J, F>(threads: usize, jobs: Vec<J>, f: F)
where
    J: Send,
    F: Fn(J) + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return;
    }
    // Nested fan-outs run inline: a kernel called from a worker thread (or
    // any thread marked via `enter_worker`) already has its share of the
    // machine, so spawning more threads only oversubscribes and allocates.
    if threads <= 1 || n == 1 || on_worker_thread() {
        for job in jobs {
            f(job);
        }
        return;
    }
    let instrumented = mcsim_obs::enabled();
    if instrumented {
        mcsim_obs::counter("par.invocations", 1);
        mcsim_obs::counter("par.chunks", n as u64);
        mcsim_obs::gauge("par.threads", threads.min(n) as f64);
    }
    let queue = Mutex::new(jobs.into_iter());
    let drain = |is_caller: bool| {
        let started = Instant::now();
        let mut ran: u64 = 0;
        loop {
            let job = {
                let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                q.next()
            };
            match job {
                Some(job) => {
                    f(job);
                    ran += 1;
                }
                None => break,
            }
        }
        if instrumented && ran > 0 {
            mcsim_obs::observe("par.worker_busy_s", started.elapsed().as_secs_f64());
            if !is_caller {
                mcsim_obs::counter("par.chunks_stolen", ran);
            }
        }
    };
    std::thread::scope(|s| {
        for _ in 1..threads.min(n) {
            s.spawn(|| {
                let _worker = enter_worker();
                drain(false);
            });
        }
        let _worker = enter_worker();
        drain(true);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// Tests in this binary share the global thread setting; serialize the
    /// ones that mutate it.
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parallel_map_preserves_order_and_length() {
        let items: Vec<u64> = (0..1000).collect();
        for t in [1, 2, 8] {
            let pool = ThreadPool::new(t);
            let out = pool.parallel_map(&items, |&x| x * x);
            assert_eq!(out.len(), items.len());
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, (i as u64) * (i as u64), "index {i} at {t} threads");
            }
        }
    }

    #[test]
    fn parallel_for_covers_every_index_exactly_once() {
        let n = 997; // prime, so chunks never divide evenly
        for t in [1, 3, 8] {
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            ThreadPool::new(t).parallel_for(n, 10, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{t} threads"
            );
        }
    }

    #[test]
    fn chunked_reduce_is_bit_identical_across_thread_counts() {
        // Floating-point data chosen so that a different summation order
        // would change the rounding; the fixed chunk boundaries must not.
        let xs: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2_654_435_761_usize) as f64).sin() * 1e8)
            .collect();
        let sum_at = |t: usize| {
            ThreadPool::new(t)
                .reduce(&xs, 64, |c| c.iter().sum::<f64>(), |a, b| a + b)
                .unwrap()
        };
        let reference = sum_at(1);
        for t in [2, 4, 8] {
            assert_eq!(reference.to_bits(), sum_at(t).to_bits(), "{t} threads");
        }
    }

    #[test]
    fn chunks_mut_views_are_disjoint_and_complete() {
        let mut data = vec![0u32; 1003];
        ThreadPool::new(4).parallel_for_chunks_mut(&mut data, 100, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + ci as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (i / 100) as u32, "element {i}");
        }
    }

    #[test]
    fn gated_map_stays_serial_below_the_work_gate() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = set_min_parallel_work(1_000_000);
        let main_id = std::thread::current().id();
        let items: Vec<u64> = (0..64).collect();
        // 64 × 100 work units is far below the gate: every item must run on
        // the calling thread.
        let out = ThreadPool::new(8).parallel_map_gated(&items, 100, |&x| {
            assert_eq!(std::thread::current().id(), main_id, "fan-out despite gate");
            x * 2
        });
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        // Above the gate it still produces the same results.
        let out = ThreadPool::new(8).parallel_map_gated(&items, 1_000_000, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        set_min_parallel_work(prev);
    }

    #[test]
    fn nested_fan_outs_run_inline_on_worker_threads() {
        // A map dispatched from inside a pool job must not spawn further
        // threads: each inner item runs on the thread that called it.
        let items: Vec<u64> = (0..4).collect();
        let out = ThreadPool::new(4).parallel_map(&items, |&x| {
            let me = std::thread::current().id();
            let inner: Vec<u64> = ThreadPool::new(4).parallel_map(&items, |&y| {
                assert_eq!(std::thread::current().id(), me, "nested spawn");
                x * 10 + y
            });
            inner.iter().sum::<u64>()
        });
        assert_eq!(out, vec![6, 46, 86, 126]);

        // The same holds for threads explicitly marked via enter_worker.
        let me = std::thread::current().id();
        let guard = enter_worker();
        assert!(on_worker_thread());
        ThreadPool::new(8).parallel_for(16, 1, |r| {
            for _ in r {
                assert_eq!(std::thread::current().id(), me, "spawn despite marking");
            }
        });
        drop(guard);
        assert!(!on_worker_thread());
    }

    #[test]
    fn empty_inputs_are_no_ops() {
        let pool = ThreadPool::new(4);
        assert!(pool.parallel_map(&[] as &[u8], |&b| b).is_empty());
        pool.parallel_for(0, 8, |_| panic!("must not run"));
        pool.parallel_for_chunks_mut(&mut [] as &mut [u8], 4, |_, _| panic!("must not run"));
        assert!(pool
            .reduce(&[] as &[u8], 4, |_| 0u64, |a, b| a + b)
            .is_none());
    }

    #[test]
    fn global_thread_override_round_trips() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let baseline = threads();
        set_threads(3);
        assert_eq!(threads(), 3);
        assert_eq!(ThreadPool::global().threads(), 3);
        assert_eq!(ThreadPool::new(7).threads(), 7, "fixed pools are pinned");
        set_threads(baseline);
        assert_eq!(threads(), baseline);
    }

    #[test]
    fn with_threads_scopes_the_override_and_restores_on_panic() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let baseline = threads();
        let inner = with_threads(5, || {
            assert_eq!(threads(), 5);
            ThreadPool::global().threads()
        });
        assert_eq!(inner, 5);
        assert_eq!(threads(), baseline, "override must not leak");
        // A panicking body still restores the previous setting.
        let caught = std::panic::catch_unwind(|| with_threads(3, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(threads(), baseline, "override must not leak on panic");
    }

    #[test]
    fn min_parallel_work_gate_round_trips() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = set_min_parallel_work(123);
        assert_eq!(min_parallel_work(), 123);
        set_min_parallel_work(prev);
        assert_eq!(min_parallel_work(), prev);
    }

    #[test]
    fn fan_outs_are_instrumented() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rec = Arc::new(mcsim_obs::InMemoryRecorder::new());
        mcsim_obs::install(rec.clone());
        let out = ThreadPool::new(4).parallel_map(&(0..256).collect::<Vec<_>>(), |&x| x + 1);
        mcsim_obs::uninstall();
        assert_eq!(out.len(), 256);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("par.invocations"), 1);
        assert!(snap.counter("par.chunks") >= 4);
        assert!(snap.histogram("par.worker_busy_s").is_some());
    }

    #[test]
    fn caller_thread_participates_in_the_work() {
        // Two jobs rendezvous on a 2-party barrier, so they can only both
        // finish if two distinct threads each take one — the single spawned
        // worker can't run both. The caller must therefore run exactly one.
        let main_id = std::thread::current().id();
        let barrier = std::sync::Barrier::new(2);
        let ran_on_main = AtomicU64::new(0);
        ThreadPool::new(2).parallel_for(2, 1, |_| {
            barrier.wait();
            if std::thread::current().id() == main_id {
                ran_on_main.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(ran_on_main.load(Ordering::Relaxed), 1);
    }
}
