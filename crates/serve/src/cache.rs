//! Plan-signature → decision cache.
//!
//! Warehouse traffic is dominated by recurring templates (the same insight
//! behind QO-Advisor's per-job steering table): once the predictor has
//! scored a candidate set and the margin guard has picked a plan, the next
//! arrival of the same template under the same environment can skip
//! featurization, inference, and the guard entirely.
//!
//! Keys are 64-bit digests of the *candidate set* — every candidate's
//! [`PlanSignature`](mcsim_plan::PlanSignature), the default index, and
//! the environment fingerprint folded together — so any change to the
//! explored plans or the serving environment changes the key. Entries are
//! stamped with the model version current at insert time; bumping the
//! version ([`DecisionCache::bump_model_version`], called when a retrained
//! model is swapped in) invalidates every older entry without a scan.
//!
//! Like the feature cache, the map is hash-sharded so concurrent serving
//! workers don't serialize on one lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A cached guarded-selection outcome for one candidate set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedDecision {
    /// Index of the chosen candidate.
    pub choice: usize,
    /// Predicted cost of the chosen candidate.
    pub predicted: f64,
    /// True when the predictor degraded (non-finite score) and the default
    /// plan was served.
    pub degraded: bool,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    decision: CachedDecision,
    version: u64,
}

/// Sharded, versioned decision cache.
#[derive(Debug)]
pub struct DecisionCache {
    shards: Box<[Mutex<HashMap<u64, Entry>>]>,
    mask: usize,
    version: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for DecisionCache {
    fn default() -> Self {
        DecisionCache::with_shards(16)
    }
}

impl DecisionCache {
    /// An empty cache with 16 shards at model version 0.
    pub fn new() -> DecisionCache {
        DecisionCache::default()
    }

    /// An empty cache with at least `n` shards (rounded up to a power of
    /// two).
    pub fn with_shards(n: usize) -> DecisionCache {
        let n = n.max(1).next_power_of_two();
        DecisionCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n - 1,
            version: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Entry>> {
        let mut h = key;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        &self.shards[(h as usize) & self.mask]
    }

    /// The current model version.
    pub fn model_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Invalidates every cached decision by advancing the model version;
    /// returns the new version. Call when a retrained model is swapped in —
    /// stale entries are dropped lazily on their next lookup.
    pub fn bump_model_version(&self) -> u64 {
        self.version.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Looks up a candidate-set digest. Entries from an older model
    /// version count as misses and are evicted.
    pub fn get(&self, key: u64) -> Option<CachedDecision> {
        let version = self.model_version();
        let mut map = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        match map.get(&key) {
            Some(e) if e.version == version => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                mcsim_obs::counter("loam.serve.decision_cache_hits", 1);
                Some(e.decision)
            }
            stale => {
                if stale.is_some() {
                    map.remove(&key);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                mcsim_obs::counter("loam.serve.decision_cache_misses", 1);
                None
            }
        }
    }

    /// Stores a decision under the current model version.
    pub fn insert(&self, key: u64, decision: CachedDecision) {
        let version = self.model_version();
        let mut map = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        map.insert(key, Entry { decision, version });
    }

    /// Cumulative hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative misses (including stale-version evictions).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups that hit, `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of stored entries (live and stale).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters keep accumulating).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(choice: usize) -> CachedDecision {
        CachedDecision {
            choice,
            predicted: 42.0,
            degraded: false,
        }
    }

    #[test]
    fn insert_then_hit() {
        let c = DecisionCache::with_shards(4);
        assert!(c.get(1).is_none());
        c.insert(1, d(2));
        assert_eq!(c.get(1).unwrap().choice, 2);
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn model_version_bump_invalidates_everything() {
        let c = DecisionCache::new();
        for k in 0..32 {
            c.insert(k, d(k as usize));
        }
        assert!(c.get(7).is_some());
        assert_eq!(c.bump_model_version(), 1);
        for k in 0..32 {
            assert!(c.get(k).is_none(), "entry {k} must be stale after bump");
        }
        // Stale entries were evicted on lookup.
        assert!(c.is_empty());
        // Re-inserting under the new version works.
        c.insert(7, d(9));
        assert_eq!(c.get(7).unwrap().choice, 9);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let c = DecisionCache::with_shards(2);
        for k in 0..128u64 {
            c.insert(k, d(k as usize));
        }
        assert_eq!(c.len(), 128);
        for k in 0..128u64 {
            assert_eq!(c.get(k).unwrap().choice, k as usize);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 128, "clear must not reset counters");
    }
}
