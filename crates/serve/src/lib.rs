//! # mcsim-serve — the high-throughput serving layer
//!
//! Production query optimizers are judged under *traffic*, not one query
//! at a time: a multi-tenant warehouse submits recurring templates from
//! many projects at once, and the steering layer has to amortize its
//! neural inference, shed load it cannot absorb, and keep its decisions
//! reproducible for audit. This crate packages that serving path:
//!
//! * [`ArrivalProfile`] / [`generate_arrivals`] — seeded open-loop
//!   arrival traces (Poisson, bursty, diurnal) over many tenants, each
//!   request tagged with a recurring query template;
//! * [`ServeSession`] — the unified session API: one validated
//!   [`ServeConfig`] (built with [`ServeConfig::builder`]) binds the
//!   traffic shape, batching width, admission control, caching policy,
//!   and robustness knobs, and [`ServeSession::run`] drives the whole
//!   optimize → gate → execute path over the
//!   [`RobustServer`](loam_core::serving::RobustServer) engine;
//! * request batching — distinct templates in a batch are scored with
//!   **one** padded forest forward (`tinynn::Tcn::forward_forest_ws` via
//!   [`CostModel::predict_batch`](loam_core::predictor::baselines::CostModel::predict_batch)),
//!   bit-identical to single-query scoring;
//! * [`DecisionCache`] — plan-signature → guarded-decision cache with
//!   model-version invalidation, alongside the sharded
//!   [`FeatureCache`](loam_core::featurize::FeatureCache);
//! * deterministic replay — the [`DecisionRecord`] log of a run is a pure
//!   function of the seed and the semantic configuration: thread count,
//!   wall-clock speed, and tracing cannot change it.
//!
//! The `experiments serve` benchmark (crate `loam-bench`) measures the
//! payoff: batched + cached serving sustains a multiple of the
//! single-query QPS at identical decisions.

#![warn(missing_docs)]

mod arrival;
mod cache;
mod session;

pub use arrival::{generate_arrivals, Arrival, ArrivalProfile};
pub use cache::{CachedDecision, DecisionCache};
pub use mcsim_exec::EngineMode;
pub use session::{
    DecisionRecord, RequestOutcome, ServeConfig, ServeConfigBuilder, ServeReport, ServeSession,
    ShedPolicy,
};
