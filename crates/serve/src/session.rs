//! The serving session: configuration, admission control, batched
//! inference, and the deterministic decision log.
//!
//! [`ServeSession`] is the unified front end the free functions of earlier
//! revisions grew toward: one validated [`ServeConfig`] describes the
//! traffic (arrival profile, tenants, request count), the batching and
//! caching policy, and the robustness knobs (margin, fallback ladder,
//! deployment gate), and [`ServeSession::run`] drives the whole
//! optimize → gate → execute path over a template library.
//!
//! ## Determinism
//!
//! The decision log of a run is a pure function of the seed and the
//! configuration's *semantic* knobs: arrivals are drawn up front in
//! virtual time, shedding is decided by a deterministic backlog
//! simulation, batched inference is bit-identical to single-plan scoring,
//! and every request executes on its own executor seeded from the request
//! sequence number — with its cluster clock advanced to the arrival's
//! virtual time, so each request sees the diurnal phase and fault
//! timeline of its own moment. Thread count, wall-clock speed, tracing,
//! and the simulation core ([`ServeConfig::engine`]) cannot change any
//! [`DecisionRecord`].

use crate::arrival::{generate_arrivals, Arrival, ArrivalProfile};
use crate::cache::{CachedDecision, DecisionCache};
use loam_core::featurize::FeatureCache;
use loam_core::gate::{validate_traced, GateConfig};
use loam_core::inference::{EnvStrategy, DEFAULT_MARGIN};
use loam_core::pipeline::EvaluatedQuery;
use loam_core::predictor::baselines::CostModel;
use loam_core::predictor::InferWs;
use loam_core::robust::{Resolution, RobustConfig, RobustQueryResult};
use loam_core::serving::RobustServer;
use loam_core::LoamError;
use mcsim_catalog::Catalog;
use mcsim_exec::{ChaosScenario, ClusterConfig, EngineMode};
use mcsim_obs::trace::{Decision, Fallback, TraceContext};
use mcsim_obs::Histogram;
use mcsim_plan::{PlanSignature, PlanTree};
use std::collections::HashMap;
use std::sync::Mutex;

/// Admission-control policy applied to the arrival trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ShedPolicy {
    /// Admit everything.
    None,
    /// Deterministic queue bound: a virtual backlog drains at `drain_qps`;
    /// an arrival that finds the backlog at `capacity` is shed. Because
    /// the backlog is simulated in virtual time over the arrival trace,
    /// the shed set is independent of threads and wall-clock speed.
    QueueBound {
        /// Backlog size at which arrivals are shed (> 0).
        capacity: usize,
        /// Virtual drain rate in queries per second (> 0).
        drain_qps: f64,
    },
}

/// Validated serving configuration; construct via [`ServeConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Open-loop arrival process.
    pub arrival: ArrivalProfile,
    /// Number of tenants the trace is drawn over (≥ 1).
    pub tenants: usize,
    /// Length of the arrival trace (≥ 1).
    pub requests: usize,
    /// Maximum requests scored per batched forward (≥ 1); 1 reproduces
    /// the single-query baseline.
    pub batch_size: usize,
    /// Admission control.
    pub shed: ShedPolicy,
    /// Shard count for both caches.
    pub cache_shards: usize,
    /// Cache featurizations across requests.
    pub feature_cache: bool,
    /// Cache guarded decisions per candidate-set signature.
    pub decision_cache: bool,
    /// Margin of the guarded selection, in `[0, 1)`.
    pub margin: f64,
    /// Arm the graceful-degradation ladder.
    pub fallback_enabled: bool,
    /// Deployment-gate thresholds.
    pub gate: GateConfig,
    /// Environment strategy for inference.
    pub strategy: EnvStrategy,
    /// Fault-injection scale of the per-request executors (0 = fault-free).
    pub fault_scale: f64,
    /// Machines in each per-request execution cluster (≥ 1).
    pub machines: usize,
    /// Simulation core of the per-request clusters. The event-driven
    /// default makes admitting a request at virtual time `t` an
    /// `O(events)` jump instead of `O(machines × t)` ticking, which is
    /// what lets arrivals feed the cluster's virtual clock (see
    /// [`ServeSession::run`]).
    pub engine: EngineMode,
    /// Cluster warm-up ticks before each request executes (on top of the
    /// arrival's own virtual-time offset).
    pub warmup_ticks: u64,
    /// Master seed: arrivals, shedding, and executors derive from it.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            arrival: ArrivalProfile::Poisson { rate_qps: 64.0 },
            tenants: 8,
            requests: 256,
            batch_size: 32,
            shed: ShedPolicy::None,
            cache_shards: 16,
            feature_cache: true,
            decision_cache: true,
            margin: DEFAULT_MARGIN,
            fallback_enabled: true,
            gate: GateConfig::default(),
            strategy: EnvStrategy::NoEnv,
            fault_scale: 0.0,
            machines: 24,
            engine: EngineMode::default(),
            warmup_ticks: 24,
            seed: 0x5e12_7e55,
        }
    }
}

impl ServeConfig {
    /// Starts a builder pre-loaded with the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: ServeConfig::default(),
        }
    }

    fn validate(&self) -> Result<(), LoamError> {
        let bad = |msg: String| Err(LoamError::InvalidConfig(msg));
        if let Err(e) = self.arrival.validate() {
            return bad(e);
        }
        if self.tenants == 0 {
            return bad("tenants must be ≥ 1".into());
        }
        if self.requests == 0 {
            return bad("requests must be ≥ 1".into());
        }
        if self.batch_size == 0 {
            return bad("batch_size must be ≥ 1".into());
        }
        if self.machines == 0 {
            return bad("machines must be ≥ 1".into());
        }
        if !self.fault_scale.is_finite() || self.fault_scale < 0.0 {
            return bad(format!("fault_scale must be ≥ 0, got {}", self.fault_scale));
        }
        if let ShedPolicy::QueueBound {
            capacity,
            drain_qps,
        } = &self.shed
        {
            if *capacity == 0 {
                return bad("shed capacity must be ≥ 1".into());
            }
            if !drain_qps.is_finite() || *drain_qps <= 0.0 {
                return bad(format!("drain_qps must be positive, got {drain_qps}"));
            }
        }
        // The margin is validated by RobustServer::new.
        Ok(())
    }
}

/// Builder for [`ServeConfig`]; [`build`](Self::build) validates every
/// knob and names the offending one on failure.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Open-loop arrival process.
    pub fn arrival(mut self, p: ArrivalProfile) -> Self {
        self.cfg.arrival = p;
        self
    }
    /// Number of tenants.
    pub fn tenants(mut self, n: usize) -> Self {
        self.cfg.tenants = n;
        self
    }
    /// Length of the arrival trace.
    pub fn requests(mut self, n: usize) -> Self {
        self.cfg.requests = n;
        self
    }
    /// Batched-inference width (1 = single-query baseline).
    pub fn batch_size(mut self, n: usize) -> Self {
        self.cfg.batch_size = n;
        self
    }
    /// Admission-control policy.
    pub fn shed(mut self, p: ShedPolicy) -> Self {
        self.cfg.shed = p;
        self
    }
    /// Shard count for the feature and decision caches.
    pub fn cache_shards(mut self, n: usize) -> Self {
        self.cfg.cache_shards = n;
        self
    }
    /// Toggle the featurization cache.
    pub fn feature_cache(mut self, on: bool) -> Self {
        self.cfg.feature_cache = on;
        self
    }
    /// Toggle the plan-signature decision cache.
    pub fn decision_cache(mut self, on: bool) -> Self {
        self.cfg.decision_cache = on;
        self
    }
    /// Margin of the guarded selection.
    pub fn margin(mut self, m: f64) -> Self {
        self.cfg.margin = m;
        self
    }
    /// Arm or disarm the fallback ladder.
    pub fn fallback_enabled(mut self, on: bool) -> Self {
        self.cfg.fallback_enabled = on;
        self
    }
    /// Deployment-gate thresholds.
    pub fn gate(mut self, g: GateConfig) -> Self {
        self.cfg.gate = g;
        self
    }
    /// Environment strategy.
    pub fn strategy(mut self, s: EnvStrategy) -> Self {
        self.cfg.strategy = s;
        self
    }
    /// Fault-injection scale of the per-request executors.
    pub fn fault_scale(mut self, f: f64) -> Self {
        self.cfg.fault_scale = f;
        self
    }
    /// Machines per per-request execution cluster.
    pub fn machines(mut self, n: usize) -> Self {
        self.cfg.machines = n;
        self
    }
    /// Simulation core of the per-request clusters.
    pub fn engine(mut self, mode: EngineMode) -> Self {
        self.cfg.engine = mode;
        self
    }
    /// Warm-up ticks per request executor.
    pub fn warmup_ticks(mut self, t: u64) -> Self {
        self.cfg.warmup_ticks = t;
        self
    }
    /// Master seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }
    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ServeConfig, LoamError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// How one arrival ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Admission control dropped the request before selection.
    Shed,
    /// The request was admitted and ran the full ladder.
    Served {
        /// Chosen candidate index.
        choice: usize,
        /// Final rung of the ladder.
        resolution: Resolution,
        /// Bit pattern of the predicted cost of the chosen candidate
        /// (`f64::to_bits`; 0 when the request skipped scoring, e.g. under
        /// a gate hold). Stored as bits so records are `Eq` and the
        /// determinism contract is exact.
        predicted_bits: u64,
        /// Bit pattern of the observed CPU cost (0.0 for failed queries).
        cost_bits: u64,
        /// Whether the decision came from the decision cache.
        decision_cached: bool,
    },
}

/// One line of the deterministic decision log, in arrival order.
///
/// Equality is exact: two runs with the same seed and semantic
/// configuration produce `==` logs at any thread count. When comparing
/// *across* caching/batching configurations, compare everything except
/// `decision_cached` (see [`DecisionRecord::same_decision`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Arrival sequence number.
    pub seq: u64,
    /// Submitting tenant.
    pub tenant: u32,
    /// Template index.
    pub template: u32,
    /// Query id of the template.
    pub query_id: u64,
    /// Outcome.
    pub outcome: RequestOutcome,
}

impl DecisionRecord {
    /// True when two records carry the same decision, ignoring whether it
    /// was served from the decision cache — the invariant that holds
    /// across batch sizes and cache configurations at equal seed.
    pub fn same_decision(&self, other: &DecisionRecord) -> bool {
        let strip = |r: &DecisionRecord| match r.outcome {
            RequestOutcome::Shed => None,
            RequestOutcome::Served {
                choice,
                resolution,
                predicted_bits,
                cost_bits,
                ..
            } => Some((choice, resolution, predicted_bits, cost_bits)),
        };
        (
            self.seq,
            self.tenant,
            self.template,
            self.query_id,
            strip(self),
        ) == (
            other.seq,
            other.tenant,
            other.template,
            other.query_id,
            strip(other),
        )
    }
}

/// Report of one [`ServeSession::run`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Whether the deployment gate deployed the model.
    pub gate_deployed: bool,
    /// Arrivals in the trace.
    pub requests: usize,
    /// Requests dropped by admission control.
    pub shed: usize,
    /// Requests admitted past admission control.
    pub admitted: usize,
    /// Admitted requests that completed (any rung above `Failed`).
    pub completed: usize,
    /// Admitted requests whose default plan failed too.
    pub failed: usize,
    /// Batched forwards issued.
    pub batches: usize,
    /// Wall-clock seconds of the serving loop (scoring + execution).
    pub wall_s: f64,
    /// Virtual timespan of the arrival trace in seconds.
    pub virtual_makespan_s: f64,
    /// Per-request latency (inference share + execution), seconds.
    pub latency: Histogram,
    /// Feature-cache hits during this run.
    pub feature_cache_hits: u64,
    /// Feature-cache misses during this run.
    pub feature_cache_misses: u64,
    /// Decision-cache hits during this run.
    pub decision_cache_hits: u64,
    /// Decision-cache misses during this run.
    pub decision_cache_misses: u64,
    /// Total observed CPU cost of completed requests.
    pub total_cost: f64,
    /// CPU cost burnt by killed attempts.
    pub total_wasted_cost: f64,
    /// Fault-injected retries survived.
    pub total_retries: u32,
    /// One record per arrival, in sequence order.
    pub decision_log: Vec<DecisionRecord>,
}

impl ServeReport {
    /// A 64-bit FNV-1a digest of the decision log — the session's
    /// deterministic-replay fingerprint.
    ///
    /// Every field of every [`DecisionRecord`] (including exact cost and
    /// prediction bit patterns) feeds the hash in arrival order, so two
    /// runs digest equal **iff** they made identical decisions with
    /// identical outcomes. Because the log is a pure function of the seed
    /// and the semantic configuration, the digest is bit-stable across
    /// thread counts, reruns, and machines — which is what lets the sweep
    /// harness pin a whole scenario cell to one hex string.
    pub fn decision_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for r in &self.decision_log {
            eat(&r.seq.to_le_bytes());
            eat(&r.tenant.to_le_bytes());
            eat(&r.template.to_le_bytes());
            eat(&r.query_id.to_le_bytes());
            match r.outcome {
                RequestOutcome::Shed => eat(&[0u8]),
                RequestOutcome::Served {
                    choice,
                    resolution,
                    predicted_bits,
                    cost_bits,
                    decision_cached,
                } => {
                    eat(&[1u8, resolution as u8, u8::from(decision_cached)]);
                    eat(&(choice as u64).to_le_bytes());
                    eat(&predicted_bits.to_le_bytes());
                    eat(&cost_bits.to_le_bytes());
                }
            }
        }
        h
    }

    /// Completed requests per wall-clock second.
    pub fn qps(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.completed as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Fraction of arrivals dropped by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.shed as f64 / self.requests as f64
        }
    }

    /// Fraction of admitted requests that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.admitted == 0 {
            1.0
        } else {
            self.completed as f64 / self.admitted as f64
        }
    }

    /// Feature-cache hit rate of this run.
    pub fn feature_hit_rate(&self) -> f64 {
        rate(self.feature_cache_hits, self.feature_cache_misses)
    }

    /// Decision-cache hit rate of this run.
    pub fn decision_hit_rate(&self) -> f64 {
        rate(self.decision_cache_hits, self.decision_cache_misses)
    }

    /// Served requests that ended on the given rung.
    pub fn resolution_count(&self, r: Resolution) -> usize {
        self.decision_log
            .iter()
            .filter(
                |d| matches!(d.outcome, RequestOutcome::Served { resolution, .. } if resolution == r),
            )
            .count()
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// The high-throughput serving session. See the module docs.
#[derive(Debug)]
pub struct ServeSession {
    cfg: ServeConfig,
    server: RobustServer,
    cluster: ClusterConfig,
    features: Option<FeatureCache>,
    decisions: Option<DecisionCache>,
    /// Warm inference workspace + cost buffer reused by every scoring batch
    /// of the session (`run` takes `&self`, so the scratch sits behind a
    /// mutex; batches score one at a time while execution fans out).
    scratch: Mutex<(InferWs, Vec<f64>)>,
}

impl ServeSession {
    /// Builds a session from a validated configuration.
    pub fn new(cfg: ServeConfig) -> Result<ServeSession, LoamError> {
        cfg.validate()?;
        let server = RobustServer::new(
            cfg.strategy,
            RobustConfig {
                margin: cfg.margin,
                fallback_enabled: cfg.fallback_enabled,
                gate: cfg.gate,
            },
        )?;
        let cluster = ClusterConfig::builder()
            .n_machines(cfg.machines)
            .engine(cfg.engine)
            .build()
            .map_err(|e| LoamError::InvalidConfig(e.to_string()))?;
        let features = cfg
            .feature_cache
            .then(|| FeatureCache::with_shards(cfg.cache_shards));
        let decisions = cfg
            .decision_cache
            .then(|| DecisionCache::with_shards(cfg.cache_shards));
        Ok(ServeSession {
            cfg,
            server,
            cluster,
            features,
            decisions,
            scratch: Mutex::new((InferWs::new(), Vec::new())),
        })
    }

    /// The session's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The per-query engine the session drives.
    pub fn server(&self) -> &RobustServer {
        &self.server
    }

    /// The featurization cache, when enabled. Persists across runs.
    pub fn feature_cache(&self) -> Option<&FeatureCache> {
        self.features.as_ref()
    }

    /// The decision cache, when enabled. Persists across runs.
    pub fn decision_cache(&self) -> Option<&DecisionCache> {
        self.decisions.as_ref()
    }

    /// Invalidates every cached decision; call after swapping in a
    /// retrained model. Featurizations stay valid — they do not depend on
    /// model parameters.
    pub fn notify_model_updated(&self) {
        if let Some(d) = &self.decisions {
            d.bump_model_version();
        }
    }

    /// Serves the whole arrival trace against `templates` (the library of
    /// recurring queries with their explored candidate sets) and returns
    /// the report. `model` is gated once up front; every admitted request
    /// then runs selection (batched, cached) and execution (parallel,
    /// per-request executors) down the fallback ladder.
    pub fn run<M: CostModel + Sync + ?Sized>(
        &self,
        model: &M,
        templates: &[EvaluatedQuery],
        catalog: &Catalog,
        trace: Option<&TraceContext>,
    ) -> Result<ServeReport, LoamError> {
        if templates.is_empty() {
            return Err(LoamError::EmptyWorkload(
                "serving needs at least one template".into(),
            ));
        }
        for (i, eq) in templates.iter().enumerate() {
            if eq.plans.is_empty() || eq.default_idx >= eq.plans.len() {
                return Err(LoamError::InvalidConfig(format!(
                    "template #{i} has {} plans with default_idx {}",
                    eq.plans.len(),
                    eq.default_idx
                )));
            }
        }

        let arrivals = generate_arrivals(
            &self.cfg.arrival,
            self.cfg.requests,
            self.cfg.tenants,
            templates.len(),
            self.cfg.seed,
        );
        let shed = shed_mask(&arrivals, &self.cfg.shed);
        let digests = self.template_digests(templates);
        mcsim_obs::counter("loam.serve.requests", arrivals.len() as u64);

        let gate = validate_traced(
            model,
            self.server.strategy(),
            templates,
            &self.cfg.gate,
            trace,
        );
        let gate_deployed = gate.deploy();

        let feat0 = self
            .features
            .as_ref()
            .map_or((0, 0), |c| (c.hits(), c.misses()));
        let dec0 = self
            .decisions
            .as_ref()
            .map_or((0, 0), |c| (c.hits(), c.misses()));

        let mut report = ServeReport {
            gate_deployed,
            requests: arrivals.len(),
            shed: 0,
            admitted: 0,
            completed: 0,
            failed: 0,
            batches: 0,
            wall_s: 0.0,
            virtual_makespan_s: arrivals.last().map_or(0.0, |a| a.t_s),
            latency: Histogram::default(),
            feature_cache_hits: 0,
            feature_cache_misses: 0,
            decision_cache_hits: 0,
            decision_cache_misses: 0,
            total_cost: 0.0,
            total_wasted_cost: 0.0,
            total_retries: 0,
            decision_log: Vec::with_capacity(arrivals.len()),
        };

        let t_run = std::time::Instant::now();
        let mut batch: Vec<&Arrival> = Vec::with_capacity(self.cfg.batch_size);
        for (a, &is_shed) in arrivals.iter().zip(&shed) {
            if is_shed {
                // Flush first so the log stays in sequence order.
                self.flush_batch(
                    model,
                    templates,
                    catalog,
                    &digests,
                    &mut batch,
                    &mut report,
                    trace,
                );
                mcsim_obs::counter("loam.serve.shed", 1);
                report.shed += 1;
                report.decision_log.push(DecisionRecord {
                    seq: a.seq,
                    tenant: a.tenant,
                    template: a.template,
                    query_id: templates[a.template as usize].query_id,
                    outcome: RequestOutcome::Shed,
                });
                continue;
            }
            batch.push(a);
            if batch.len() == self.cfg.batch_size {
                self.flush_batch(
                    model,
                    templates,
                    catalog,
                    &digests,
                    &mut batch,
                    &mut report,
                    trace,
                );
            }
        }
        self.flush_batch(
            model,
            templates,
            catalog,
            &digests,
            &mut batch,
            &mut report,
            trace,
        );
        report.wall_s = t_run.elapsed().as_secs_f64();

        let feat1 = self
            .features
            .as_ref()
            .map_or((0, 0), |c| (c.hits(), c.misses()));
        let dec1 = self
            .decisions
            .as_ref()
            .map_or((0, 0), |c| (c.hits(), c.misses()));
        report.feature_cache_hits = feat1.0 - feat0.0;
        report.feature_cache_misses = feat1.1 - feat0.1;
        report.decision_cache_hits = dec1.0 - dec0.0;
        report.decision_cache_misses = dec1.1 - dec0.1;
        Ok(report)
    }

    /// Scores and executes one batch of admitted arrivals, appending their
    /// records to the report in order. Clears `batch`.
    #[allow(clippy::too_many_arguments)]
    fn flush_batch<M: CostModel + Sync + ?Sized>(
        &self,
        model: &M,
        templates: &[EvaluatedQuery],
        catalog: &Catalog,
        digests: &[u64],
        batch: &mut Vec<&Arrival>,
        report: &mut ServeReport,
        trace: Option<&TraceContext>,
    ) {
        if batch.is_empty() {
            return;
        }
        mcsim_obs::counter("loam.serve.batches", 1);
        mcsim_obs::counter("loam.serve.admitted", batch.len() as u64);
        report.batches += 1;
        report.admitted += batch.len();

        // --- selection: one decision per distinct template in the batch.
        let mut decided: HashMap<u32, (CachedDecision, Resolution, bool)> = HashMap::new();
        let mut infer_s = 0.0f64;
        if !report.gate_deployed && self.cfg.fallback_enabled {
            // Gate hold: every request serves its default plan unscored.
            for a in batch.iter() {
                mcsim_obs::counter("loam.fallback.gate_hold", 1);
                if let Some(t) = trace {
                    t.decision(Decision::Fallback(Fallback {
                        query_id: templates[a.template as usize].query_id,
                        reason: "deployment gate held the model; serving default plan".into(),
                    }));
                }
            }
            for a in batch.iter() {
                decided.entry(a.template).or_insert((
                    CachedDecision {
                        choice: templates[a.template as usize].default_idx,
                        predicted: 0.0,
                        degraded: false,
                    },
                    Resolution::GateFallback,
                    false,
                ));
            }
        } else {
            let mut to_score: Vec<u32> = Vec::new();
            for a in batch.iter() {
                if decided.contains_key(&a.template) || to_score.contains(&a.template) {
                    continue;
                }
                let cached = self
                    .decisions
                    .as_ref()
                    .and_then(|c| c.get(digests[a.template as usize]));
                match cached {
                    Some(d) => {
                        let base = base_resolution(&d, templates[a.template as usize].default_idx);
                        decided.insert(a.template, (d, base, true));
                    }
                    None => to_score.push(a.template),
                }
            }
            if !to_score.is_empty() {
                let t_infer = std::time::Instant::now();
                let _s = mcsim_obs::span("serve.batch_infer");
                let _ts = trace.map(|t| {
                    let s = t.span("serve.batch_infer");
                    s.attr("templates", to_score.len());
                    s.attr("requests", batch.len());
                    s
                });
                // One forest forward over every candidate of every
                // to-be-scored template.
                let mut refs: Vec<&PlanTree> = Vec::new();
                let mut bounds = Vec::with_capacity(to_score.len() + 1);
                bounds.push(0);
                for &t in &to_score {
                    refs.extend(templates[t as usize].plans.iter());
                    bounds.push(refs.len());
                }
                let mut scratch = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
                let (infer_ws, costs) = &mut *scratch;
                self.server
                    .score_batch_into(model, &refs, self.features.as_ref(), infer_ws, costs);
                for (i, &t) in to_score.iter().enumerate() {
                    let eq = &templates[t as usize];
                    let slice_refs = &refs[bounds[i]..bounds[i + 1]];
                    let slice_costs = &costs[bounds[i]..bounds[i + 1]];
                    let (choice, reason) = self.server.resolve_scored(
                        slice_refs,
                        slice_costs,
                        eq.default_idx,
                        trace,
                        eq.query_id,
                    );
                    let d = CachedDecision {
                        choice,
                        predicted: slice_costs[choice],
                        degraded: reason.is_some(),
                    };
                    let base = base_resolution(&d, eq.default_idx);
                    if let Some(c) = &self.decisions {
                        c.insert(digests[t as usize], d);
                    }
                    decided.insert(t, (d, base, false));
                }
                infer_s = t_infer.elapsed().as_secs_f64();
            }
        }
        let infer_share = infer_s / batch.len() as f64;

        // --- execution: per-request executors, order-preserving fan-out.
        let jobs: Vec<(&Arrival, CachedDecision, Resolution, bool)> = batch
            .iter()
            .map(|a| {
                let (d, base, cached) = decided[&a.template];
                (*a, d, base, cached)
            })
            .collect();
        let outcomes: Vec<(RobustQueryResult, f64)> = mcsim_par::ThreadPool::global()
            .parallel_map_gated(&jobs, 10_000, |(a, d, base, _)| {
                let eq = &templates[a.template as usize];
                let _s = mcsim_obs::span("serve.request");
                let _ts = trace.map(|t| {
                    let s = t.span("serve.request");
                    s.attr("seq", a.seq);
                    s.attr("tenant", a.tenant as u64);
                    s.attr("query_id", eq.query_id);
                    s
                });
                let t_exec = std::time::Instant::now();
                let mut exec = ChaosScenario::new(request_seed(self.cfg.seed, a.seq))
                    .cluster(self.cluster.clone())
                    .fault_scale(self.cfg.fault_scale)
                    .warmup_ticks(self.cfg.warmup_ticks + arrival_tick(a.t_s))
                    .build();
                let qr = self
                    .server
                    .execute_resolved(&mut exec, eq, d.choice, *base, catalog, trace);
                (qr, t_exec.elapsed().as_secs_f64())
            });

        for ((a, d, _, cached), (qr, exec_s)) in jobs.iter().zip(&outcomes) {
            let latency = infer_share + exec_s;
            report.latency.record(latency);
            mcsim_obs::observe("loam.serve.latency_s", latency);
            if qr.resolution == Resolution::Failed {
                report.failed += 1;
            } else {
                report.completed += 1;
            }
            report.total_cost += qr.cost;
            report.total_wasted_cost += qr.wasted_cost;
            report.total_retries += qr.retries;
            report.decision_log.push(DecisionRecord {
                seq: a.seq,
                tenant: a.tenant,
                template: a.template,
                query_id: qr.query_id,
                outcome: RequestOutcome::Served {
                    choice: d.choice,
                    resolution: qr.resolution,
                    predicted_bits: d.predicted.to_bits(),
                    cost_bits: qr.cost.to_bits(),
                    decision_cached: *cached,
                },
            });
        }
        batch.clear();
    }

    /// 64-bit digest per template: every candidate signature, the default
    /// index, and the environment fingerprint folded FNV-style. Any change
    /// to the candidate set or the serving environment changes the key.
    fn template_digests(&self, templates: &[EvaluatedQuery]) -> Vec<u64> {
        let env_fp = strategy_fingerprint(self.server.strategy());
        templates
            .iter()
            .map(|eq| {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                let mut mix = |v: u64| {
                    for b in v.to_le_bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
                    }
                };
                for p in &eq.plans {
                    mix(PlanSignature::of(p).0);
                }
                mix(eq.default_idx as u64);
                mix(env_fp);
                h
            })
            .collect()
    }
}

fn base_resolution(d: &CachedDecision, default_idx: usize) -> Resolution {
    if d.degraded {
        Resolution::PredictorFallback
    } else if d.choice == default_idx {
        Resolution::Default
    } else {
        Resolution::Steered
    }
}

/// Which arrivals admission control drops, simulated deterministically in
/// virtual time.
fn shed_mask(arrivals: &[Arrival], policy: &ShedPolicy) -> Vec<bool> {
    match policy {
        ShedPolicy::None => vec![false; arrivals.len()],
        ShedPolicy::QueueBound {
            capacity,
            drain_qps,
        } => {
            let mut backlog = 0.0f64;
            let mut last_t = 0.0f64;
            arrivals
                .iter()
                .map(|a| {
                    backlog = (backlog - (a.t_s - last_t) * drain_qps).max(0.0);
                    last_t = a.t_s;
                    if backlog >= *capacity as f64 {
                        true
                    } else {
                        backlog += 1.0;
                        false
                    }
                })
                .collect()
        }
    }
}

/// Bit-exact fingerprint of the environment strategy.
fn strategy_fingerprint(s: &EnvStrategy) -> u64 {
    let (tag, e) = match s {
        EnvStrategy::MeanHistorical(e) => (1u64, Some(e)),
        EnvStrategy::ClusterExpected(e) => (2, Some(e)),
        EnvStrategy::ClusterCurrent(e) => (3, Some(e)),
        EnvStrategy::NoEnv => (0, None),
    };
    let mut h = tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    if let Some(e) = e {
        for f in [e.cpu_idle, e.io_wait, e.load5, e.mem_usage] {
            h = (h ^ f.to_bits()).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Seconds of virtual time per cluster tick (production samples loads
/// every 20 seconds).
const SECONDS_PER_TICK: f64 = 20.0;

/// The cluster tick an arrival lands on. Feeding this offset into the
/// per-request cluster clock means a request arriving mid-trace executes
/// against the diurnal phase and fault timeline of *its* moment rather
/// than the cluster epoch — affordable because the event engine's advance
/// drains `O(events)`, not `O(machines × ticks)`.
fn arrival_tick(t_s: f64) -> u64 {
    (t_s.max(0.0) / SECONDS_PER_TICK) as u64
}

/// Per-request executor seed: splitmix of the master seed and the arrival
/// sequence number, so every request replays identically at any thread
/// count or batch size.
fn request_seed(seed: u64, seq: u64) -> u64 {
    let mut z = seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_digest_fingerprints_the_log_exactly() {
        let mut report = ServeReport {
            gate_deployed: true,
            requests: 2,
            shed: 1,
            admitted: 1,
            completed: 1,
            failed: 0,
            batches: 1,
            wall_s: 0.0,
            virtual_makespan_s: 0.0,
            latency: Histogram::default(),
            feature_cache_hits: 0,
            feature_cache_misses: 0,
            decision_cache_hits: 0,
            decision_cache_misses: 0,
            total_cost: 0.0,
            total_wasted_cost: 0.0,
            total_retries: 0,
            decision_log: vec![
                DecisionRecord {
                    seq: 0,
                    tenant: 1,
                    template: 2,
                    query_id: 3,
                    outcome: RequestOutcome::Served {
                        choice: 1,
                        resolution: Resolution::Steered,
                        predicted_bits: 1.5f64.to_bits(),
                        cost_bits: 2.5f64.to_bits(),
                        decision_cached: false,
                    },
                },
                DecisionRecord {
                    seq: 1,
                    tenant: 0,
                    template: 0,
                    query_id: 9,
                    outcome: RequestOutcome::Shed,
                },
            ],
        };
        let base = report.decision_digest();
        // A pure function of the log: wall-clock and counters don't feed it.
        report.wall_s = 42.0;
        report.feature_cache_hits = 99;
        assert_eq!(report.decision_digest(), base);
        // Any semantic change to any record moves the digest.
        let mut drifted = report.decision_log.clone();
        if let RequestOutcome::Served { ref mut choice, .. } = drifted[0].outcome {
            *choice += 1;
        }
        report.decision_log = drifted;
        assert_ne!(report.decision_digest(), base);
    }

    #[test]
    fn builder_validates_every_knob() {
        assert!(ServeConfig::builder().build().is_ok());
        let cases: Vec<ServeConfigBuilder> = vec![
            ServeConfig::builder().tenants(0),
            ServeConfig::builder().requests(0),
            ServeConfig::builder().batch_size(0),
            ServeConfig::builder().machines(0),
            ServeConfig::builder().fault_scale(-1.0),
            ServeConfig::builder().arrival(ArrivalProfile::Poisson { rate_qps: -3.0 }),
            ServeConfig::builder().shed(ShedPolicy::QueueBound {
                capacity: 0,
                drain_qps: 10.0,
            }),
            ServeConfig::builder().shed(ShedPolicy::QueueBound {
                capacity: 4,
                drain_qps: 0.0,
            }),
        ];
        for (i, b) in cases.into_iter().enumerate() {
            let err = b.build();
            assert!(
                matches!(err, Err(LoamError::InvalidConfig(_))),
                "case {i} must be rejected, got {err:?}"
            );
        }
        // The margin is validated at session construction.
        let cfg = ServeConfig::builder().margin(1.5).build().unwrap();
        assert!(matches!(
            ServeSession::new(cfg),
            Err(LoamError::InvalidConfig(_))
        ));
    }

    #[test]
    fn shed_mask_is_deterministic_and_bounded() {
        let arrivals =
            generate_arrivals(&ArrivalProfile::Poisson { rate_qps: 100.0 }, 500, 4, 8, 9);
        let policy = ShedPolicy::QueueBound {
            capacity: 8,
            drain_qps: 20.0,
        };
        let a = shed_mask(&arrivals, &policy);
        assert_eq!(a, shed_mask(&arrivals, &policy));
        let shed = a.iter().filter(|&&s| s).count();
        assert!(shed > 0, "an overloaded queue must shed");
        assert!(shed < arrivals.len(), "some requests must be admitted");
        assert!(shed_mask(&arrivals, &ShedPolicy::None).iter().all(|s| !s));
    }

    #[test]
    fn decision_records_compare_modulo_cache_flag() {
        let served = |cached| DecisionRecord {
            seq: 3,
            tenant: 1,
            template: 2,
            query_id: 77,
            outcome: RequestOutcome::Served {
                choice: 1,
                resolution: Resolution::Steered,
                predicted_bits: 1.5f64.to_bits(),
                cost_bits: 9.0f64.to_bits(),
                decision_cached: cached,
            },
        };
        assert_ne!(served(true), served(false));
        assert!(served(true).same_decision(&served(false)));
        let shed = DecisionRecord {
            outcome: RequestOutcome::Shed,
            ..served(true)
        };
        assert!(!shed.same_decision(&served(true)));
    }
}
