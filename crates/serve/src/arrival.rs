//! Seeded open-loop arrival processes.
//!
//! The serving benchmark is *open-loop*: arrival times are drawn up front
//! from a seeded process and do not react to how fast the system serves
//! them (closed-loop load generators hide overload, the classic
//! coordinated-omission mistake). Three profiles cover the traffic shapes
//! a multi-tenant warehouse sees:
//!
//! * [`ArrivalProfile::Poisson`] — memoryless steady-state traffic;
//! * [`ArrivalProfile::Bursty`] — a fraction of arrivals land inside
//!   bursts where inter-arrival gaps shrink by a factor;
//! * [`ArrivalProfile::Diurnal`] — a sinusoidal daily load cycle, the
//!   pattern the cluster simulator's machines follow.
//!
//! Every arrival is tagged with a tenant and a query template drawn from
//! that tenant's *working set* — production projects resubmit a small set
//! of recurring templates, which is exactly what makes the plan-signature
//! decision cache effective.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of the open-loop arrival process. All rates are in queries per
/// second of virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProfile {
    /// Memoryless arrivals at a constant rate.
    Poisson {
        /// Mean arrival rate (> 0).
        rate_qps: f64,
    },
    /// Poisson base traffic where a fraction of arrivals fall inside
    /// bursts with `burst_factor`× compressed gaps.
    Bursty {
        /// Mean base arrival rate (> 0).
        rate_qps: f64,
        /// Gap compression inside a burst (≥ 1).
        burst_factor: f64,
        /// Probability that an arrival is burst-compressed, in `[0, 1]`.
        burst_fraction: f64,
    },
    /// Rate modulated sinusoidally around the mean, like a daily cycle.
    Diurnal {
        /// Mean arrival rate (> 0).
        rate_qps: f64,
        /// Relative modulation amplitude, in `[0, 1)`.
        amplitude: f64,
        /// Cycle length in virtual seconds (> 0).
        period_s: f64,
    },
}

impl ArrivalProfile {
    /// The profile's mean rate.
    pub fn rate_qps(&self) -> f64 {
        match self {
            ArrivalProfile::Poisson { rate_qps }
            | ArrivalProfile::Bursty { rate_qps, .. }
            | ArrivalProfile::Diurnal { rate_qps, .. } => *rate_qps,
        }
    }

    /// Short display name ("poisson", "bursty", "diurnal").
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProfile::Poisson { .. } => "poisson",
            ArrivalProfile::Bursty { .. } => "bursty",
            ArrivalProfile::Diurnal { .. } => "diurnal",
        }
    }

    /// Validates the profile's parameters; the message names the offender.
    pub(crate) fn validate(&self) -> Result<(), String> {
        let rate = self.rate_qps();
        if !rate.is_finite() || rate <= 0.0 {
            return Err(format!("arrival rate must be positive, got {rate}"));
        }
        match self {
            ArrivalProfile::Poisson { .. } => Ok(()),
            ArrivalProfile::Bursty {
                burst_factor,
                burst_fraction,
                ..
            } => {
                if !burst_factor.is_finite() || *burst_factor < 1.0 {
                    Err(format!("burst_factor must be ≥ 1, got {burst_factor}"))
                } else if !(0.0..=1.0).contains(burst_fraction) {
                    Err(format!(
                        "burst_fraction must be in [0, 1], got {burst_fraction}"
                    ))
                } else {
                    Ok(())
                }
            }
            ArrivalProfile::Diurnal {
                amplitude,
                period_s,
                ..
            } => {
                if !(0.0..1.0).contains(amplitude) {
                    Err(format!(
                        "diurnal amplitude must be in [0, 1), got {amplitude}"
                    ))
                } else if !period_s.is_finite() || *period_s <= 0.0 {
                    Err(format!("diurnal period must be positive, got {period_s}"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// One request of the open-loop trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Position in the trace (0-based).
    pub seq: u64,
    /// Virtual arrival time in seconds.
    pub t_s: f64,
    /// Submitting tenant.
    pub tenant: u32,
    /// Query-template index into the session's template library.
    pub template: u32,
}

/// Probability that a tenant strays outside its recurring working set.
const COLD_QUERY_P: f64 = 0.1;

/// Generates `n` arrivals over `tenants` tenants and `n_templates`
/// templates. Deterministic in `seed`: the RNG consumes the same draw
/// sequence per arrival regardless of the profile's rate, so two traces
/// that differ only in rate contain the same (tenant, template) sequence
/// at proportionally scaled times.
pub fn generate_arrivals(
    profile: &ArrivalProfile,
    n: usize,
    tenants: usize,
    n_templates: usize,
    seed: u64,
) -> Vec<Arrival> {
    assert!(tenants > 0 && n_templates > 0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa221_7a1e_5eed_0001);
    // Tenant working sets: a contiguous (wrapped) slice of the template
    // library, staggered so tenants overlap only partially.
    let set_len = n_templates.div_ceil(tenants).max(1);
    let mut t = 0.0f64;
    (0..n as u64)
        .map(|seq| {
            // One exponential draw per arrival, scaled by the local rate.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let std_gap = -u.ln();
            let burst: bool = match profile {
                ArrivalProfile::Bursty { burst_fraction, .. } => rng.gen_bool(*burst_fraction),
                _ => rng.gen_bool(0.0),
            };
            let local_rate = match profile {
                ArrivalProfile::Poisson { rate_qps } => *rate_qps,
                ArrivalProfile::Bursty {
                    rate_qps,
                    burst_factor,
                    ..
                } => {
                    if burst {
                        rate_qps * burst_factor
                    } else {
                        *rate_qps
                    }
                }
                ArrivalProfile::Diurnal {
                    rate_qps,
                    amplitude,
                    period_s,
                } => rate_qps * (1.0 + amplitude * (std::f64::consts::TAU * t / period_s).sin()),
            };
            t += std_gap / local_rate;
            let tenant = rng.gen_range(0..tenants as u32);
            let template = if rng.gen_bool(COLD_QUERY_P) {
                rng.gen_range(0..n_templates as u32)
            } else {
                let off = rng.gen_range(0..set_len as u32);
                (tenant * set_len as u32 + off) % n_templates as u32
            };
            Arrival {
                seq,
                t_s: t,
                tenant,
                template,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_bit_identical() {
        let p = ArrivalProfile::Poisson { rate_qps: 50.0 };
        let a = generate_arrivals(&p, 200, 4, 16, 7);
        let b = generate_arrivals(&p, 200, 4, 16, 7);
        assert_eq!(a, b);
        assert_ne!(a, generate_arrivals(&p, 200, 4, 16, 8));
    }

    #[test]
    fn rate_scales_times_but_not_the_request_mix() {
        let slow = generate_arrivals(&ArrivalProfile::Poisson { rate_qps: 10.0 }, 300, 4, 16, 3);
        let fast = generate_arrivals(&ArrivalProfile::Poisson { rate_qps: 100.0 }, 300, 4, 16, 3);
        for (s, f) in slow.iter().zip(&fast) {
            assert_eq!((s.tenant, s.template), (f.tenant, f.template));
            assert!((s.t_s / f.t_s - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn arrival_times_are_strictly_increasing() {
        for p in [
            ArrivalProfile::Poisson { rate_qps: 40.0 },
            ArrivalProfile::Bursty {
                rate_qps: 40.0,
                burst_factor: 8.0,
                burst_fraction: 0.3,
            },
            ArrivalProfile::Diurnal {
                rate_qps: 40.0,
                amplitude: 0.8,
                period_s: 5.0,
            },
        ] {
            p.validate().unwrap();
            let arrivals = generate_arrivals(&p, 500, 8, 32, 11);
            for w in arrivals.windows(2) {
                assert!(w[1].t_s > w[0].t_s, "{}: times must increase", p.name());
            }
            assert!(arrivals.iter().all(|a| a.tenant < 8 && a.template < 32));
        }
    }

    #[test]
    fn tenants_mostly_stay_in_their_working_set() {
        let p = ArrivalProfile::Poisson { rate_qps: 50.0 };
        let arrivals = generate_arrivals(&p, 2000, 4, 16, 5);
        // Working sets are 4 templates wide; at most the cold fraction
        // (plus noise) should stray outside.
        let strays = arrivals
            .iter()
            .filter(|a| {
                let base = a.tenant * 4;
                !(base..base + 4).contains(&a.template)
            })
            .count();
        assert!(
            strays < 2000 / 5,
            "too many out-of-working-set picks: {strays}"
        );
    }

    #[test]
    fn degenerate_profiles_are_rejected() {
        assert!(ArrivalProfile::Poisson { rate_qps: 0.0 }
            .validate()
            .is_err());
        assert!(ArrivalProfile::Bursty {
            rate_qps: 10.0,
            burst_factor: 0.5,
            burst_fraction: 0.2
        }
        .validate()
        .is_err());
        assert!(ArrivalProfile::Diurnal {
            rate_qps: 10.0,
            amplitude: 1.0,
            period_s: 60.0
        }
        .validate()
        .is_err());
    }
}
