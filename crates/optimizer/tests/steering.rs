//! Integration tests of the optimizer's steering surface: the knob space
//! the plan explorer relies on, and the coarse model's day-dependent
//! beliefs.

use mcsim_catalog::workmodel::WorkParams;
use mcsim_catalog::{ProjectId, ProjectProfile};
use mcsim_optimizer::{CoarseCostModel, Knobs, NativeOptimizer, OptimizerFlags};
use mcsim_plan::{Operator, PlanSignature};

fn project() -> mcsim_catalog::Project {
    let mut prof = ProjectProfile::evaluation_project(2).unwrap();
    prof.n_tables = 24;
    prof.n_temp_tables = 2;
    prof.n_columns = 170;
    prof.n_templates = 12;
    prof.generate(ProjectId(2))
}

#[test]
fn prefer_merge_join_forces_merge_everywhere() {
    let p = project();
    let opt = NativeOptimizer::new(&p.catalog);
    let knobs = Knobs {
        flags: OptimizerFlags {
            prefer_merge_join: true,
            ..OptimizerFlags::default()
        },
        card_scale: 1.0,
    };
    for q in p.workload_for_day(0).iter().take(15) {
        let plan = opt.optimize(q, &knobs);
        let hash_joins = plan.count_ops(|o| {
            matches!(
                o,
                Operator::Join {
                    algo: mcsim_plan::op::JoinAlgo::Hash,
                    ..
                }
            )
        });
        assert_eq!(hash_joins, 0, "prefer_merge_join must eliminate hash joins");
    }
}

#[test]
fn broadcast_flag_unlocks_more_broadcasts_than_default() {
    let p = project();
    let opt = NativeOptimizer::new(&p.catalog);
    let count = |flags: OptimizerFlags| -> usize {
        p.workload_for_day(0)
            .iter()
            .take(25)
            .map(|q| {
                opt.optimize(
                    q,
                    &Knobs {
                        flags,
                        card_scale: 1.0,
                    },
                )
                .count_ops(|o| {
                    matches!(
                        o,
                        Operator::Join {
                            algo: mcsim_plan::op::JoinAlgo::Broadcast,
                            ..
                        }
                    )
                })
            })
            .sum()
    };
    let default = count(OptimizerFlags::default());
    let unlocked = count(OptimizerFlags {
        enable_broadcast_join: true,
        ..OptimizerFlags::default()
    });
    assert!(
        unlocked > default,
        "flag should unlock broadcasts: {unlocked} vs {default}"
    );
}

#[test]
fn coarse_beliefs_change_across_statistics_epochs() {
    let p = project();
    let params = WorkParams::default();
    let table = p
        .catalog
        .tables()
        .find(|t| t.stale_drift > 0.0)
        .expect("drifting table");
    let day0 = CoarseCostModel::new(&p.catalog, &params)
        .with_day(0)
        .believed_rows(table.id);
    let mut changed = false;
    for day in (3..40).step_by(3) {
        let belief = CoarseCostModel::new(&p.catalog, &params)
            .with_day(day)
            .believed_rows(table.id);
        if (belief - day0).abs() / day0.max(1.0) > 0.05 {
            changed = true;
            break;
        }
    }
    assert!(changed, "stale beliefs should drift across epochs");
}

#[test]
fn rough_cost_orders_plans_consistently_with_knobs() {
    // The rough cost used by the explorer's top-k must be finite and
    // positive for every steered plan.
    let p = project();
    let opt = NativeOptimizer::new(&p.catalog);
    for q in p.workload_for_day(1).iter().take(10) {
        for i in 0..OptimizerFlags::COUNT {
            let knobs = Knobs {
                flags: OptimizerFlags::default().toggled(i),
                card_scale: 1.0,
            };
            let plan = opt.optimize(q, &knobs);
            let cost = opt.rough_cost(&plan, &knobs);
            assert!(cost.is_finite() && cost > 0.0);
        }
    }
}

#[test]
fn distinct_card_scales_produce_valid_and_sometimes_distinct_plans() {
    let p = project();
    let opt = NativeOptimizer::new(&p.catalog);
    let mut any_changed = false;
    for q in p
        .workload_for_days(0, 4)
        .iter()
        .filter(|q| q.table_count() >= 3)
        .take(25)
    {
        let base = opt.optimize(q, &Knobs::default());
        for scale in [0.25, 4.0] {
            let plan = opt.optimize(
                q,
                &Knobs {
                    flags: OptimizerFlags::default(),
                    card_scale: scale,
                },
            );
            assert!(plan.validate().is_ok());
            if PlanSignature::of(&plan) != PlanSignature::of(&base) {
                any_changed = true;
            }
        }
    }
    assert!(
        any_changed,
        "cardinality scaling should steer some join orders"
    );
}
