//! Query optimization: DP join ordering, cost-based implementation
//! selection, exchange insertion, aggregation placement.

use crate::cost::CoarseCostModel;
use crate::flags::Knobs;
use mcsim_catalog::selectivity::NodeCard;
use mcsim_catalog::workmodel::{operator_work, WorkContext, WorkParams};
use mcsim_catalog::{CardinalityModel, Catalog, QuerySpec};
use mcsim_plan::op::{AggAlgo, ExchangeKind, JoinAlgo, JoinKind, Operator};
use mcsim_plan::{ColumnId, NodeId, PlanTree};

/// Estimated build-side row count below which broadcast joins are considered
/// when the flag unlocks them.
const BROADCAST_THRESHOLD: f64 = 100_000.0;
/// Conservative threshold the *default* configuration always applies:
/// tiny builds are broadcast even in production, so broadcast joins appear
/// in historical default plans (just far less often than the flag allows).
const BROADCAST_DEFAULT_THRESHOLD: f64 = 5_000.0;
/// Builds estimated above this are spooled even by the default
/// configuration (materialization for re-execution robustness).
const SPOOL_DEFAULT_THRESHOLD: f64 = 1.0e7;

/// MaxCompute's native cost-based optimizer (simulated).
#[derive(Debug, Clone)]
pub struct NativeOptimizer<'a> {
    catalog: &'a Catalog,
    params: WorkParams,
}

/// One join in the DP-selected order.
#[derive(Debug, Clone)]
enum Recipe {
    Leaf(usize),
    Join {
        left: Box<Recipe>,
        right: Box<Recipe>,
        edge: usize,
    },
}

impl<'a> NativeOptimizer<'a> {
    /// Creates an optimizer over `catalog` with default work-model constants.
    pub fn new(catalog: &'a Catalog) -> Self {
        NativeOptimizer {
            catalog,
            params: WorkParams::default(),
        }
    }

    /// Overrides the work-model constants.
    pub fn with_params(catalog: &'a Catalog, params: WorkParams) -> Self {
        NativeOptimizer { catalog, params }
    }

    /// The work-model constants in use.
    pub fn params(&self) -> &WorkParams {
        &self.params
    }

    /// The catalog this optimizer reads (stale) metadata from.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// The optimizer's rough cost estimate for an arbitrary plan under
    /// `knobs` (used by the plan explorer's top-k pre-selection).
    pub fn rough_cost(&self, plan: &PlanTree, knobs: &Knobs) -> f64 {
        CoarseCostModel::new(self.catalog, &self.params)
            .with_card_scale(knobs.card_scale)
            .rough_cost(plan)
    }

    /// Compiles `query` into a physical plan under the given knobs.
    ///
    /// With [`Knobs::default`] this produces the *default plan*; other knob
    /// settings produce the steered candidate plans of the plan explorer.
    ///
    /// # Panics
    ///
    /// Panics if the query references zero tables.
    pub fn optimize(&self, query: &QuerySpec, knobs: &Knobs) -> PlanTree {
        assert!(!query.tables.is_empty(), "query must reference a table");
        mcsim_obs::counter("optimizer.plans_built", 1);
        let model = CoarseCostModel::new(self.catalog, &self.params)
            .with_card_scale(knobs.card_scale)
            .with_day(query.day);

        // Leaf estimates (stale rows × default selectivities).
        let leaf_est: Vec<f64> = query
            .tables
            .iter()
            .map(|t| model.believed_rows(t.table) * model.selectivity(&t.predicate))
            .collect();

        let dp_timer = mcsim_obs::enabled().then(mcsim_obs::Timer::start);
        let recipe = self.join_order(query, &leaf_est, &model);
        if let Some(t) = dp_timer {
            t.observe_as("optimizer.dp_seconds");
        }

        let mut plan = PlanTree::new();
        let (mut root, mut rows, _) =
            self.build_recipe(&mut plan, query, &recipe, &leaf_est, knobs, &model);

        // Aggregation.
        if query.has_aggregation() {
            let gather = query.group_by.is_empty();
            let exchange = if gather {
                Operator::exchange(ExchangeKind::Gather, vec![])
            } else {
                Operator::exchange(ExchangeKind::HashPartition, query.group_by.clone())
            };
            root = plan.unary(exchange, root);
            let groups_est = if gather { 1.0 } else { (rows * 0.1).max(1.0) };
            let algo = self.choose_agg_algo(rows, groups_est, query, knobs);
            root = plan.unary(
                Operator::Aggregate {
                    algo,
                    funcs: query.aggs.iter().map(|(f, _)| *f).collect(),
                    agg_columns: query.aggs.iter().map(|(_, c)| *c).collect(),
                    group_by: query.group_by.clone(),
                },
                root,
            );
            rows = groups_est;
        }

        // Limit.
        if let Some(n) = query.limit {
            root = plan.unary(Operator::Limit { n }, root);
            rows = rows.min(n as f64);
        }
        let _ = rows;

        // Gather the result and sink it.
        root = plan.unary(Operator::exchange(ExchangeKind::Gather, vec![]), root);
        root = plan.unary(Operator::Sink, root);
        plan.set_root(root);
        debug_assert!(plan.validate().is_ok());
        plan
    }

    /// Dynamic-programming join ordering over connected subsets, minimizing
    /// the sum of estimated intermediate result sizes.
    fn join_order(&self, query: &QuerySpec, leaf_est: &[f64], model: &CoarseCostModel) -> Recipe {
        let n = query.tables.len();
        if n == 1 {
            return Recipe::Leaf(0);
        }
        assert!(n <= 16, "join DP supports up to 16 tables");
        let full: u32 = (1u32 << n) - 1;

        #[derive(Clone)]
        struct Entry {
            rows: f64,
            cost: f64,
            split: Option<(u32, u32, usize)>,
        }
        let mut best: Vec<Option<Entry>> = vec![None; (full + 1) as usize];
        for (i, &est) in leaf_est.iter().enumerate() {
            best[1 << i] = Some(Entry {
                rows: est,
                cost: 0.0,
                split: None,
            });
        }

        for mask in 1..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            // Enumerate proper submasks.
            let mut sub = (mask - 1) & mask;
            while sub != 0 {
                let other = mask & !sub;
                if sub < other {
                    // each unordered split visited once
                    sub = (sub - 1) & mask;
                    continue;
                }
                if let (Some(l), Some(r)) =
                    (best[sub as usize].clone(), best[other as usize].clone())
                {
                    // Find an edge connecting the two sides.
                    for (ei, e) in query.joins.iter().enumerate() {
                        let lm = 1u32 << e.left;
                        let rm = 1u32 << e.right;
                        let connects = (sub & lm != 0 && other & rm != 0)
                            || (sub & rm != 0 && other & lm != 0);
                        if !connects {
                            continue;
                        }
                        let rows =
                            model.join_output(e.kind, l.rows, r.rows, mask.count_ones() as usize);
                        let cost = l.cost + r.cost + rows;
                        let better = best[mask as usize]
                            .as_ref()
                            .map(|b| cost < b.cost)
                            .unwrap_or(true);
                        if better {
                            best[mask as usize] = Some(Entry {
                                rows,
                                cost,
                                split: Some((sub, other, ei)),
                            });
                        }
                    }
                }
                sub = (sub - 1) & mask;
            }
        }

        fn extract(best: &[Option<Entry>], mask: u32) -> Recipe {
            let e = best[mask as usize]
                .as_ref()
                .expect("join graph must be connected");
            match e.split {
                None => Recipe::Leaf(mask.trailing_zeros() as usize),
                Some((l, r, edge)) => Recipe::Join {
                    left: Box::new(extract(best, l)),
                    right: Box::new(extract(best, r)),
                    edge,
                },
            }
        }
        extract(&best, full)
    }

    /// Recursively materializes a recipe into plan nodes.
    ///
    /// Returns `(node, estimated_rows, is_bare_scan)`.
    fn build_recipe(
        &self,
        plan: &mut PlanTree,
        query: &QuerySpec,
        recipe: &Recipe,
        leaf_est: &[f64],
        knobs: &Knobs,
        model: &CoarseCostModel,
    ) -> (NodeId, f64, bool) {
        match recipe {
            Recipe::Leaf(i) => {
                let node = self.build_scan(plan, query, *i, knobs);
                (node, leaf_est[*i], true)
            }
            Recipe::Join { left, right, edge } => {
                let (ln, lrows, lbare) =
                    self.build_recipe(plan, query, left, leaf_est, knobs, model);
                let (rn, rrows, rbare) =
                    self.build_recipe(plan, query, right, leaf_est, knobs, model);
                let e = &query.joins[*edge];

                // Which side holds the edge's left table?
                let left_tables = collect_tables(left);
                let left_has_edge_left = left_tables.contains(&e.left);
                let (lkey, rkey) = if left_has_edge_left {
                    (e.left_col, e.right_col)
                } else {
                    (e.right_col, e.left_col)
                };
                let kind = orient_kind(e.kind, left_has_edge_left);

                // Probe = larger estimated side goes left.
                let (
                    probe,
                    probe_rows,
                    probe_key,
                    probe_bare,
                    build,
                    build_rows,
                    build_key,
                    build_bare,
                    kind,
                ) = if lrows >= rrows {
                    (ln, lrows, lkey, lbare, rn, rrows, rkey, rbare, kind)
                } else {
                    (
                        rn,
                        rrows,
                        rkey,
                        rbare,
                        ln,
                        lrows,
                        lkey,
                        lbare,
                        flip_kind(kind),
                    )
                };

                let algo = self.choose_join_algo(probe_rows, build_rows, knobs);
                mcsim_obs::counter(
                    match algo {
                        JoinAlgo::Broadcast => "optimizer.join_algo.broadcast",
                        JoinAlgo::Merge => "optimizer.join_algo.merge",
                        _ => "optimizer.join_algo.hash",
                    },
                    1,
                );

                // Exchange insertion.
                let (probe_in, build_in) = match algo {
                    JoinAlgo::Broadcast => {
                        let b =
                            plan.unary(Operator::exchange(ExchangeKind::Broadcast, vec![]), build);
                        (probe, b)
                    }
                    JoinAlgo::Merge => {
                        let p = plan.unary(
                            Operator::exchange(ExchangeKind::RangePartition, vec![probe_key]),
                            probe,
                        );
                        let b = plan.unary(
                            Operator::exchange(ExchangeKind::RangePartition, vec![build_key]),
                            build,
                        );
                        (p, b)
                    }
                    _ => {
                        let p = if knobs.flags.aggressive_shuffle_removal && probe_bare {
                            mcsim_obs::counter("optimizer.rule.shuffle_removed", 1);
                            probe // gamble: read in place, may be skewed
                        } else {
                            plan.unary(
                                Operator::exchange(ExchangeKind::HashPartition, vec![probe_key]),
                                probe,
                            )
                        };
                        let b = if knobs.flags.aggressive_shuffle_removal && build_bare {
                            mcsim_obs::counter("optimizer.rule.shuffle_removed", 1);
                            build
                        } else {
                            plan.unary(
                                Operator::exchange(ExchangeKind::HashPartition, vec![build_key]),
                                build,
                            )
                        };
                        (p, b)
                    }
                };

                // Spool the build side when requested (the default
                // configuration spools only huge builds).
                let build_est = probe_rows.min(build_rows);
                let spool_wanted =
                    knobs.flags.enable_spool_reuse || build_est > SPOOL_DEFAULT_THRESHOLD;
                let build_in = if spool_wanted && algo != JoinAlgo::Broadcast {
                    mcsim_obs::counter("optimizer.rule.spool_inserted", 1);
                    plan.unary(
                        Operator::Spool {
                            shared_id: *edge as u32,
                        },
                        build_in,
                    )
                } else {
                    build_in
                };

                let node = plan.binary(
                    Operator::join(kind, algo, vec![probe_key], vec![build_key]),
                    probe_in,
                    build_in,
                );
                let out = model.join_output(
                    e.kind,
                    probe_rows,
                    build_rows,
                    left_tables.len() + collect_tables(right).len(),
                );
                (node, out, false)
            }
        }
    }

    fn build_scan(
        &self,
        plan: &mut PlanTree,
        query: &QuerySpec,
        i: usize,
        knobs: &Knobs,
    ) -> NodeId {
        let tref = &query.tables[i];
        let meta = self.catalog.table(tref.table);
        let parts_total = meta.map(|m| m.partitions).unwrap_or(1);
        if knobs.flags.filter_pushdown && !tref.predicate.is_true() {
            // Partition pruning from partition-level metadata (min/max per
            // partition is available even without histograms): the fraction
            // of partitions that can contain matches shrinks sub-linearly
            // with true selectivity.
            mcsim_obs::counter("optimizer.rule.filter_pushdown", 1);
            let true_sel = CardinalityModel::new(self.catalog).selectivity(&tref.predicate);
            let accessed =
                ((parts_total as f64 * true_sel.powf(0.7)).ceil() as u32).clamp(1, parts_total);
            plan.leaf(Operator::TableScan {
                table: tref.table,
                partitions_accessed: accessed,
                partitions_total: parts_total,
                columns: tref.columns.clone(),
                predicate: tref.predicate.clone(),
            })
        } else {
            let scan = plan.leaf(Operator::table_scan(
                tref.table,
                parts_total,
                parts_total,
                tref.columns.clone(),
            ));
            if tref.predicate.is_true() {
                scan
            } else {
                plan.unary(
                    Operator::Calc {
                        predicate: tref.predicate.clone(),
                        columns: tref.columns.clone(),
                    },
                    scan,
                )
            }
        }
    }

    /// Cost-based physical join selection under the flag gates.
    fn choose_join_algo(&self, probe_rows: f64, build_rows: f64, knobs: &Knobs) -> JoinAlgo {
        let card = |r: f64| NodeCard {
            input_rows: r,
            output_rows: r,
            width: 2.0,
        };
        let out = card(probe_rows.max(build_rows));
        let children = [card(probe_rows), card(build_rows)];
        let ctx = WorkContext::default();
        let w = |algo: JoinAlgo| {
            operator_work(
                &Operator::join(JoinKind::Inner, algo, vec![0], vec![0]),
                &out,
                &children,
                ctx,
                &self.params,
            )
        };
        if knobs.flags.prefer_merge_join {
            return JoinAlgo::Merge;
        }
        let mut best = (JoinAlgo::Hash, w(JoinAlgo::Hash));
        {
            let mw = w(JoinAlgo::Merge);
            if mw < best.1 {
                best = (JoinAlgo::Merge, mw);
            }
        }
        let bc_threshold = if knobs.flags.enable_broadcast_join {
            BROADCAST_THRESHOLD
        } else {
            BROADCAST_DEFAULT_THRESHOLD
        };
        if build_rows < bc_threshold {
            // Broadcast also avoids shuffling the probe side; credit that.
            let shuffle_saving = probe_rows * 0.07;
            let bw = w(JoinAlgo::Broadcast) - shuffle_saving;
            if bw < best.1 {
                best = (JoinAlgo::Broadcast, bw);
            }
        }
        best.0
    }

    fn choose_agg_algo(
        &self,
        input_rows: f64,
        groups: f64,
        query: &QuerySpec,
        knobs: &Knobs,
    ) -> AggAlgo {
        if knobs.flags.prefer_sort_aggregate {
            return AggAlgo::Sort;
        }
        let card_in = NodeCard {
            input_rows,
            output_rows: input_rows,
            width: 2.0,
        };
        let card_out = NodeCard {
            input_rows,
            output_rows: groups,
            width: 2.0,
        };
        let mk = |algo: AggAlgo| Operator::Aggregate {
            algo,
            funcs: query.aggs.iter().map(|(f, _)| *f).collect(),
            agg_columns: query.aggs.iter().map(|(_, c)| *c).collect(),
            group_by: query.group_by.clone(),
        };
        let hash = operator_work(
            &mk(AggAlgo::Hash),
            &card_out,
            &[card_in],
            WorkContext::default(),
            &self.params,
        );
        let sort = operator_work(
            &mk(AggAlgo::Sort),
            &card_out,
            &[card_in],
            WorkContext::default(),
            &self.params,
        );
        if sort < hash {
            AggAlgo::Sort
        } else {
            AggAlgo::Hash
        }
    }
}

fn collect_tables(r: &Recipe) -> Vec<usize> {
    match r {
        Recipe::Leaf(i) => vec![*i],
        Recipe::Join { left, right, .. } => {
            let mut v = collect_tables(left);
            v.extend(collect_tables(right));
            v
        }
    }
}

/// Adjusts an edge's join kind to the plan's (left, right) orientation.
fn orient_kind(kind: JoinKind, left_has_edge_left: bool) -> JoinKind {
    if left_has_edge_left {
        kind
    } else {
        flip_kind(kind)
    }
}

fn flip_kind(kind: JoinKind) -> JoinKind {
    match kind {
        JoinKind::LeftOuter => JoinKind::RightOuter,
        JoinKind::RightOuter => JoinKind::LeftOuter,
        other => other,
    }
}

/// Convenience: columns a side of a join exposes (used in tests).
#[doc(hidden)]
pub fn _join_keys(op: &Operator) -> Option<(Vec<ColumnId>, Vec<ColumnId>)> {
    if let Operator::Join {
        left_keys,
        right_keys,
        ..
    } = op
    {
        Some((left_keys.clone(), right_keys.clone()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::OptimizerFlags;
    use mcsim_catalog::{ProjectId, ProjectProfile};
    use mcsim_plan::PlanSignature;

    fn project() -> mcsim_catalog::Project {
        let mut prof = ProjectProfile::evaluation_project(1).unwrap();
        prof.n_tables = 30;
        prof.n_temp_tables = 4;
        prof.n_columns = 240;
        prof.n_templates = 20;
        prof.n_query_day0 = 30.0;
        prof.generate(ProjectId(1))
    }

    #[test]
    fn default_plans_are_valid_for_a_whole_day() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        for q in p.workload_for_day(0) {
            let plan = opt.optimize(&q, &Knobs::default());
            assert!(plan.validate().is_ok(), "invalid plan for query {}", q.id);
            // Every plan ends in Gather + Sink.
            assert!(matches!(plan.op(plan.root()), Operator::Sink));
        }
    }

    #[test]
    fn all_flag_toggles_produce_valid_plans() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let queries = p.workload_for_day(1);
        for q in queries.iter().take(10) {
            for i in 0..OptimizerFlags::COUNT {
                let knobs = Knobs {
                    flags: OptimizerFlags::default().toggled(i),
                    card_scale: 1.0,
                };
                let plan = opt.optimize(q, &knobs);
                assert!(plan.validate().is_ok(), "flag {i} broke query {}", q.id);
            }
        }
    }

    #[test]
    fn some_flags_change_plans() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let queries = p.workload_for_day(2);
        let mut changed = 0;
        for q in queries.iter().take(30) {
            let default = PlanSignature::of(&opt.optimize(q, &Knobs::default()));
            for i in 0..OptimizerFlags::COUNT {
                let knobs = Knobs {
                    flags: OptimizerFlags::default().toggled(i),
                    card_scale: 1.0,
                };
                if PlanSignature::of(&opt.optimize(q, &knobs)) != default {
                    changed += 1;
                }
            }
        }
        assert!(changed > 10, "flags should steer plans, changed={changed}");
    }

    #[test]
    fn card_scaling_changes_join_orders_sometimes() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let queries: Vec<_> = p
            .workload_for_days(0, 5)
            .into_iter()
            .filter(|q| q.table_count() >= 3)
            .collect();
        let mut changed = 0;
        for q in queries.iter().take(50) {
            let a = PlanSignature::of(&opt.optimize(q, &Knobs::default()));
            let b = PlanSignature::of(&opt.optimize(
                q,
                &Knobs {
                    flags: OptimizerFlags::default(),
                    card_scale: 20.0,
                },
            ));
            if a != b {
                changed += 1;
            }
        }
        assert!(changed > 0, "cardinality scaling should steer some plans");
    }

    #[test]
    fn pushdown_prunes_partitions() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        // Find a query with a filtered multi-partition table.
        let q = p
            .workload_for_days(0, 5)
            .into_iter()
            .find(|q| {
                q.tables.iter().any(|t| {
                    !t.predicate.is_true()
                        && p.catalog
                            .table(t.table)
                            .map(|m| m.partitions > 4)
                            .unwrap_or(false)
                })
            })
            .expect("should find a filtered query");
        let with = opt.optimize(&q, &Knobs::default());
        let without = opt.optimize(
            &q,
            &Knobs {
                flags: OptimizerFlags {
                    filter_pushdown: false,
                    ..OptimizerFlags::default()
                },
                card_scale: 1.0,
            },
        );
        let pruned = |plan: &PlanTree| {
            plan.iter()
                .filter_map(|(_, n)| match &n.op {
                    Operator::TableScan {
                        partitions_accessed,
                        partitions_total,
                        ..
                    } => Some(*partitions_accessed < *partitions_total),
                    _ => None,
                })
                .any(|b| b)
        };
        assert!(pruned(&with));
        assert!(!pruned(&without));
    }

    #[test]
    fn spool_flag_inserts_spools() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let q = p
            .workload_for_day(0)
            .into_iter()
            .find(|q| q.table_count() >= 2)
            .unwrap();
        let knobs = Knobs {
            flags: OptimizerFlags {
                enable_spool_reuse: true,
                ..OptimizerFlags::default()
            },
            card_scale: 1.0,
        };
        let plan = opt.optimize(&q, &knobs);
        assert!(plan.count_ops(|o| matches!(o, Operator::Spool { .. })) > 0);
        let default = opt.optimize(&q, &Knobs::default());
        assert_eq!(
            default.count_ops(|o| matches!(o, Operator::Spool { .. })),
            0
        );
    }

    #[test]
    fn shuffle_removal_drops_exchanges() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let q = p
            .workload_for_day(0)
            .into_iter()
            .find(|q| q.table_count() >= 2)
            .unwrap();
        let default = opt.optimize(&q, &Knobs::default());
        let removed = opt.optimize(
            &q,
            &Knobs {
                flags: OptimizerFlags {
                    aggressive_shuffle_removal: true,
                    ..OptimizerFlags::default()
                },
                card_scale: 1.0,
            },
        );
        let n_ex = |p: &PlanTree| p.count_ops(|o| matches!(o, Operator::Exchange { .. }));
        assert!(n_ex(&removed) < n_ex(&default));
    }

    #[test]
    fn join_keys_belong_to_their_side() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        for q in p.workload_for_day(3).iter().take(20) {
            let plan = opt.optimize(q, &Knobs::default());
            for (id, n) in plan.iter() {
                if let Operator::Join {
                    left_keys,
                    right_keys,
                    ..
                } = &n.op
                {
                    // Collect base tables under each child.
                    let side_tables = |start: NodeId| {
                        let mut tables = Vec::new();
                        let mut stack = vec![start];
                        while let Some(s) = stack.pop() {
                            let node = plan.node(s);
                            if let Operator::TableScan { table, .. } = &node.op {
                                tables.push(*table);
                            }
                            stack.extend(node.children());
                        }
                        tables
                    };
                    let lt = side_tables(plan.node(id).left.unwrap());
                    let rt = side_tables(plan.node(id).right.unwrap());
                    for &k in left_keys {
                        let owner = p.catalog.column(k).unwrap().table;
                        assert!(lt.contains(&owner), "left key {k} not under left side");
                    }
                    for &k in right_keys {
                        let owner = p.catalog.column(k).unwrap().table;
                        assert!(rt.contains(&owner), "right key {k} not under right side");
                    }
                }
            }
        }
    }
}
