//! Tunable optimizer flags and steering knobs.
//!
//! MaxCompute exposes 75 tunable flags across six categories; the paper's
//! plan explorer restricts itself to six flags spanning join, shuffling,
//! spool, and filter-related optimizations, plus Lero-style scaling of
//! estimated cardinalities for subqueries with at least three inputs
//! (Section 3, "Plan Explorer"). This module defines those knobs.

use serde::{Deserialize, Serialize};

/// The six expert-selected boolean optimizer flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OptimizerFlags {
    /// Strongly prefer merge joins over hash joins (join-related). Merge
    /// joins are always *available* to the cost-based choice; this flag
    /// forces them — the steering lever that rescues queries whose hash
    /// builds spill because the native model underestimated them.
    pub prefer_merge_join: bool,
    /// Allow broadcast joins when the build side is estimated small
    /// (join-related; off by default — the conservative production posture).
    pub enable_broadcast_join: bool,
    /// Remove hash-partition exchanges over bare scans, gambling that data
    /// is already usefully partitioned (shuffling-related; can backfire with
    /// skew when the key is not the scan table's primary key).
    pub aggressive_shuffle_removal: bool,
    /// Materialize build sides through spools, damping re-execution cost
    /// under contention (spool-related).
    pub enable_spool_reuse: bool,
    /// Push filters into table scans, enabling partition pruning
    /// (filter-related; on by default).
    pub filter_pushdown: bool,
    /// Force sort-based aggregation instead of comparing hash vs. sort
    /// (physical-implementation-related).
    pub prefer_sort_aggregate: bool,
}

impl Default for OptimizerFlags {
    /// MaxCompute's production defaults.
    fn default() -> Self {
        OptimizerFlags {
            prefer_merge_join: false,
            enable_broadcast_join: false,
            aggressive_shuffle_removal: false,
            enable_spool_reuse: false,
            filter_pushdown: true,
            prefer_sort_aggregate: false,
        }
    }
}

impl OptimizerFlags {
    /// Number of boolean flags.
    pub const COUNT: usize = 6;

    /// The flag vector as booleans (stable order, used by the explorer).
    pub fn as_array(&self) -> [bool; Self::COUNT] {
        [
            self.prefer_merge_join,
            self.enable_broadcast_join,
            self.aggressive_shuffle_removal,
            self.enable_spool_reuse,
            self.filter_pushdown,
            self.prefer_sort_aggregate,
        ]
    }

    /// Builds flags from a boolean vector in [`OptimizerFlags::as_array`]
    /// order.
    pub fn from_array(a: [bool; Self::COUNT]) -> Self {
        OptimizerFlags {
            prefer_merge_join: a[0],
            enable_broadcast_join: a[1],
            aggressive_shuffle_removal: a[2],
            enable_spool_reuse: a[3],
            filter_pushdown: a[4],
            prefer_sort_aggregate: a[5],
        }
    }

    /// Returns a copy with flag `i` (in `as_array` order) toggled.
    pub fn toggled(&self, i: usize) -> Self {
        let mut a = self.as_array();
        a[i] = !a[i];
        Self::from_array(a)
    }
}

/// Everything the plan explorer can steer: flags plus cardinality scaling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Knobs {
    /// Boolean optimizer flags.
    pub flags: OptimizerFlags,
    /// Multiplier applied to estimated cardinalities of subqueries with at
    /// least three base inputs (Lero-style steering). `1.0` = no scaling.
    pub card_scale: f64,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            flags: OptimizerFlags::default(),
            card_scale: 1.0,
        }
    }
}

impl Knobs {
    /// True if these are exactly the production defaults, i.e. the plan they
    /// produce is the *default plan*.
    pub fn is_default(&self) -> bool {
        *self == Knobs::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_flags_are_conservative() {
        let f = OptimizerFlags::default();
        assert!(!f.prefer_merge_join);
        assert!(!f.enable_broadcast_join);
        assert!(!f.aggressive_shuffle_removal);
        assert!(f.filter_pushdown);
    }

    #[test]
    fn array_round_trip() {
        let f = OptimizerFlags::default();
        assert_eq!(OptimizerFlags::from_array(f.as_array()), f);
    }

    #[test]
    fn toggled_flips_exactly_one() {
        let f = OptimizerFlags::default();
        for i in 0..OptimizerFlags::COUNT {
            let t = f.toggled(i);
            let diff = f
                .as_array()
                .iter()
                .zip(t.as_array())
                .filter(|(a, b)| **a != *b)
                .count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn default_knobs_are_recognized() {
        assert!(Knobs::default().is_default());
        let k = Knobs {
            card_scale: 4.0,
            ..Knobs::default()
        };
        assert!(!k.is_default());
    }
}
