//! The native optimizer's coarse, metadata-only cost model.
//!
//! "In their absence \[of statistics\], cost estimation must fall back to
//! coarse, metadata-driven approximations such as based on historical table
//! row counts, which often lead to unreliable plan selection" (Section 2.1).
//!
//! This model mirrors the ground-truth cardinality propagation of
//! [`mcsim_catalog::selectivity`] but substitutes:
//! * **stale row counts** ([`mcsim_catalog::TableMeta::stale_rows`]) for true
//!   ones,
//! * **fixed default selectivities** for true predicate selectivities,
//! * a **unique-key assumption** for join outputs (no NDVs available),
//!
//! and applies the Lero-style cardinality-scaling knob to subqueries with at
//! least three base inputs.

use mcsim_catalog::selectivity::NodeCard;
use mcsim_catalog::workmodel::{plan_work, WorkContext, WorkParams};
use mcsim_catalog::Catalog;
use mcsim_plan::expr::{CmpFn, Predicate};
use mcsim_plan::op::{JoinKind, Operator};
use mcsim_plan::PlanTree;

/// Default selectivity the coarse model assumes per comparison function.
pub fn default_selectivity(op: CmpFn) -> f64 {
    match op {
        CmpFn::Eq => 0.05,
        CmpFn::Ne => 0.95,
        CmpFn::Lt | CmpFn::Le | CmpFn::Gt | CmpFn::Ge | CmpFn::Between => 0.25,
        CmpFn::Like => 0.05,
        CmpFn::In => 0.10,
        CmpFn::IsNull => 0.02,
    }
}

/// The coarse cost model.
#[derive(Debug, Clone, Copy)]
pub struct CoarseCostModel<'a> {
    catalog: &'a Catalog,
    /// Cardinality multiplier for subplans with ≥ 3 base inputs.
    card_scale: f64,
    /// The day whose stale-statistics snapshot the model reads.
    day: i64,
    params: &'a WorkParams,
}

impl<'a> CoarseCostModel<'a> {
    /// Creates a model over `catalog` with no cardinality scaling.
    pub fn new(catalog: &'a Catalog, params: &'a WorkParams) -> Self {
        CoarseCostModel {
            catalog,
            card_scale: 1.0,
            day: 0,
            params,
        }
    }

    /// Reads the stale-statistics snapshot of `day` (beliefs drift as stats
    /// collection lags data modification).
    pub fn with_day(mut self, day: i64) -> Self {
        self.day = day;
        self
    }

    /// Sets the cardinality-scaling knob.
    pub fn with_card_scale(mut self, scale: f64) -> Self {
        self.card_scale = scale.max(1e-3);
        self
    }

    /// Coarse selectivity of a predicate (fixed constants, independence).
    pub fn selectivity(&self, pred: &Predicate) -> f64 {
        match pred {
            Predicate::True => 1.0,
            Predicate::Not(p) => (1.0 - self.selectivity(p)).clamp(0.0, 1.0),
            Predicate::And(a, b) => self.selectivity(a) * self.selectivity(b),
            Predicate::Or(a, b) => {
                let (sa, sb) = (self.selectivity(a), self.selectivity(b));
                (sa + sb - sa * sb).clamp(0.0, 1.0)
            }
            Predicate::Cmp { op, .. } => default_selectivity(*op),
        }
    }

    /// The row count the optimizer believes a table has (stale metadata).
    pub fn believed_rows(&self, table: mcsim_plan::TableId) -> f64 {
        self.catalog
            .table(table)
            .map(|t| t.stale_rows_on(self.day) as f64)
            .unwrap_or(1.0e4)
    }

    /// Coarse join-output estimate: foreign-key containment — the output is
    /// roughly the referencing (larger) side, `max(l, r)` — with the scaling
    /// knob applied to large subqueries. This makes join-*order* decisions
    /// directly sensitive to the (stale) size estimates, which is exactly
    /// how statistics staleness corrupts native plans in production.
    pub fn join_output(&self, kind: JoinKind, l: f64, r: f64, base_inputs: usize) -> f64 {
        let inner = l.max(r);
        let scaled = if base_inputs >= 3 {
            inner * self.card_scale
        } else {
            inner
        };
        match kind {
            JoinKind::Inner => scaled,
            JoinKind::LeftOuter => scaled.max(l),
            JoinKind::RightOuter => scaled.max(r),
            JoinKind::FullOuter => scaled.max(l).max(r),
            JoinKind::Semi => l.min(scaled),
            JoinKind::Anti => (l - l.min(scaled)).max(0.0),
        }
    }

    /// Coarse cardinality annotation of an arbitrary physical plan
    /// (structurally parallel to the ground-truth
    /// [`mcsim_catalog::CardinalityModel::annotate`]).
    pub fn annotate(&self, plan: &PlanTree) -> Vec<NodeCard> {
        let mut cards = vec![NodeCard::default(); plan.len()];
        let mut base_inputs = vec![0usize; plan.len()];
        for id in plan.postorder() {
            let node = plan.node(id);
            let children: Vec<usize> = node.children().collect();
            let n_base: usize = if children.is_empty() {
                1
            } else {
                children.iter().map(|&c| base_inputs[c]).sum()
            };
            base_inputs[id] = n_base;
            let child_cards: Vec<NodeCard> = children.iter().map(|&c| cards[c]).collect();
            cards[id] = self.node_card(&node.op, &child_cards, n_base);
        }
        cards
    }

    fn node_card(&self, op: &Operator, children: &[NodeCard], base_inputs: usize) -> NodeCard {
        let in_rows: f64 = children.iter().map(|c| c.output_rows).sum();
        let in_width: f64 = children
            .iter()
            .map(|c| c.width)
            .fold(0.0, f64::max)
            .max(1.0);
        match op {
            Operator::TableScan {
                table,
                partitions_accessed,
                partitions_total,
                columns,
                predicate,
            } => {
                let rows = self.believed_rows(*table);
                let frac = *partitions_accessed as f64 / (*partitions_total).max(1) as f64;
                let read = rows * frac;
                NodeCard {
                    input_rows: read,
                    output_rows: read * self.selectivity(predicate),
                    width: columns.len().max(1) as f64,
                }
            }
            Operator::Filter { predicate } => NodeCard {
                input_rows: in_rows,
                output_rows: in_rows * self.selectivity(predicate),
                width: in_width,
            },
            Operator::Calc { predicate, columns } => NodeCard {
                input_rows: in_rows,
                output_rows: in_rows * self.selectivity(predicate),
                width: columns.len().max(1) as f64,
            },
            Operator::Project { columns } => NodeCard {
                input_rows: in_rows,
                output_rows: in_rows,
                width: columns.len().max(1) as f64,
            },
            Operator::Join { kind, .. } => {
                let l = children.first().copied().unwrap_or_default();
                let r = children.get(1).copied().unwrap_or_default();
                NodeCard {
                    input_rows: l.output_rows + r.output_rows,
                    output_rows: self.join_output(*kind, l.output_rows, r.output_rows, base_inputs),
                    width: l.width + r.width,
                }
            }
            Operator::Aggregate { group_by, .. } => {
                // No NDVs: assume a fixed grouping reduction factor.
                let groups = if group_by.is_empty() {
                    1.0
                } else {
                    (in_rows * 0.1).max(1.0)
                };
                NodeCard {
                    input_rows: in_rows,
                    output_rows: groups,
                    width: in_width,
                }
            }
            Operator::TopN { n, .. } | Operator::Limit { n } => NodeCard {
                input_rows: in_rows,
                output_rows: in_rows.min(*n as f64),
                width: in_width,
            },
            _ => NodeCard {
                input_rows: in_rows,
                output_rows: in_rows,
                width: in_width,
            },
        }
    }

    /// The optimizer's rough end-to-end cost estimate for `plan` — used to
    /// rank candidate plans and keep the top-k (Section 7.1: "we retain only
    /// the top-5 candidates for each test query based on MaxCompute's rough
    /// cost estimates").
    pub fn rough_cost(&self, plan: &PlanTree) -> f64 {
        let cards = self.annotate(plan);
        plan_work(plan, &cards, |_| WorkContext::default(), self.params) * self.params.work_to_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_catalog::column::{ColumnDistribution, ColumnMeta};
    use mcsim_catalog::table::TableMeta;
    use mcsim_catalog::ProjectId;
    use mcsim_plan::expr::Literal;
    use mcsim_plan::op::JoinAlgo;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut t0 = TableMeta::new(0, ProjectId(0), 1_000_000, 8, vec![0, 1], 0, None);
        t0.stale_rows = 10_000; // badly stale: optimizer thinks it is small
        cat.add_table(
            t0,
            vec![
                ColumnMeta::new(0, 0, 1_000_000, ColumnDistribution::Uniform),
                ColumnMeta::new(1, 0, 100, ColumnDistribution::Uniform),
            ],
        );
        let t1 = TableMeta::new(1, ProjectId(0), 50_000, 1, vec![10], 0, None);
        cat.add_table(
            t1,
            vec![ColumnMeta::new(10, 1, 50_000, ColumnDistribution::Uniform)],
        );
        cat
    }

    #[test]
    fn uses_stale_rows_not_truth() {
        let cat = catalog();
        let wp = WorkParams::default();
        let m = CoarseCostModel::new(&cat, &wp);
        assert_eq!(m.believed_rows(0), 10_000.0);
        assert_eq!(m.believed_rows(1), 50_000.0);
    }

    #[test]
    fn fixed_selectivities_ignore_data() {
        let cat = catalog();
        let wp = WorkParams::default();
        let m = CoarseCostModel::new(&cat, &wp);
        // True eq-selectivity on col 1 is 1/100; coarse always says 0.05.
        let p = Predicate::cmp(CmpFn::Eq, 1, Literal::Int(3));
        assert!((m.selectivity(&p) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn card_scale_applies_only_to_big_subqueries() {
        let cat = catalog();
        let wp = WorkParams::default();
        let m = CoarseCostModel::new(&cat, &wp).with_card_scale(10.0);
        let two = m.join_output(JoinKind::Inner, 1000.0, 100.0, 2);
        let three = m.join_output(JoinKind::Inner, 1000.0, 100.0, 3);
        assert!((three / two - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rough_cost_ranks_plans() {
        let cat = catalog();
        let wp = WorkParams::default();
        let m = CoarseCostModel::new(&cat, &wp);
        // Scanning all 8 partitions must look costlier than scanning 1.
        let mk = |parts: u32| {
            let mut t = PlanTree::new();
            let s = t.leaf(Operator::table_scan(0, parts, 8, vec![0, 1]));
            t.set_root(s);
            t
        };
        assert!(m.rough_cost(&mk(8)) > m.rough_cost(&mk(1)));
    }

    #[test]
    fn annotate_handles_joins_and_aggregates() {
        let cat = catalog();
        let wp = WorkParams::default();
        let m = CoarseCostModel::new(&cat, &wp);
        let mut t = PlanTree::new();
        let a = t.leaf(Operator::table_scan(0, 8, 8, vec![0]));
        let b = t.leaf(Operator::table_scan(1, 1, 1, vec![10]));
        let j = t.binary(
            Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![0], vec![10]),
            a,
            b,
        );
        let g = t.unary(
            Operator::Aggregate {
                algo: mcsim_plan::op::AggAlgo::Hash,
                funcs: vec![mcsim_plan::op::AggFunc::Count],
                agg_columns: vec![0],
                group_by: vec![1],
            },
            j,
        );
        t.set_root(g);
        let cards = m.annotate(&t);
        // Join believes max(10k, 50k) = 50k rows out (fk containment).
        assert!((cards[j].output_rows - 50_000.0).abs() < 1.0);
        // Aggregate: fixed 10% reduction.
        assert!((cards[g].output_rows - 5_000.0).abs() < 1.0);
    }
}
