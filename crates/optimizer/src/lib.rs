//! # mcsim-optimizer
//!
//! A simulator of MaxCompute's native cost-based query optimizer.
//!
//! The optimizer compiles a [`mcsim_catalog::QuerySpec`] into a physical
//! [`mcsim_plan::PlanTree`]: dynamic-programming join ordering, cost-based
//! physical implementation selection, exchange insertion, and aggregation
//! placement. Crucially — and this is the paper's Challenge 2 — its cost
//! model is *coarse*: it sees only stale table row counts and fixed default
//! selectivities, never histograms or NDVs, so its decisions are plausible
//! but often wrong. The gap between its default plan and the best plan
//! reachable through its tuning [`flags`] is exactly the improvement space
//! `D(M_d)` that LOAM harvests.
//!
//! ## Example
//!
//! ```
//! use mcsim_catalog::{ProjectProfile, ProjectId};
//! use mcsim_optimizer::{NativeOptimizer, Knobs};
//!
//! let project = ProjectProfile::evaluation_project(1).unwrap().generate(ProjectId(1));
//! let query = &project.workload_for_day(0)[0];
//! let opt = NativeOptimizer::new(&project.catalog);
//! let plan = opt.optimize(query, &Knobs::default());
//! assert!(plan.validate().is_ok());
//! ```

pub mod cost;
pub mod flags;
pub mod optimize;

pub use cost::CoarseCostModel;
pub use flags::{Knobs, OptimizerFlags};
pub use optimize::NativeOptimizer;
