//! Property tests on workload generation: determinism, structural sanity of
//! query specs, and the statistical knobs that drive the evaluation.

use mcsim_catalog::{ProjectId, ProjectProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn workloads_are_deterministic_per_seed(seed in 0u64..5000, day in 0i64..20) {
        let a = ProjectProfile::random(seed).generate(ProjectId(0));
        let b = ProjectProfile::random(seed).generate(ProjectId(0));
        let wa = a.workload_for_day(day);
        let wb = b.workload_for_day(day);
        prop_assert_eq!(wa.len(), wb.len());
        if !wa.is_empty() {
            prop_assert_eq!(&wa[0], &wb[0]);
            prop_assert_eq!(wa.last().unwrap(), wb.last().unwrap());
        }
    }

    #[test]
    fn query_specs_are_structurally_sound(seed in 0u64..5000) {
        let p = ProjectProfile::random(seed).generate(ProjectId(1));
        for q in p.workload_for_day(0).iter().take(8) {
            prop_assert!(q.is_connected());
            prop_assert!(q.table_count() >= 1 && q.table_count() <= 6);
            // Join edges reference valid table indices.
            for e in &q.joins {
                prop_assert!(e.left < q.tables.len());
                prop_assert!(e.right < q.tables.len());
                prop_assert!(e.left != e.right);
            }
            // Accessed columns belong to their table.
            for t in &q.tables {
                for &c in &t.columns {
                    let owner = p.catalog.column(c).map(|m| m.table);
                    prop_assert_eq!(owner, Some(t.table));
                }
            }
        }
    }

    #[test]
    fn stale_rows_drift_is_bounded_by_misestimation(seed in 0u64..2000, day in 0i64..60) {
        let profile = ProjectProfile::random(seed);
        let p = profile.generate(ProjectId(2));
        for t in p.catalog.tables().take(10) {
            let stale = t.stale_rows_on(day) as f64;
            let truth = t.rows as f64;
            let max_factor = 10f64.powf(profile.misestimation + 1e-9);
            prop_assert!(
                stale <= truth * max_factor * 1.001 && stale >= truth / max_factor / 1.001,
                "table {} day {day}: stale {stale} truth {truth} factor {max_factor}",
                t.id
            );
        }
    }

    #[test]
    fn stale_snapshots_are_piecewise_constant(seed in 0u64..1000) {
        let p = ProjectProfile::random(seed).generate(ProjectId(3));
        let t = p.catalog.tables().next().expect("at least one table");
        // Within a refresh epoch the belief must not change day to day.
        let mut changes = 0;
        let mut prev = t.stale_rows_on(0);
        for day in 1..30 {
            let cur = t.stale_rows_on(day);
            if cur != prev {
                changes += 1;
            }
            prev = cur;
        }
        // Refresh every ~3 days ⇒ at most ~10 changes over 30 days.
        prop_assert!(changes <= 11, "too many changes: {changes}");
    }
}

#[test]
fn evaluation_projects_have_expected_improvement_ordering_knobs() {
    // Profiles are ordered by the misestimation/filter-strength knobs that
    // drive improvement space: P2 and P5 are the high-gain projects.
    let profiles: Vec<_> = (1..=5)
        .map(|n| ProjectProfile::evaluation_project(n).unwrap())
        .collect();
    assert!(profiles[1].misestimation > profiles[2].misestimation); // P2 > P3
    assert!(profiles[4].misestimation > profiles[3].misestimation); // P5 > P4
    assert!(profiles[1].filter_strength > profiles[2].filter_strength);
    assert!(profiles[4].filter_strength > profiles[2].filter_strength);
}

#[test]
fn temp_tables_have_short_lifespans() {
    let prof = ProjectProfile::evaluation_project(1).unwrap();
    let p = prof.generate(ProjectId(9));
    let short = p.catalog.tables().filter(|t| !t.is_long_lived(30)).count();
    assert!(
        short >= prof.n_temp_tables / 2,
        "temp tables exist: {short}"
    );
    let long = p.catalog.tables().filter(|t| t.is_long_lived(30)).count();
    assert!(
        long >= prof.n_tables / 2,
        "permanent tables dominate: {long}"
    );
}
