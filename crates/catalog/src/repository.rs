//! The historical query repository.
//!
//! Upon query completion, MaxCompute logs the SQL statement, physical plan,
//! execution environment, end-to-end cost, and latency into a per-project
//! historical query repository (Section 2.1, step 4). LOAM trains entirely
//! from this repository — "as a key feature of data warehouses, MaxCompute
//! preserves extensive historical data for long-term analysis".

use crate::env::EnvMetrics;
use crate::project::ProjectId;
use mcsim_plan::{PlanSignature, PlanTree};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One logged query execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionRecord {
    /// Query id within the project's history.
    pub query_id: u64,
    /// Template the query came from (for recurring-query analyses).
    pub template: u32,
    /// Owning project.
    pub project: ProjectId,
    /// Submission day.
    pub day: i64,
    /// The executed physical plan.
    pub plan: PlanTree,
    /// Structural fingerprint of the plan.
    pub signature: PlanSignature,
    /// Per-stage environment metrics, averaged over the stage's execution
    /// window and its allocated machines (indexed like
    /// [`mcsim_plan::stage::StageGraph::stages`]).
    pub stage_envs: Vec<EnvMetrics>,
    /// End-to-end CPU cost (the metric LOAM predicts).
    pub cpu_cost: f64,
    /// End-to-end latency (noisier; logged but not modeled).
    pub latency: f64,
    /// True if this was the native optimizer's default plan (as opposed to a
    /// knob-steered candidate executed by LOAM).
    pub is_default: bool,
}

/// A per-project log of executed queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryRepository {
    records: Vec<ExecutionRecord>,
}

impl QueryRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: ExecutionRecord) {
        self.records.push(record);
    }

    /// Number of logged executions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records.
    pub fn records(&self) -> &[ExecutionRecord] {
        &self.records
    }

    /// Records submitted in `[from, to)`.
    pub fn by_day_range(&self, from: i64, to: i64) -> Vec<&ExecutionRecord> {
        self.records
            .iter()
            .filter(|r| r.day >= from && r.day < to)
            .collect()
    }

    /// Deduplicated records: for each distinct plan signature keep the most
    /// recent execution ("we collect deduplicated queries over 30 consecutive
    /// days", Section 7.1).
    pub fn deduplicated(&self) -> Vec<&ExecutionRecord> {
        let mut latest: HashMap<PlanSignature, &ExecutionRecord> = HashMap::new();
        for r in &self.records {
            latest
                .entry(r.signature)
                .and_modify(|cur| {
                    if r.day > cur.day {
                        *cur = r;
                    }
                })
                .or_insert(r);
        }
        let mut out: Vec<&ExecutionRecord> = latest.into_values().collect();
        out.sort_by_key(|r| (r.day, r.query_id));
        out
    }

    /// Groups executions of *recurring* plans: signatures observed at least
    /// `min_runs` times (used for the cost-variance analyses of Figures 1
    /// and 15).
    pub fn recurring_groups(&self, min_runs: usize) -> Vec<Vec<&ExecutionRecord>> {
        let mut groups: HashMap<PlanSignature, Vec<&ExecutionRecord>> = HashMap::new();
        for r in &self.records {
            groups.entry(r.signature).or_default().push(r);
        }
        let mut out: Vec<Vec<&ExecutionRecord>> = groups
            .into_values()
            .filter(|g| g.len() >= min_runs)
            .collect();
        out.sort_by_key(|g| std::cmp::Reverse(g.len()));
        out
    }

    /// Splits deduplicated records into (train, test) by day: the first
    /// `train_days` of the observed range train, the rest test (Section 7.1:
    /// 25 training days, 5 test days).
    pub fn train_test_split(
        &self,
        train_days: i64,
    ) -> (Vec<&ExecutionRecord>, Vec<&ExecutionRecord>) {
        let dedup = self.deduplicated();
        let min_day = dedup.iter().map(|r| r.day).min().unwrap_or(0);
        let cutoff = min_day + train_days;
        let mut train = Vec::new();
        let mut test = Vec::new();
        for r in dedup {
            if r.day < cutoff {
                train.push(r);
            } else {
                test.push(r);
            }
        }
        (train, test)
    }

    /// The element-wise mean of all logged per-stage environment metrics —
    /// LOAM's representative environment instance `e_r` is derived from
    /// exactly this empirical mean (Section 5).
    pub fn mean_stage_env(&self) -> EnvMetrics {
        EnvMetrics::mean(self.records.iter().flat_map(|r| r.stage_envs.iter()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_plan::Operator;

    fn record(day: i64, table: u32, cost: f64) -> ExecutionRecord {
        let mut plan = PlanTree::new();
        let s = plan.leaf(Operator::table_scan(table, 1, 1, vec![0]));
        plan.set_root(s);
        let signature = PlanSignature::of(&plan);
        ExecutionRecord {
            query_id: day as u64,
            template: 0,
            project: ProjectId(0),
            day,
            plan,
            signature,
            stage_envs: vec![EnvMetrics::new(0.5, 0.05, 4.0, 0.5)],
            cpu_cost: cost,
            latency: cost * 1.3,
            is_default: true,
        }
    }

    #[test]
    fn day_range_filters() {
        let mut repo = QueryRepository::new();
        for d in 0..10 {
            repo.push(record(d, d as u32, 100.0));
        }
        assert_eq!(repo.by_day_range(2, 5).len(), 3);
        assert_eq!(repo.len(), 10);
    }

    #[test]
    fn dedup_keeps_latest_per_signature() {
        let mut repo = QueryRepository::new();
        repo.push(record(1, 7, 100.0)); // same plan twice
        repo.push(record(5, 7, 120.0));
        repo.push(record(2, 8, 50.0));
        let d = repo.deduplicated();
        assert_eq!(d.len(), 2);
        let kept = d
            .iter()
            .find(|r| r.signature == record(1, 7, 0.0).signature);
        assert_eq!(kept.unwrap().day, 5);
    }

    #[test]
    fn recurring_groups_filter_by_min_runs() {
        let mut repo = QueryRepository::new();
        for d in 0..5 {
            repo.push(record(d, 1, 100.0 + d as f64));
        }
        repo.push(record(0, 2, 10.0));
        let groups = repo.recurring_groups(3);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 5);
    }

    #[test]
    fn split_respects_day_cutoff() {
        let mut repo = QueryRepository::new();
        for d in 0..30 {
            repo.push(record(d, d as u32, 10.0));
        }
        let (train, test) = repo.train_test_split(25);
        assert_eq!(train.len(), 25);
        assert_eq!(test.len(), 5);
        assert!(train.iter().all(|r| r.day < 25));
        assert!(test.iter().all(|r| r.day >= 25));
    }

    #[test]
    fn mean_stage_env_averages() {
        let mut repo = QueryRepository::new();
        let mut r1 = record(0, 0, 1.0);
        r1.stage_envs = vec![EnvMetrics::new(0.2, 0.0, 2.0, 0.4)];
        let mut r2 = record(1, 1, 1.0);
        r2.stage_envs = vec![EnvMetrics::new(0.8, 0.1, 6.0, 0.6)];
        repo.push(r1);
        repo.push(r2);
        let m = repo.mean_stage_env();
        assert!((m.cpu_idle - 0.5).abs() < 1e-12);
    }
}
