//! Column metadata and ground-truth value distributions.
//!
//! Columns carry the *true* data distribution used by the execution
//! simulator's physics. The native optimizer never sees these (statistics are
//! "stale or missing" in MaxCompute by default — Challenge 2); LOAM never
//! uses them either, instead inferring them indirectly from historical costs.

use mcsim_plan::{ColumnId, TableId};
use serde::{Deserialize, Serialize};

/// Shape of a column's value distribution over its `ndv` distinct values.
///
/// Values are identified by *rank*: rank 0 is the most frequent value under a
/// Zipf distribution (all ranks are equally likely under `Uniform`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ColumnDistribution {
    /// Every distinct value appears equally often.
    Uniform,
    /// Zipfian skew with exponent `s > 0`: `p(rank r) ∝ 1/(r+1)^s`.
    Zipf {
        /// Skew exponent. `s = 0` degenerates to uniform; production data
        /// typically has `s ∈ [0.5, 1.5]`.
        s: f64,
    },
}

/// Metadata of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Global column identifier.
    pub id: ColumnId,
    /// Owning table.
    pub table: TableId,
    /// Number of distinct values (ranks `0..ndv`).
    pub ndv: u64,
    /// True value distribution.
    pub dist: ColumnDistribution,
}

/// Approximate generalized harmonic number `H(n, s) = Σ_{k=1..n} k^{-s}`.
///
/// Uses the Euler–Maclaurin integral approximation for large `n`, exact
/// summation for small `n`; accurate to well under 1 % across the parameter
/// ranges the simulator uses.
pub fn harmonic(n: u64, s: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if n <= 64 {
        return (1..=n).map(|k| (k as f64).powf(-s)).sum();
    }
    let nf = n as f64;
    // Exact head + integral tail for stability.
    let head: f64 = (1..=64u64).map(|k| (k as f64).powf(-s)).sum();
    let tail = if (s - 1.0).abs() < 1e-9 {
        (nf / 64.0).ln()
    } else {
        (nf.powf(1.0 - s) - 64f64.powf(1.0 - s)) / (1.0 - s)
    };
    // Trapezoid correction at the boundary.
    head + tail + 0.5 * (nf.powf(-s) - 64f64.powf(-s))
}

impl ColumnMeta {
    /// Creates a column.
    pub fn new(id: ColumnId, table: TableId, ndv: u64, dist: ColumnDistribution) -> Self {
        ColumnMeta {
            id,
            table,
            ndv: ndv.max(1),
            dist,
        }
    }

    /// Probability mass of the value at `rank` (0-based; rank 0 is most
    /// frequent under Zipf). Ranks at or beyond `ndv` have zero mass.
    pub fn frequency(&self, rank: u64) -> f64 {
        if rank >= self.ndv {
            return 0.0;
        }
        match self.dist {
            ColumnDistribution::Uniform => 1.0 / self.ndv as f64,
            ColumnDistribution::Zipf { s } => ((rank + 1) as f64).powf(-s) / harmonic(self.ndv, s),
        }
    }

    /// Selectivity of an equality predicate `col = value(rank)`.
    pub fn eq_selectivity(&self, rank: u64) -> f64 {
        self.frequency(rank)
    }

    /// Selectivity of a rank-range predicate `value(lo) <= col <= value(hi)`
    /// (inclusive), i.e. the total mass of ranks in `[lo, hi]`.
    pub fn range_selectivity(&self, lo: u64, hi: u64) -> f64 {
        if lo > hi || lo >= self.ndv {
            return 0.0;
        }
        let hi = hi.min(self.ndv - 1);
        match self.dist {
            ColumnDistribution::Uniform => (hi - lo + 1) as f64 / self.ndv as f64,
            ColumnDistribution::Zipf { s } => {
                let h = harmonic(self.ndv, s);
                let upper = harmonic(hi + 1, s);
                let lower = if lo == 0 { 0.0 } else { harmonic(lo, s) };
                ((upper - lower) / h).clamp(0.0, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_eq_selectivity_is_one_over_ndv() {
        let c = ColumnMeta::new(0, 0, 200, ColumnDistribution::Uniform);
        assert!((c.eq_selectivity(5) - 0.005).abs() < 1e-12);
        assert_eq!(c.eq_selectivity(500), 0.0);
    }

    #[test]
    fn zipf_mass_sums_to_one() {
        for &ndv in &[1u64, 7, 64, 1000, 100_000] {
            let c = ColumnMeta::new(0, 0, ndv, ColumnDistribution::Zipf { s: 1.1 });
            let total = c.range_selectivity(0, ndv - 1);
            assert!((total - 1.0).abs() < 0.01, "ndv={ndv} total={total}");
        }
    }

    #[test]
    fn zipf_rank_zero_is_most_frequent() {
        let c = ColumnMeta::new(0, 0, 1000, ColumnDistribution::Zipf { s: 1.0 });
        assert!(c.frequency(0) > c.frequency(1));
        assert!(c.frequency(1) > c.frequency(100));
    }

    #[test]
    fn harmonic_matches_exact_small_n() {
        let exact: f64 = (1..=50u64).map(|k| (k as f64).powf(-1.2)).sum();
        assert!((harmonic(50, 1.2) - exact).abs() < 1e-12);
    }

    #[test]
    fn harmonic_approximation_is_accurate_large_n() {
        let exact: f64 = (1..=20_000u64).map(|k| (k as f64).powf(-0.8)).sum();
        let approx = harmonic(20_000, 0.8);
        assert!(
            ((approx - exact) / exact).abs() < 0.005,
            "{approx} vs {exact}"
        );
        // And for s = 1 exactly.
        let exact1: f64 = (1..=20_000u64).map(|k| 1.0 / k as f64).sum();
        assert!(((harmonic(20_000, 1.0) - exact1) / exact1).abs() < 0.005);
    }

    #[test]
    fn range_selectivity_monotone_in_width() {
        let c = ColumnMeta::new(0, 0, 500, ColumnDistribution::Zipf { s: 0.9 });
        let narrow = c.range_selectivity(10, 20);
        let wide = c.range_selectivity(10, 200);
        assert!(wide > narrow);
        assert!(wide <= 1.0 && narrow >= 0.0);
    }

    #[test]
    fn degenerate_single_value_column() {
        let c = ColumnMeta::new(0, 0, 1, ColumnDistribution::Zipf { s: 1.5 });
        assert!((c.eq_selectivity(0) - 1.0).abs() < 1e-9);
        assert_eq!(c.range_selectivity(0, 0), 1.0);
    }
}
