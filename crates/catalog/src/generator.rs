//! Seeded synthesis of projects: schemas, foreign-key graphs, query
//! templates, and daily workloads.
//!
//! Every experiment in the reproduction draws its projects from
//! [`ProjectProfile`]s. The five evaluation projects mirror Table 1 of the
//! paper (table/column counts, training-query volumes, cost magnitudes,
//! improvement space); [`ProjectProfile::random`] samples a population of
//! heterogeneous projects for the project-selection experiments (Figures 12,
//! 16 and Section 7.3).

use crate::column::{ColumnDistribution, ColumnMeta};
use crate::project::ProjectId;
use crate::table::TableMeta;
use crate::workload::{FilterSlot, JoinEdge, QuerySpec, QueryTemplate};
use crate::Catalog;
use mcsim_plan::expr::CmpFn;
use mcsim_plan::op::{AggFunc, JoinKind};
use mcsim_plan::{ColumnId, TableId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tunable description of a project: schema shape, workload shape, and the
/// knobs that control how much improvement space a learned optimizer has.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectProfile {
    /// Human-readable name (evaluation projects are "Project 1"…"Project 5").
    pub name: String,
    /// Master seed; everything about the project derives from it.
    pub seed: u64,
    /// Number of long-lived tables.
    pub n_tables: usize,
    /// Total number of columns across all tables.
    pub n_columns: usize,
    /// Number of short-lived (temporary) tables.
    pub n_temp_tables: usize,
    /// Table row counts are log10-uniform in this range.
    pub row_scale_log10: (f64, f64),
    /// Number of distinct query templates.
    pub n_templates: usize,
    /// Average number of joined tables per template (paper: 3.8 across
    /// MaxCompute).
    pub avg_join_tables: f64,
    /// Queries submitted on day 0.
    pub n_query_day0: f64,
    /// Daily multiplicative growth of query volume.
    pub daily_growth: f64,
    /// Fraction of queries instantiated from templates that touch at least
    /// one temporary table.
    pub temp_query_ratio: f64,
    /// Half-width (in log10) of the native optimizer's stale-row-count error;
    /// the main knob controlling improvement space `D(M_d)`.
    pub misestimation: f64,
    /// Standard deviation of the log-normal execution-cost noise.
    pub env_noise_sigma: f64,
    /// Probability a template aggregates.
    pub agg_prob: f64,
    /// Zipf exponent used for skewed attribute columns.
    pub zipf_skew: f64,
    /// Day-to-day log-volume noise σ: daily query counts are
    /// `n_query_day0 · growth^day · exp(σ·z_day)`. Real workloads fluctuate
    /// (batch jobs, backfills), and the mean of day-over-day count *ratios*
    /// exceeds 1 by ≈exp(σ²) — which is what makes the paper's growth rule
    /// R2 (`ratio ≥ 1.055`) satisfiable by stable projects.
    pub daily_volume_sigma: f64,
    /// How selective template filters are, in `[0, 1]`: 0 keeps true
    /// selectivities close to the native model's fixed defaults (little to
    /// misestimate), 1 makes filters razor-sharp (equality on high-NDV
    /// columns, narrow ranges) so the statistics-free native model badly
    /// overestimates intermediate sizes. This is the workload-property side
    /// of the paper's observation that learned-optimizer benefits are
    /// "bounded by workload patterns and data properties".
    pub filter_strength: f64,
}

/// A fully generated project: schema catalog, foreign-key graph, templates.
#[derive(Debug, Clone)]
pub struct Project {
    /// The project's identity.
    pub id: ProjectId,
    /// The profile it was generated from.
    pub profile: ProjectProfile,
    /// Schema catalog with ground-truth statistics.
    pub catalog: Catalog,
    /// Query templates (instantiated daily).
    pub templates: Vec<QueryTemplate>,
}

impl ProjectProfile {
    /// Profiles of the five anonymized evaluation projects, matched to
    /// Table 1 of the paper. `n` is 1-based; returns `None` outside `1..=5`.
    ///
    /// | | tables | columns | train | test | avg CPU cost | D(M_d) |
    /// |---|---|---|---|---|---|---|
    /// | P1 | 253 | 3,782 | 10,000 | 184 | 11,501 | 25 % |
    /// | P2 | 125 | 714 | 10,000 | 101 | 1,824,978 | 43 % |
    /// | P3 | 348 | 7,382 | 10,000 | 177 | 3,265 | 20 % |
    /// | P4 | 209 | 3,794 | 4,187 | 573 | 1,354 | 23 % |
    /// | P5 | 229 | 3,661 | 8,701 | 126 | 103,040 | 40 % |
    pub fn evaluation_project(n: usize) -> Option<ProjectProfile> {
        let p = match n {
            1 => ProjectProfile {
                name: "Project 1".into(),
                seed: 0xA11B_0001,
                n_tables: 253,
                n_columns: 3782,
                n_temp_tables: 20,
                row_scale_log10: (5.0, 7.0),
                n_templates: 90,
                avg_join_tables: 3.8,
                n_query_day0: 800.0,
                daily_growth: 1.0,
                temp_query_ratio: 0.08,
                misestimation: 0.85,
                env_noise_sigma: 0.22,
                agg_prob: 0.6,
                zipf_skew: 1.0,
                filter_strength: 0.75,
                daily_volume_sigma: 0.3,
            },
            2 => ProjectProfile {
                name: "Project 2".into(),
                seed: 0xA11B_0002,
                n_tables: 125,
                n_columns: 714,
                n_temp_tables: 10,
                row_scale_log10: (4.0, 9.0),
                n_templates: 60,
                avg_join_tables: 4.6,
                n_query_day0: 400.0,
                daily_growth: 1.0,
                temp_query_ratio: 0.05,
                misestimation: 1.6,
                env_noise_sigma: 0.25,
                agg_prob: 0.55,
                zipf_skew: 1.1,
                filter_strength: 0.95,
                daily_volume_sigma: 0.3,
            },
            3 => ProjectProfile {
                name: "Project 3".into(),
                seed: 0xA11B_0003,
                n_tables: 348,
                n_columns: 7382,
                n_temp_tables: 30,
                row_scale_log10: (3.2, 5.8),
                n_templates: 150,
                avg_join_tables: 3.4,
                n_query_day0: 450.0,
                daily_growth: 1.0,
                temp_query_ratio: 0.10,
                misestimation: 0.14,
                env_noise_sigma: 0.20,
                agg_prob: 0.6,
                zipf_skew: 0.9,
                filter_strength: 0.10,
                daily_volume_sigma: 0.3,
            },
            4 => ProjectProfile {
                name: "Project 4".into(),
                seed: 0xA11B_0004,
                n_tables: 209,
                n_columns: 3794,
                n_temp_tables: 18,
                row_scale_log10: (2.8, 5.2),
                n_templates: 80,
                avg_join_tables: 3.6,
                n_query_day0: 167.0,
                daily_growth: 1.0,
                temp_query_ratio: 0.08,
                misestimation: 0.20,
                env_noise_sigma: 0.22,
                agg_prob: 0.55,
                zipf_skew: 1.0,
                filter_strength: 0.25,
                daily_volume_sigma: 0.3,
            },
            5 => ProjectProfile {
                name: "Project 5".into(),
                seed: 0xA11B_0005,
                n_tables: 229,
                n_columns: 3661,
                n_temp_tables: 20,
                row_scale_log10: (4.0, 8.3),
                n_templates: 62,
                avg_join_tables: 4.6,
                n_query_day0: 348.0,
                daily_growth: 1.0,
                temp_query_ratio: 0.07,
                misestimation: 1.55,
                env_noise_sigma: 0.24,
                agg_prob: 0.55,
                zipf_skew: 1.1,
                filter_strength: 0.95,
                daily_volume_sigma: 0.3,
            },
            _ => return None,
        };
        Some(p)
    }

    /// Samples a random project profile from wide, heterogeneous ranges —
    /// the population used by the project-selection experiments. Roughly
    /// matching the paper's observation that ~40 % of projects pass the
    /// rule-based filter and only a small fraction has large improvement
    /// space.
    pub fn random(seed: u64) -> ProjectProfile {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe);
        let n_tables = rng.gen_range(20..400);
        let cols_per_table = rng.gen_range(4.0..24.0);
        // Query volume is log-uniform across three orders of magnitude so a
        // sizable fraction of projects fails the volume rules R1/R2.
        let n_query_day0 = 10f64.powf(rng.gen_range(0.8..3.3));
        // Some projects shrink, some grow.
        let daily_growth = rng.gen_range(0.96..1.06);
        // Temp-table churn varies widely (rule R3).
        let temp_query_ratio = rng.gen_range(0.0..0.9f64).powi(2);
        ProjectProfile {
            name: format!("random-{seed}"),
            seed,
            n_tables,
            n_columns: (n_tables as f64 * cols_per_table) as usize,
            n_temp_tables: (n_tables / 8).max(2),
            row_scale_log10: {
                let lo = rng.gen_range(3.0..6.0);
                (lo, lo + rng.gen_range(1.5..3.0))
            },
            n_templates: rng.gen_range(20..120),
            avg_join_tables: rng.gen_range(2.2..5.0),
            n_query_day0,
            daily_growth,
            temp_query_ratio,
            misestimation: rng.gen_range(0.05..1.3f64).powi(2) / 1.3,
            env_noise_sigma: rng.gen_range(0.12..0.35),
            agg_prob: rng.gen_range(0.3..0.8),
            zipf_skew: rng.gen_range(0.7..1.4),
            filter_strength: rng.gen_range(0.0..1.0),
            daily_volume_sigma: rng.gen_range(0.15..0.45),
        }
    }

    /// Generates the project: schema, foreign-key graph, and templates.
    pub fn generate(&self, id: ProjectId) -> Project {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut catalog = Catalog::new();
        let total_tables = self.n_tables + self.n_temp_tables;
        let mut next_col: ColumnId = 0;

        // --- Tables: draw sizes, allocate columns. ---
        let mut rows_of: Vec<u64> = (0..total_tables)
            .map(|_| {
                let log10 = rng.gen_range(self.row_scale_log10.0..self.row_scale_log10.1);
                10f64.powf(log10) as u64
            })
            .collect();
        // Sort sizes descending so low indices are "fact-like" big tables.
        rows_of.sort_unstable_by(|a, b| b.cmp(a));

        let avg_cols = (self.n_columns as f64 / self.n_tables as f64).max(3.0);
        let mut fk_targets: Vec<Vec<(ColumnId, usize)>> = vec![Vec::new(); total_tables];
        let mut pk_of: Vec<ColumnId> = Vec::with_capacity(total_tables);
        let mut attrs_of: Vec<Vec<ColumnId>> = vec![Vec::new(); total_tables];
        let mut attr_ndv_of: Vec<Vec<(ColumnId, u64)>> = vec![Vec::new(); total_tables];

        for t in 0..total_tables {
            let rows = rows_of[t];
            let n_cols = rng.gen_range((avg_cols * 0.5).max(3.0)..avg_cols * 1.5) as usize;
            let mut columns = Vec::with_capacity(n_cols);

            // Primary key: unique values.
            let pk = next_col;
            next_col += 1;
            columns.push(ColumnMeta::new(
                pk,
                t as TableId,
                rows,
                ColumnDistribution::Uniform,
            ));
            pk_of.push(pk);

            // Foreign keys: reference strictly larger-index (smaller) tables,
            // guaranteeing an acyclic FK graph.
            let n_fk = rng.gen_range(0..=3.min(total_tables - t - 1));
            for _ in 0..n_fk {
                let target = rng.gen_range(t + 1..total_tables);
                let fk = next_col;
                next_col += 1;
                // FK NDV equals the referenced table's cardinality (classic
                // foreign-key containment).
                columns.push(ColumnMeta::new(
                    fk,
                    t as TableId,
                    rows_of[target].min(rows),
                    ColumnDistribution::Uniform,
                ));
                fk_targets[t].push((fk, target));
            }

            // Attribute columns.
            let n_attr = n_cols.saturating_sub(1 + n_fk).max(2);
            for _ in 0..n_attr {
                let cid = next_col;
                next_col += 1;
                let ndv_log = rng.gen_range(1.0..(rows as f64).log10().max(1.2));
                let ndv = 10f64.powf(ndv_log) as u64;
                let dist = if rng.gen_bool(0.5) {
                    ColumnDistribution::Zipf { s: self.zipf_skew }
                } else {
                    ColumnDistribution::Uniform
                };
                let c = ColumnMeta::new(cid, t as TableId, ndv.max(2), dist);
                attrs_of[t].push(cid);
                attr_ndv_of[t].push((cid, ndv.max(2)));
                columns.push(c);
            }

            let is_temp = t >= self.n_tables;
            let (created, deleted) = if is_temp {
                let created = rng.gen_range(-5i64..20);
                (created, Some(created + rng.gen_range(3i64..15)))
            } else {
                (rng.gen_range(-900i64..-60), None)
            };
            // Partition counts track data volume (a few hundred thousand
            // rows per partition), jittered by one power of two — this is
            // why "the number of partitions accessed … can reflect the
            // amount of processed data" (Section 4).
            let partitions = {
                let base = (rows as f64 / 2.0e5).max(1.0);
                let jitter = 2f64.powi(rng.gen_range(-1..=1));
                ((base * jitter) as u32).next_power_of_two().clamp(1, 4096)
            };
            let mut meta = TableMeta::new(
                t as TableId,
                id,
                rows,
                partitions,
                columns.iter().map(|c| c.id).collect(),
                created,
                deleted,
            );
            // Stale metadata: what the native optimizer believes.
            let err = rng.gen_range(-self.misestimation..=self.misestimation);
            meta.stale_rows = ((rows as f64) * 10f64.powf(err)).max(1.0) as u64;
            meta.stale_drift = self.misestimation;
            catalog.add_table(meta, columns);
        }

        // Ascending-NDV ordering of each table's attribute columns, so
        // templates can pick filter columns by selectivity tier.
        for v in &mut attr_ndv_of {
            v.sort_by_key(|&(_, ndv)| ndv);
        }

        // --- Templates. ---
        let mut templates = Vec::with_capacity(self.n_templates);
        for tid in 0..self.n_templates {
            let wants_temp = (tid as f64 / self.n_templates as f64) < self.temp_query_ratio * 1.2;
            if let Some(t) = make_template(
                tid as u32,
                self,
                &rows_of,
                &fk_targets,
                &pk_of,
                &attrs_of,
                &attr_ndv_of,
                wants_temp,
                self.n_tables,
                &mut rng,
            ) {
                templates.push(t);
            }
        }

        Project {
            id,
            profile: self.clone(),
            catalog,
            templates,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn make_template(
    id: u32,
    profile: &ProjectProfile,
    rows_of: &[u64],
    fk_targets: &[Vec<(ColumnId, usize)>],
    pk_of: &[ColumnId],
    attrs_of: &[Vec<ColumnId>],
    attr_ndv_of: &[Vec<(ColumnId, u64)>],
    wants_temp: bool,
    n_perm: usize,
    rng: &mut StdRng,
) -> Option<QueryTemplate> {
    let total = rows_of.len();
    // Target join size ~ Poisson-ish around avg_join_tables.
    let target = {
        let base = profile.avg_join_tables + rng.gen_range(-1.5..2.5);
        (base.round() as usize).clamp(1, 6)
    };

    // Grow a connected subgraph along FK edges, starting from a random table
    // (a temp table if requested).
    let start = if wants_temp && total > n_perm {
        rng.gen_range(n_perm..total)
    } else {
        rng.gen_range(0..n_perm)
    };
    let mut tables = vec![start];
    let mut joins: Vec<JoinEdge> = Vec::new();
    while tables.len() < target {
        // Collect FK edges from any included table to a new one, in either
        // direction.
        let mut options: Vec<(usize, ColumnId, usize, ColumnId)> = Vec::new();
        for (idx, &t) in tables.iter().enumerate() {
            for &(fk, tgt) in &fk_targets[t] {
                if !tables.contains(&tgt) {
                    options.push((idx, fk, tgt, pk_of[tgt]));
                }
            }
            // Reverse direction: some other table referencing `t`.
            for (src, edges) in fk_targets.iter().enumerate() {
                if tables.contains(&src) {
                    continue;
                }
                for &(fk, tgt) in edges {
                    if tgt == t {
                        options.push((idx, pk_of[t], src, fk));
                    }
                }
            }
        }
        if options.is_empty() {
            break;
        }
        let (from_idx, from_col, new_table, new_col) = options[rng.gen_range(0..options.len())];
        let new_idx = tables.len();
        tables.push(new_table);
        let kind = if rng.gen_bool(0.85) {
            JoinKind::Inner
        } else {
            JoinKind::LeftOuter
        };
        joins.push(JoinEdge {
            left: from_idx,
            right: new_idx,
            left_col: from_col,
            right_col: new_col,
            kind,
        });
    }

    // Filters on attribute columns. `filter_strength` steers how selective
    // they are: strong filters pick high-NDV equality columns and narrow
    // ranges, mild filters stay near the native model's fixed defaults.
    let strength = profile.filter_strength.clamp(0.0, 1.0);
    let mut filters = Vec::new();
    for (i, &t) in tables.iter().enumerate() {
        if attrs_of[t].is_empty() || !rng.gen_bool(0.7) {
            continue;
        }
        // Attribute columns ordered by ascending NDV; strong profiles pick
        // high-NDV columns (sharp equality predicates the native model's
        // fixed 5 % guess wildly overestimates), mild profiles pick low-NDV
        // columns whose true selectivity is close to the default guess.
        let by_ndv = &attr_ndv_of[t];
        let n_filters = rng.gen_range(1..=2usize.min(by_ndv.len()));
        for _ in 0..n_filters {
            let u: f64 = rng.gen_range(0.0..1.0);
            let biased = u.powf(1.0 / (0.3 + 3.0 * strength));
            let idx = ((biased * by_ndv.len() as f64) as usize).min(by_ndv.len() - 1);
            let column = by_ndv[idx].0;
            if rng.gen_bool(0.6) {
                filters.push(FilterSlot {
                    table_idx: i,
                    column,
                    cmp: CmpFn::Eq,
                    range_fraction: 0.0,
                });
            } else {
                let lo = -0.7 - 2.8 * strength;
                let hi = -0.3 - 1.2 * strength;
                filters.push(FilterSlot {
                    table_idx: i,
                    column,
                    cmp: CmpFn::Between,
                    range_fraction: 10f64.powf(rng.gen_range(lo..hi)),
                });
            }
        }
    }

    // Projections: 1..=3 attribute columns per table.
    let projections: Vec<Vec<ColumnId>> = tables
        .iter()
        .map(|&t| {
            let n = rng.gen_range(1..=3usize.min(attrs_of[t].len().max(1)));
            (0..n)
                .filter_map(|_| {
                    if attrs_of[t].is_empty() {
                        None
                    } else {
                        Some(attrs_of[t][rng.gen_range(0..attrs_of[t].len())])
                    }
                })
                .collect()
        })
        .collect();

    // Aggregation.
    let (group_by, aggs) = if rng.gen_bool(profile.agg_prob) {
        let gb_table = tables[0];
        let gb: Vec<ColumnId> = if attrs_of[gb_table].is_empty() {
            vec![pk_of[gb_table]]
        } else {
            vec![attrs_of[gb_table][rng.gen_range(0..attrs_of[gb_table].len())]]
        };
        let funcs = [AggFunc::Sum, AggFunc::Count, AggFunc::Max, AggFunc::Avg];
        let n_aggs = rng.gen_range(1..=2usize);
        let aggs = (0..n_aggs)
            .map(|_| {
                let f = funcs[rng.gen_range(0..funcs.len())];
                let t = tables[rng.gen_range(0..tables.len())];
                let c = if attrs_of[t].is_empty() {
                    pk_of[t]
                } else {
                    attrs_of[t][rng.gen_range(0..attrs_of[t].len())]
                };
                (f, c)
            })
            .collect();
        (gb, aggs)
    } else {
        (Vec::new(), Vec::new())
    };

    let limit = if rng.gen_bool(0.1) { Some(100) } else { None };
    // Popularity: Zipf over template index.
    let weight = 1.0 / ((id + 1) as f64).powf(1.05);

    Some(QueryTemplate {
        id,
        tables: tables.iter().map(|&t| t as TableId).collect(),
        joins,
        filters,
        projections,
        group_by,
        aggs,
        limit,
        weight,
    })
}

impl Project {
    /// The queries submitted on `day`, deterministically derived from the
    /// project seed and the day index.
    pub fn workload_for_day(&self, day: i64) -> Vec<QuerySpec> {
        // Deterministic per-day log-normal volume jitter.
        let noise = if self.profile.daily_volume_sigma > 0.0 {
            let h =
                mcsim_plan::signature::fnv1a_seeded(self.profile.seed ^ 0xda11, &day.to_le_bytes());
            let u = (h % 2_000_001) as f64 / 1_000_000.0 - 1.0; // [-1, 1]
                                                                // Map uniform to an approximate standard normal via the
                                                                // inverse-CDF of a triangular-ish transform (cheap, bounded).
            let z = 1.6 * u;
            (self.profile.daily_volume_sigma * z).exp()
        } else {
            1.0
        };
        let n = (self.profile.n_query_day0 * self.profile.daily_growth.powi(day as i32) * noise)
            .round()
            .max(0.0) as usize;
        self.sample_queries(day, n)
    }

    /// Samples exactly `n` queries attributed to `day` (used to build
    /// fixed-size training/test sets).
    pub fn sample_queries(&self, day: i64, n: usize) -> Vec<QuerySpec> {
        let mut rng = StdRng::seed_from_u64(
            self.profile
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(day as u64),
        );
        let weights: Vec<f64> = self.templates.iter().map(|t| t.weight).collect();
        let total_w: f64 = weights.iter().sum();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            // Weighted template choice.
            let mut x = rng.gen_range(0.0..total_w);
            let mut ti = 0;
            for (j, &w) in weights.iter().enumerate() {
                if x < w {
                    ti = j;
                    break;
                }
                x -= w;
                ti = j;
            }
            let template = &self.templates[ti];
            // Parameters come from a small per-slot pool of popular values,
            // drawn with skew: dashboards and reports rerun with identical
            // parameters, ad-hoc variants pick rarer ones. This is what makes
            // queries *recur* (Figures 1 and 15 depend on it).
            let params: Vec<u64> = template
                .filters
                .iter()
                .enumerate()
                .map(|(slot_idx, slot)| {
                    let ndv = self.catalog.column(slot.column).map(|c| c.ndv).unwrap_or(1);
                    const POOL: u64 = 12;
                    let u: f64 = rng.gen_range(0.0f64..1.0);
                    let pool_pick = (u.powf(6.0) * POOL as f64) as u64 % POOL;
                    // Deterministic pool member for (template, slot, pick).
                    let h = mcsim_plan::signature::fnv1a_seeded(
                        self.profile.seed ^ ((template.id as u64) << 32),
                        &[slot_idx as u8, pool_pick as u8],
                    );
                    h % ndv.max(1)
                })
                .collect();
            let qid = (day as u64) << 32 | i as u64;
            out.push(template.instantiate(qid, self.id, day, &params, |c| {
                self.catalog.column(c).map(|m| m.ndv).unwrap_or(1)
            }));
        }
        out
    }

    /// Queries over a day range `[from, to)`, concatenated.
    pub fn workload_for_days(&self, from: i64, to: i64) -> Vec<QuerySpec> {
        (from..to).flat_map(|d| self.workload_for_day(d)).collect()
    }

    /// True if all tables of `q` are long-lived (lifespan > `n` days) —
    /// the per-query predicate inside Filter rule R3.
    pub fn query_uses_only_stable_tables(&self, q: &QuerySpec, n: i64) -> bool {
        q.tables.iter().all(|t| {
            self.catalog
                .table(t.table)
                .map(|m| m.is_long_lived(n))
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_profile() -> ProjectProfile {
        ProjectProfile {
            name: "test".into(),
            seed: 42,
            n_tables: 20,
            n_columns: 120,
            n_temp_tables: 4,
            row_scale_log10: (3.0, 5.0),
            n_templates: 12,
            avg_join_tables: 3.0,
            n_query_day0: 50.0,
            daily_growth: 1.01,
            temp_query_ratio: 0.2,
            misestimation: 0.5,
            env_noise_sigma: 0.2,
            agg_prob: 0.5,
            zipf_skew: 1.0,
            filter_strength: 0.5,
            daily_volume_sigma: 0.0,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p1 = small_profile().generate(ProjectId(1));
        let p2 = small_profile().generate(ProjectId(1));
        assert_eq!(p1.catalog.table_count(), p2.catalog.table_count());
        let w1 = p1.workload_for_day(3);
        let w2 = p2.workload_for_day(3);
        assert_eq!(w1.len(), w2.len());
        assert_eq!(w1[0], w2[0]);
    }

    #[test]
    fn table_and_column_counts_match_profile() {
        let prof = small_profile();
        let p = prof.generate(ProjectId(0));
        assert_eq!(p.catalog.table_count(), prof.n_tables + prof.n_temp_tables);
        // Column total is approximate (per-table draws) but in the ballpark.
        let cols = p.catalog.column_count();
        assert!(cols > prof.n_columns / 2, "cols={cols}");
    }

    #[test]
    fn queries_are_connected_and_reference_live_columns() {
        let p = small_profile().generate(ProjectId(0));
        for q in p.workload_for_day(0) {
            assert!(q.is_connected(), "query must have a connected join graph");
            for t in &q.tables {
                assert!(p.catalog.table(t.table).is_some());
                for &c in &t.columns {
                    let cm = p.catalog.column(c).expect("column exists");
                    assert_eq!(cm.table, t.table, "columns belong to their table");
                }
            }
        }
    }

    #[test]
    fn join_keys_reference_correct_tables() {
        let p = small_profile().generate(ProjectId(0));
        for q in p.workload_for_day(1) {
            for e in &q.joins {
                let lt = q.tables[e.left].table;
                let rt = q.tables[e.right].table;
                assert_eq!(p.catalog.column(e.left_col).unwrap().table, lt);
                assert_eq!(p.catalog.column(e.right_col).unwrap().table, rt);
            }
        }
    }

    #[test]
    fn workload_volume_follows_growth() {
        let mut prof = small_profile();
        prof.daily_growth = 1.1;
        prof.n_query_day0 = 100.0;
        let p = prof.generate(ProjectId(0));
        assert_eq!(p.workload_for_day(0).len(), 100);
        let d5 = p.workload_for_day(5).len();
        assert!((d5 as f64 - 100.0 * 1.1f64.powi(5)).abs() < 2.0);
    }

    #[test]
    fn evaluation_projects_match_table1_shape() {
        for n in 1..=5 {
            let prof = ProjectProfile::evaluation_project(n).unwrap();
            let expected_tables = [253, 125, 348, 209, 229][n - 1];
            assert_eq!(prof.n_tables, expected_tables);
        }
        assert!(ProjectProfile::evaluation_project(0).is_none());
        assert!(ProjectProfile::evaluation_project(6).is_none());
    }

    #[test]
    fn some_queries_touch_temp_tables() {
        let p = small_profile().generate(ProjectId(0));
        let queries = p.workload_for_days(0, 3);
        let unstable = queries
            .iter()
            .filter(|q| !p.query_uses_only_stable_tables(q, 30))
            .count();
        assert!(unstable > 0, "temp-table churn should appear in workloads");
        assert!(unstable < queries.len(), "but not dominate them");
    }

    #[test]
    fn stale_rows_diverge_from_truth() {
        let mut prof = small_profile();
        prof.misestimation = 1.0;
        let p = prof.generate(ProjectId(0));
        let diverging = p
            .catalog
            .tables()
            .filter(|t| {
                let ratio = t.stale_rows as f64 / t.rows as f64;
                !(0.67..1.5).contains(&ratio)
            })
            .count();
        assert!(diverging > p.catalog.table_count() / 4);
    }

    #[test]
    fn daily_volume_noise_fluctuates_counts_but_preserves_scale() {
        let mut prof = small_profile();
        prof.daily_volume_sigma = 0.3;
        prof.n_query_day0 = 100.0;
        prof.daily_growth = 1.0;
        let p = prof.generate(ProjectId(5));
        let counts: Vec<usize> = (0..12).map(|d| p.workload_for_day(d).len()).collect();
        let distinct: std::collections::HashSet<_> = counts.iter().collect();
        assert!(
            distinct.len() > 3,
            "noise should vary daily counts: {counts:?}"
        );
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(
            (50.0..200.0).contains(&mean),
            "mean {mean} should stay near 100"
        );
        // Day-over-day ratios have mean above 1 (Jensen) — the property the
        // filter rule R2 depends on.
        let ratios: Vec<f64> = counts
            .windows(2)
            .map(|w| w[1] as f64 / w[0].max(1) as f64)
            .collect();
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean_ratio > 0.95, "mean ratio {mean_ratio}");
    }

    #[test]
    fn random_profiles_are_heterogeneous() {
        let a = ProjectProfile::random(1);
        let b = ProjectProfile::random(2);
        assert_ne!(a.n_tables, b.n_tables);
        let gen = a.generate(ProjectId(10));
        assert!(!gen.templates.is_empty());
    }
}
