//! # mcsim-catalog
//!
//! Projects, tables, columns, synthetic data distributions, template-based
//! workloads, and the historical query repository for the MaxCompute
//! simulator.
//!
//! Projects are the primary organizational units in MaxCompute (Section 2.1
//! of the LOAM paper): user-created database instances with their own tables,
//! workload characteristics, and a per-project historical query repository.
//! This crate synthesizes all of that from seeded per-project profiles, so
//! that every experiment in the reproduction is deterministic.
//!
//! ## Example
//!
//! ```
//! use mcsim_catalog::{ProjectProfile, ProjectId};
//!
//! let profile = ProjectProfile::evaluation_project(1).expect("project 1 exists");
//! let project = profile.generate(ProjectId(1));
//! assert!(project.catalog.table_count() > 0);
//! let day0 = project.workload_for_day(0);
//! assert!(!day0.is_empty());
//! ```

pub mod column;
pub mod env;
pub mod generator;
pub mod project;
pub mod repository;
pub mod selectivity;
pub mod stats;
pub mod table;
pub mod workload;
pub mod workmodel;

pub use column::{ColumnDistribution, ColumnMeta};
pub use env::EnvMetrics;
pub use generator::{Project, ProjectProfile};
pub use project::ProjectId;
pub use repository::{ExecutionRecord, QueryRepository};
pub use selectivity::CardinalityModel;
pub use stats::{summarize, summarize_project, WorkloadStats};
pub use table::TableMeta;
pub use workload::{JoinEdge, QuerySpec, QueryTemplate, TableRef};

use std::collections::BTreeMap;

/// The schema catalog of one project: its tables and columns with
/// ground-truth data statistics (which the *native* optimizer is not allowed
/// to see — it only gets stale row counts, per Challenge 2).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<mcsim_plan::TableId, TableMeta>,
    columns: BTreeMap<mcsim_plan::ColumnId, ColumnMeta>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table and its columns.
    pub fn add_table(&mut self, table: TableMeta, columns: Vec<ColumnMeta>) {
        for c in columns {
            debug_assert_eq!(c.table, table.id);
            self.columns.insert(c.id, c);
        }
        self.tables.insert(table.id, table);
    }

    /// Looks up a table's metadata.
    pub fn table(&self, id: mcsim_plan::TableId) -> Option<&TableMeta> {
        self.tables.get(&id)
    }

    /// Looks up a column's metadata.
    pub fn column(&self, id: mcsim_plan::ColumnId) -> Option<&ColumnMeta> {
        self.columns.get(&id)
    }

    /// Number of registered tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of registered columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Iterates over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &TableMeta> {
        self.tables.values()
    }

    /// Iterates over all columns.
    pub fn columns(&self) -> impl Iterator<Item = &ColumnMeta> {
        self.columns.values()
    }

    /// Mutable access to a table (used by the generator to register
    /// temporary-table churn).
    pub fn table_mut(&mut self, id: mcsim_plan::TableId) -> Option<&mut TableMeta> {
        self.tables.get_mut(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnDistribution;

    #[test]
    fn add_and_lookup_round_trip() {
        let mut cat = Catalog::new();
        let t = TableMeta::new(5, ProjectId(0), 1000, 4, vec![10, 11], 0, None);
        let cols = vec![
            ColumnMeta::new(10, 5, 100, ColumnDistribution::Uniform),
            ColumnMeta::new(11, 5, 50, ColumnDistribution::Zipf { s: 1.1 }),
        ];
        cat.add_table(t, cols);
        assert_eq!(cat.table_count(), 1);
        assert_eq!(cat.column_count(), 2);
        assert_eq!(cat.table(5).unwrap().rows, 1000);
        assert_eq!(cat.column(11).unwrap().ndv, 50);
        assert!(cat.table(99).is_none());
    }
}
