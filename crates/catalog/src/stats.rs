//! Workload statistics summaries.
//!
//! The paper motivates several design decisions with aggregate workload
//! properties ("routine statistics record more than 7 million join-intensive
//! queries per day, with an average of 3.8 tables joined"); this module
//! computes the equivalent summaries for simulated projects, powering the
//! `loamctl inspect` command and the experiment write-ups.

use crate::generator::Project;
use crate::workload::QuerySpec;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregate statistics of a sampled workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Number of queries summarized.
    pub n_queries: usize,
    /// Mean number of joined tables per query (paper: 3.8 fleet-wide).
    pub avg_joined_tables: f64,
    /// Maximum joined tables observed.
    pub max_joined_tables: usize,
    /// Fraction of queries with an aggregation.
    pub aggregation_fraction: f64,
    /// Fraction of queries with at least one non-trivial filter.
    pub filtered_fraction: f64,
    /// Number of distinct templates observed.
    pub distinct_templates: usize,
    /// Share of queries belonging to the single most popular template
    /// (recurrence skew).
    pub top_template_share: f64,
    /// Number of distinct tables referenced.
    pub distinct_tables: usize,
}

/// Summarizes a slice of query specs.
pub fn summarize(queries: &[QuerySpec]) -> WorkloadStats {
    let n = queries.len();
    if n == 0 {
        return WorkloadStats {
            n_queries: 0,
            avg_joined_tables: 0.0,
            max_joined_tables: 0,
            aggregation_fraction: 0.0,
            filtered_fraction: 0.0,
            distinct_templates: 0,
            top_template_share: 0.0,
            distinct_tables: 0,
        };
    }
    let mut template_counts: HashMap<u32, usize> = HashMap::new();
    let mut tables = std::collections::HashSet::new();
    let mut join_sum = 0usize;
    let mut join_max = 0usize;
    let mut aggs = 0usize;
    let mut filtered = 0usize;
    for q in queries {
        *template_counts.entry(q.template).or_default() += 1;
        join_sum += q.table_count();
        join_max = join_max.max(q.table_count());
        if q.has_aggregation() {
            aggs += 1;
        }
        if q.tables.iter().any(|t| !t.predicate.is_true()) {
            filtered += 1;
        }
        for t in &q.tables {
            tables.insert(t.table);
        }
    }
    let top = template_counts.values().copied().max().unwrap_or(0);
    WorkloadStats {
        n_queries: n,
        avg_joined_tables: join_sum as f64 / n as f64,
        max_joined_tables: join_max,
        aggregation_fraction: aggs as f64 / n as f64,
        filtered_fraction: filtered as f64 / n as f64,
        distinct_templates: template_counts.len(),
        top_template_share: top as f64 / n as f64,
        distinct_tables: tables.len(),
    }
}

/// Summarizes a project's workload over a day range.
pub fn summarize_project(project: &Project, from: i64, to: i64) -> WorkloadStats {
    summarize(&project.workload_for_days(from, to))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProjectId, ProjectProfile};

    fn project() -> Project {
        let mut prof = ProjectProfile::evaluation_project(1).unwrap();
        prof.n_tables = 20;
        prof.n_temp_tables = 2;
        prof.n_columns = 150;
        prof.n_templates = 10;
        prof.n_query_day0 = 30.0;
        prof.generate(ProjectId(1))
    }

    #[test]
    fn summary_matches_profile_shape() {
        let p = project();
        let stats = summarize_project(&p, 0, 3);
        assert!(stats.n_queries > 0);
        // The paper's fleet-wide mean is 3.8 joined tables; evaluation
        // profiles target the same neighborhood.
        assert!((2.0..=6.0).contains(&stats.avg_joined_tables), "{stats:?}");
        assert!(stats.max_joined_tables <= 6);
        assert!(stats.aggregation_fraction > 0.2);
        assert!(stats.filtered_fraction > 0.3);
        assert!(stats.distinct_templates <= p.templates.len());
        assert!(stats.top_template_share > 1.0 / p.templates.len() as f64);
    }

    #[test]
    fn empty_workload_summary_is_zeroed() {
        let stats = summarize(&[]);
        assert_eq!(stats.n_queries, 0);
        assert_eq!(stats.avg_joined_tables, 0.0);
    }

    #[test]
    fn recurrence_skew_is_visible() {
        // Popular templates dominate (Zipf weights) — the property behind
        // the recurring-query analyses.
        let p = project();
        let stats = summarize_project(&p, 0, 5);
        assert!(
            stats.top_template_share > 0.15,
            "top template should be popular: {}",
            stats.top_template_share
        );
    }
}
