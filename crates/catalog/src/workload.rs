//! Query specifications and parameterized templates.
//!
//! Production workloads are "pervasively driven by parameterized,
//! template-based queries whose parameters vary across runs" (Section 4).
//! A [`QueryTemplate`] captures the stable join topology and filter slots; a
//! [`QuerySpec`] is one concrete instantiation with literal parameters, ready
//! for the optimizer.

use crate::project::ProjectId;
use mcsim_plan::expr::{CmpFn, Literal, Predicate};
use mcsim_plan::op::{AggFunc, JoinKind};
use mcsim_plan::{ColumnId, TableId};
use serde::{Deserialize, Serialize};

/// A reference to one table in a query, with its (already-parameterized)
/// filter predicate and the columns the query touches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRef {
    /// The referenced table.
    pub table: TableId,
    /// Filter applied to this table's rows (may be [`Predicate::True`]).
    pub predicate: Predicate,
    /// Columns of this table accessed anywhere in the query.
    pub columns: Vec<ColumnId>,
}

/// An equi-join edge between two tables of a [`QuerySpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinEdge {
    /// Index into [`QuerySpec::tables`] of the left side.
    pub left: usize,
    /// Index into [`QuerySpec::tables`] of the right side.
    pub right: usize,
    /// Join key column on the left table.
    pub left_col: ColumnId,
    /// Join key column on the right table.
    pub right_col: ColumnId,
    /// Logical join form.
    pub kind: JoinKind,
}

/// A fully-parameterized logical query, the optimizer's input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Unique id within the project's history.
    pub id: u64,
    /// Template this query was instantiated from.
    pub template: u32,
    /// Owning project.
    pub project: ProjectId,
    /// Simulation day the query was submitted.
    pub day: i64,
    /// Referenced tables (index order matters for [`JoinEdge`]s).
    pub tables: Vec<TableRef>,
    /// Join edges; together with `tables` they form a connected join graph.
    pub joins: Vec<JoinEdge>,
    /// Group-by columns (empty = no grouping).
    pub group_by: Vec<ColumnId>,
    /// Aggregations `(function, column)` (empty = plain select).
    pub aggs: Vec<(AggFunc, ColumnId)>,
    /// Optional row limit on the final result.
    pub limit: Option<u64>,
}

impl QuerySpec {
    /// Number of joined tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// True if the join graph connects all tables (queries must not be
    /// cross products).
    pub fn is_connected(&self) -> bool {
        let n = self.tables.len();
        if n <= 1 {
            return true;
        }
        let mut reach = vec![false; n];
        reach[0] = true;
        // Fixed-point reachability over undirected edges.
        loop {
            let mut changed = false;
            for e in &self.joins {
                if reach[e.left] != reach[e.right] {
                    reach[e.left] = true;
                    reach[e.right] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        reach.iter().all(|&r| r)
    }

    /// All tables referenced.
    pub fn table_ids(&self) -> Vec<TableId> {
        self.tables.iter().map(|t| t.table).collect()
    }

    /// True if this query aggregates.
    pub fn has_aggregation(&self) -> bool {
        !self.aggs.is_empty() || !self.group_by.is_empty()
    }
}

/// A filter slot in a template: a column compared against a parameter that
/// varies per instantiation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterSlot {
    /// Index into the template's table list.
    pub table_idx: usize,
    /// Filtered column.
    pub column: ColumnId,
    /// Comparison used (`Eq` or `Between` in generated workloads).
    pub cmp: CmpFn,
    /// For `Between`: fraction of the value domain covered, in `(0, 1]`.
    pub range_fraction: f64,
}

/// A parameterized query template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// Template identifier within the project.
    pub id: u32,
    /// Tables joined by the template.
    pub tables: Vec<TableId>,
    /// Join topology over `tables` (indices refer to `tables`).
    pub joins: Vec<JoinEdge>,
    /// Parameterized filter slots.
    pub filters: Vec<FilterSlot>,
    /// Columns each table contributes to the output (projection lists,
    /// parallel to `tables`).
    pub projections: Vec<Vec<ColumnId>>,
    /// Group-by columns, if the template aggregates.
    pub group_by: Vec<ColumnId>,
    /// Aggregations `(function, column)`.
    pub aggs: Vec<(AggFunc, ColumnId)>,
    /// Optional limit.
    pub limit: Option<u64>,
    /// Relative popularity weight (recurring templates dominate workloads).
    pub weight: f64,
}

impl QueryTemplate {
    /// Instantiates the template with concrete filter parameters.
    ///
    /// `params` supplies, per filter slot, the chosen value rank (for `Eq`)
    /// or range start rank (for `Between`). Extra params are ignored;
    /// missing params default to rank 0.
    pub fn instantiate(
        &self,
        query_id: u64,
        project: ProjectId,
        day: i64,
        params: &[u64],
        column_ndv: impl Fn(ColumnId) -> u64,
    ) -> QuerySpec {
        let mut predicates: Vec<Predicate> = vec![Predicate::True; self.tables.len()];
        for (i, slot) in self.filters.iter().enumerate() {
            let p = params.get(i).copied().unwrap_or(0);
            let ndv = column_ndv(slot.column).max(1);
            let pred = match slot.cmp {
                CmpFn::Between => {
                    let width = ((ndv as f64 * slot.range_fraction).ceil() as u64).max(1);
                    let lo = p.min(ndv.saturating_sub(1));
                    let hi = (lo + width - 1).min(ndv - 1);
                    Predicate::between(
                        slot.column,
                        Literal::Int(lo as i64),
                        Literal::Int(hi as i64),
                    )
                }
                cmp => Predicate::cmp(cmp, slot.column, Literal::Int((p % ndv) as i64)),
            };
            let existing = std::mem::take(&mut predicates[slot.table_idx]);
            predicates[slot.table_idx] = existing.and(pred);
        }

        let tables = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, &table)| {
                // Accessed columns: projections + join keys + filter columns.
                let mut columns = self.projections[i].clone();
                for e in &self.joins {
                    if e.left == i {
                        columns.push(e.left_col);
                    }
                    if e.right == i {
                        columns.push(e.right_col);
                    }
                }
                columns.extend(predicates[i].columns());
                columns.sort_unstable();
                columns.dedup();
                TableRef {
                    table,
                    predicate: predicates[i].clone(),
                    columns,
                }
            })
            .collect();

        QuerySpec {
            id: query_id,
            template: self.id,
            project,
            day,
            tables,
            joins: self.joins.clone(),
            group_by: self.group_by.clone(),
            aggs: self.aggs.clone(),
            limit: self.limit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> QueryTemplate {
        QueryTemplate {
            id: 3,
            tables: vec![100, 101],
            joins: vec![JoinEdge {
                left: 0,
                right: 1,
                left_col: 1000,
                right_col: 1010,
                kind: JoinKind::Inner,
            }],
            filters: vec![
                FilterSlot {
                    table_idx: 0,
                    column: 1001,
                    cmp: CmpFn::Eq,
                    range_fraction: 0.0,
                },
                FilterSlot {
                    table_idx: 1,
                    column: 1011,
                    cmp: CmpFn::Between,
                    range_fraction: 0.1,
                },
            ],
            projections: vec![vec![1002], vec![1012]],
            group_by: vec![],
            aggs: vec![(AggFunc::Sum, 1002)],
            limit: None,
            weight: 1.0,
        }
    }

    #[test]
    fn instantiate_fills_parameters() {
        let t = template();
        let q = t.instantiate(7, ProjectId(1), 5, &[3, 10], |_| 100);
        assert_eq!(q.id, 7);
        assert_eq!(q.template, 3);
        assert_eq!(q.tables.len(), 2);
        assert!(q.tables[0].predicate.to_string().contains("= 3"));
        assert!(q.tables[0].columns.contains(&1000)); // join key
        assert!(q.tables[0].columns.contains(&1001)); // filter col
        assert!(q.tables[0].columns.contains(&1002)); // projection
        assert!(q.is_connected());
    }

    #[test]
    fn eq_params_wrap_around_ndv() {
        let t = template();
        let q = t.instantiate(0, ProjectId(0), 0, &[105, 0], |_| 100);
        assert!(q.tables[0].predicate.to_string().contains("= 5"));
    }

    #[test]
    fn between_clamps_to_domain() {
        let t = template();
        let q = t.instantiate(0, ProjectId(0), 0, &[0, 95], |_| 100);
        let s = q.tables[1].predicate.to_string();
        assert!(s.contains("BETWEEN 95 AND 99"), "{s}");
    }

    #[test]
    fn disconnected_join_graph_detected() {
        let mut t = template();
        t.joins.clear();
        let q = t.instantiate(0, ProjectId(0), 0, &[0, 0], |_| 100);
        assert!(!q.is_connected());
    }

    #[test]
    fn single_table_is_connected() {
        let q = QuerySpec {
            id: 0,
            template: 0,
            project: ProjectId(0),
            day: 0,
            tables: vec![TableRef {
                table: 1,
                predicate: Predicate::True,
                columns: vec![],
            }],
            joins: vec![],
            group_by: vec![],
            aggs: vec![],
            limit: None,
        };
        assert!(q.is_connected());
        assert!(!q.has_aggregation());
    }
}
