//! Project identity.

use serde::{Deserialize, Serialize};

/// Identifier of a project (a user-created database instance).
///
/// MaxCompute hosts over 100,000 projects; the simulator identifies them by
/// a dense index.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ProjectId(pub u32);

impl std::fmt::Display for ProjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "project-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(ProjectId(7).to_string(), "project-7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProjectId(1) < ProjectId(2));
    }
}
