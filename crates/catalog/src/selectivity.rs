//! Ground-truth cardinality propagation through physical plans.
//!
//! The execution simulator's "physics" needs the *true* number of rows
//! flowing through every operator. This module computes it from the
//! catalog's exact column distributions. Neither the native optimizer
//! (Challenge 2: statistics are missing) nor LOAM (statistics-free by
//! design) is allowed to call into this — only `mcsim-exec` does.

use crate::column::ColumnMeta;
use crate::Catalog;
use mcsim_plan::expr::{CmpFn, Literal, Predicate};
use mcsim_plan::op::{AggAlgo, JoinKind, Operator};
use mcsim_plan::tree::PlanTree;
use mcsim_plan::ColumnId;
use serde::{Deserialize, Serialize};

/// Per-node cardinality annotation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeCard {
    /// Rows flowing *into* the operator (sum over children; for scans, rows
    /// physically read after partition pruning).
    pub input_rows: f64,
    /// Rows flowing out of the operator.
    pub output_rows: f64,
    /// Output tuple width in columns (coarse; drives shuffle volume).
    pub width: f64,
}

/// Ground-truth cardinality model over a catalog.
#[derive(Debug, Clone, Copy)]
pub struct CardinalityModel<'a> {
    catalog: &'a Catalog,
}

impl<'a> CardinalityModel<'a> {
    /// Creates a model reading true statistics from `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        CardinalityModel { catalog }
    }

    /// True selectivity of `pred` (fraction of rows satisfying it),
    /// assuming independence between conjuncts.
    pub fn selectivity(&self, pred: &Predicate) -> f64 {
        match pred {
            Predicate::True => 1.0,
            Predicate::Not(p) => (1.0 - self.selectivity(p)).clamp(0.0, 1.0),
            Predicate::And(a, b) => self.selectivity(a) * self.selectivity(b),
            Predicate::Or(a, b) => {
                let (sa, sb) = (self.selectivity(a), self.selectivity(b));
                (sa + sb - sa * sb).clamp(0.0, 1.0)
            }
            Predicate::Cmp {
                op,
                column,
                value,
                value2,
            } => self.cmp_selectivity(*op, *column, value, value2.as_ref()),
        }
    }

    fn cmp_selectivity(
        &self,
        op: CmpFn,
        column: ColumnId,
        value: &Literal,
        value2: Option<&Literal>,
    ) -> f64 {
        let Some(col) = self.catalog.column(column) else {
            return 0.1; // unknown column: conservative default
        };
        let ndv = col.ndv as f64;
        let v = value.as_f64();
        match op {
            // Equality uses the skewed per-value mass.
            CmpFn::Eq => col.eq_selectivity(v.max(0.0) as u64),
            CmpFn::Ne => (1.0 - col.eq_selectivity(v.max(0.0) as u64)).clamp(0.0, 1.0),
            // Range predicates interpret ranks as the value order and use
            // uniform mass over that order (skew applies to equality only).
            CmpFn::Lt => (v / ndv).clamp(0.0, 1.0),
            CmpFn::Le => ((v + 1.0) / ndv).clamp(0.0, 1.0),
            CmpFn::Gt => (1.0 - (v + 1.0) / ndv).clamp(0.0, 1.0),
            CmpFn::Ge => (1.0 - v / ndv).clamp(0.0, 1.0),
            CmpFn::Between => {
                let hi = value2.map(|x| x.as_f64()).unwrap_or(v);
                ((hi - v + 1.0) / ndv).clamp(0.0, 1.0)
            }
            CmpFn::Like => 0.05,
            CmpFn::In => (v.max(1.0) / ndv).clamp(0.0, 1.0),
            CmpFn::IsNull => 0.02,
        }
    }

    /// Effective NDV of `column` among `rows` remaining rows: the base NDV
    /// capped by the row count (you cannot have more distinct values than
    /// rows).
    pub fn effective_ndv(&self, column: ColumnId, rows: f64) -> f64 {
        let base = self
            .catalog
            .column(column)
            .map(|c: &ColumnMeta| c.ndv as f64)
            .unwrap_or(1000.0);
        base.min(rows.max(1.0))
    }

    /// Annotates every node of `plan` with true input/output cardinalities,
    /// indexed by `NodeId`.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no root.
    pub fn annotate(&self, plan: &PlanTree) -> Vec<NodeCard> {
        let mut cards = vec![NodeCard::default(); plan.len()];
        for id in plan.postorder() {
            let node = plan.node(id);
            let child_cards: Vec<NodeCard> = node.children().map(|c| cards[c]).collect();
            cards[id] = self.node_card(&node.op, &child_cards);
        }
        cards
    }

    fn node_card(&self, op: &Operator, children: &[NodeCard]) -> NodeCard {
        let in_rows: f64 = children.iter().map(|c| c.output_rows).sum();
        let in_width: f64 = children
            .iter()
            .map(|c| c.width)
            .fold(0.0, f64::max)
            .max(1.0);
        match op {
            Operator::TableScan {
                table,
                partitions_accessed,
                partitions_total,
                columns,
                predicate,
            } => {
                let t = self.catalog.table(*table);
                let rows = t.map(|t| t.rows as f64).unwrap_or(1000.0);
                let frac_parts = *partitions_accessed as f64 / (*partitions_total).max(1) as f64;
                let read = rows * frac_parts;
                // The pushed-down predicate filters the rows actually read.
                let out = read * self.selectivity(predicate);
                NodeCard {
                    input_rows: read,
                    output_rows: out.max(0.0),
                    width: columns.len().max(1) as f64,
                }
            }
            Operator::Filter { predicate } => NodeCard {
                input_rows: in_rows,
                output_rows: in_rows * self.selectivity(predicate),
                width: in_width,
            },
            Operator::Calc { predicate, columns } => NodeCard {
                input_rows: in_rows,
                output_rows: in_rows * self.selectivity(predicate),
                width: columns.len().max(1) as f64,
            },
            Operator::Project { columns } => NodeCard {
                input_rows: in_rows,
                output_rows: in_rows,
                width: columns.len().max(1) as f64,
            },
            Operator::Join {
                kind,
                left_keys,
                right_keys,
                ..
            } => {
                let l = children.first().copied().unwrap_or_default();
                let r = children.get(1).copied().unwrap_or_default();
                let out = self.join_output(*kind, &l, &r, left_keys, right_keys);
                NodeCard {
                    input_rows: l.output_rows + r.output_rows,
                    output_rows: out,
                    width: l.width + r.width,
                }
            }
            Operator::Aggregate {
                group_by, algo: _, ..
            } => {
                let groups = if group_by.is_empty() {
                    1.0
                } else {
                    let prod: f64 = group_by
                        .iter()
                        .map(|&c| self.effective_ndv(c, in_rows))
                        .product();
                    prod.min(in_rows.max(1.0))
                };
                let _ = AggAlgo::Hash; // algorithm does not change cardinality
                NodeCard {
                    input_rows: in_rows,
                    output_rows: groups,
                    width: in_width,
                }
            }
            Operator::Sort { .. } | Operator::Exchange { .. } | Operator::Spool { .. } => {
                NodeCard {
                    input_rows: in_rows,
                    output_rows: in_rows,
                    width: in_width,
                }
            }
            Operator::TopN { n, .. } | Operator::Limit { n } => NodeCard {
                input_rows: in_rows,
                output_rows: in_rows.min(*n as f64),
                width: in_width,
            },
            Operator::Union => NodeCard {
                input_rows: in_rows,
                output_rows: in_rows,
                width: in_width,
            },
            Operator::Sink => NodeCard {
                input_rows: in_rows,
                output_rows: in_rows,
                width: in_width,
            },
        }
    }

    fn join_output(
        &self,
        kind: JoinKind,
        l: &NodeCard,
        r: &NodeCard,
        left_keys: &[ColumnId],
        right_keys: &[ColumnId],
    ) -> f64 {
        // Classic containment estimate over (possibly composite) keys.
        let ndv_l: f64 = left_keys
            .iter()
            .map(|&c| self.effective_ndv(c, l.output_rows))
            .product::<f64>()
            .min(l.output_rows.max(1.0));
        let ndv_r: f64 = right_keys
            .iter()
            .map(|&c| self.effective_ndv(c, r.output_rows))
            .product::<f64>()
            .min(r.output_rows.max(1.0));
        let inner = l.output_rows * r.output_rows / ndv_l.max(ndv_r).max(1.0);
        match kind {
            JoinKind::Inner => inner,
            JoinKind::LeftOuter => inner.max(l.output_rows),
            JoinKind::RightOuter => inner.max(r.output_rows),
            JoinKind::FullOuter => inner.max(l.output_rows).max(r.output_rows),
            JoinKind::Semi => l.output_rows.min(inner),
            JoinKind::Anti => (l.output_rows - l.output_rows.min(inner)).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnDistribution;
    use crate::project::ProjectId;
    use crate::table::TableMeta;
    use mcsim_plan::op::{ExchangeKind, JoinAlgo};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        // Fact table: 1M rows, fk (col 1) into dim with 10k values.
        cat.add_table(
            TableMeta::new(0, ProjectId(0), 1_000_000, 10, vec![0, 1, 2], 0, None),
            vec![
                ColumnMeta::new(0, 0, 1_000_000, ColumnDistribution::Uniform),
                ColumnMeta::new(1, 0, 10_000, ColumnDistribution::Uniform),
                ColumnMeta::new(2, 0, 100, ColumnDistribution::Uniform),
            ],
        );
        // Dim table: 10k rows, pk col 10.
        cat.add_table(
            TableMeta::new(1, ProjectId(0), 10_000, 1, vec![10, 11], 0, None),
            vec![
                ColumnMeta::new(10, 1, 10_000, ColumnDistribution::Uniform),
                ColumnMeta::new(11, 1, 50, ColumnDistribution::Uniform),
            ],
        );
        cat
    }

    #[test]
    fn eq_selectivity_uniform() {
        let cat = catalog();
        let m = CardinalityModel::new(&cat);
        let p = Predicate::cmp(CmpFn::Eq, 2, Literal::Int(5));
        assert!((m.selectivity(&p) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn conjunction_multiplies() {
        let cat = catalog();
        let m = CardinalityModel::new(&cat);
        let p = Predicate::cmp(CmpFn::Eq, 2, Literal::Int(5)).and(Predicate::cmp(
            CmpFn::Eq,
            11,
            Literal::Int(3),
        ));
        assert!((m.selectivity(&p) - 0.01 * 0.02).abs() < 1e-9);
    }

    #[test]
    fn selectivity_stays_in_unit_interval() {
        let cat = catalog();
        let m = CardinalityModel::new(&cat);
        for op in CmpFn::all() {
            let p = Predicate::Cmp {
                op,
                column: 2,
                value: Literal::Int(50),
                value2: Some(Literal::Int(80)),
            };
            let s = m.selectivity(&p);
            assert!((0.0..=1.0).contains(&s), "{op:?} gave {s}");
        }
    }

    #[test]
    fn fk_join_output_equals_filtered_fact_side() {
        let cat = catalog();
        let m = CardinalityModel::new(&cat);
        let mut t = PlanTree::new();
        let f = t.leaf(Operator::table_scan(0, 10, 10, vec![0, 1]));
        let d = t.leaf(Operator::table_scan(1, 1, 1, vec![10]));
        let j = t.binary(
            Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![1], vec![10]),
            f,
            d,
        );
        t.set_root(j);
        let cards = m.annotate(&t);
        // |F ⋈ D| = 1M * 10k / max(10k, 10k) = 1M.
        assert!((cards[j].output_rows - 1_000_000.0).abs() / 1_000_000.0 < 0.01);
        assert_eq!(cards[f].input_rows, 1_000_000.0);
    }

    #[test]
    fn partition_pruning_reduces_read_rows() {
        let cat = catalog();
        let m = CardinalityModel::new(&cat);
        let mut t = PlanTree::new();
        let s = t.leaf(Operator::table_scan(0, 2, 10, vec![0]));
        t.set_root(s);
        let cards = m.annotate(&t);
        assert!((cards[s].input_rows - 200_000.0).abs() < 1.0);
    }

    #[test]
    fn aggregate_groups_capped_by_input() {
        let cat = catalog();
        let m = CardinalityModel::new(&cat);
        let mut t = PlanTree::new();
        let s = t.leaf(Operator::table_scan(1, 1, 1, vec![10, 11]));
        let a = t.unary(
            Operator::Aggregate {
                algo: AggAlgo::Hash,
                funcs: vec![mcsim_plan::op::AggFunc::Count],
                agg_columns: vec![10],
                group_by: vec![11],
            },
            s,
        );
        t.set_root(a);
        let cards = m.annotate(&t);
        assert!((cards[a].output_rows - 50.0).abs() < 1e-6);
        // Scalar aggregate produces one row.
        let mut t2 = PlanTree::new();
        let s2 = t2.leaf(Operator::table_scan(1, 1, 1, vec![10]));
        let a2 = t2.unary(
            Operator::Aggregate {
                algo: AggAlgo::Hash,
                funcs: vec![mcsim_plan::op::AggFunc::Count],
                agg_columns: vec![10],
                group_by: vec![],
            },
            s2,
        );
        t2.set_root(a2);
        assert_eq!(m.annotate(&t2)[a2].output_rows, 1.0);
    }

    #[test]
    fn limit_caps_output() {
        let cat = catalog();
        let m = CardinalityModel::new(&cat);
        let mut t = PlanTree::new();
        let s = t.leaf(Operator::table_scan(0, 10, 10, vec![0]));
        let l = t.unary(Operator::Limit { n: 7 }, s);
        t.set_root(l);
        assert_eq!(m.annotate(&t)[l].output_rows, 7.0);
    }

    #[test]
    fn exchange_passes_rows_through() {
        let cat = catalog();
        let m = CardinalityModel::new(&cat);
        let mut t = PlanTree::new();
        let s = t.leaf(Operator::table_scan(1, 1, 1, vec![10]));
        let e = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![10]), s);
        t.set_root(e);
        let cards = m.annotate(&t);
        assert_eq!(cards[e].output_rows, cards[s].output_rows);
    }

    #[test]
    fn semi_and_anti_partition_left_side() {
        let cat = catalog();
        let m = CardinalityModel::new(&cat);
        let build = |kind: JoinKind| {
            let mut t = PlanTree::new();
            let f = t.leaf(Operator::table_scan(0, 10, 10, vec![0, 1]));
            let d = t.leaf(Operator::table_scan(1, 1, 1, vec![10]));
            let j = t.binary(
                Operator::join(kind, JoinAlgo::Hash, vec![1], vec![10]),
                f,
                d,
            );
            t.set_root(j);
            m.annotate(&t)[j].output_rows
        };
        let semi = build(JoinKind::Semi);
        let anti = build(JoinKind::Anti);
        assert!((semi + anti - 1_000_000.0).abs() < 1.0);
    }
}
