//! Table metadata.

use crate::project::ProjectId;
use mcsim_plan::{ColumnId, TableId};
use serde::{Deserialize, Serialize};

/// Metadata of one (partitioned) table.
///
/// `rows` is the ground truth used by the execution physics; `stale_rows` is
/// what the native optimizer's coarse, metadata-driven cost model sees —
/// "cost estimation must fall back to coarse, metadata-driven approximations
/// such as historical table row counts" (Section 2.1). The two diverge by a
/// per-table misestimation factor drawn from the project profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableMeta {
    /// Global table identifier.
    pub id: TableId,
    /// Owning project.
    pub project: ProjectId,
    /// True current row count.
    pub rows: u64,
    /// Number of physical partitions.
    pub partitions: u32,
    /// Columns of this table (global ids).
    pub columns: Vec<ColumnId>,
    /// Day the table was created (simulation day index).
    pub created_day: i64,
    /// Day the table was (or will be) deleted, if it is a temporary table.
    pub deleted_day: Option<i64>,
    /// The row count the native optimizer believes (stale metadata
    /// snapshot at day 0).
    pub stale_rows: u64,
    /// Half-width (log10) of the stale-estimate error; the snapshot is
    /// re-drawn every few days as stats collection lags data modification,
    /// so the optimizer's belief *drifts over time* (see
    /// [`TableMeta::stale_rows_on`]).
    pub stale_drift: f64,
}

impl TableMeta {
    /// Creates a table whose stale estimate initially equals the truth.
    pub fn new(
        id: TableId,
        project: ProjectId,
        rows: u64,
        partitions: u32,
        columns: Vec<ColumnId>,
        created_day: i64,
        deleted_day: Option<i64>,
    ) -> Self {
        TableMeta {
            id,
            project,
            rows,
            partitions: partitions.max(1),
            columns,
            created_day,
            deleted_day,
            stale_rows: rows,
            stale_drift: 0.0,
        }
    }

    /// The stale row count the optimizer believes on `day`.
    ///
    /// Statistics snapshots refresh (with error) every ~3 days, staggered by
    /// table; between refreshes the belief is constant. The error magnitude
    /// is `stale_drift` decades, the same knob as the day-0 snapshot.
    pub fn stale_rows_on(&self, day: i64) -> u64 {
        if self.stale_drift <= 0.0 {
            return self.stale_rows;
        }
        // Epoch index staggered per table.
        let epoch = (day + (self.id as i64 % 3)).div_euclid(3);
        if epoch == 0 {
            return self.stale_rows;
        }
        let h = mcsim_plan::signature::fnv1a_seeded(0x57a1e ^ self.id as u64, &epoch.to_le_bytes());
        // Uniform in [-1, 1] from the hash.
        let u = (h % 2_000_001) as f64 / 1_000_000.0 - 1.0;
        let err = u * self.stale_drift;
        ((self.rows as f64) * 10f64.powf(err)).max(1.0) as u64
    }

    /// Lifespan in days (`i64::MAX` horizon tables report a large number).
    pub fn lifespan(&self) -> i64 {
        self.deleted_day.unwrap_or(i64::MAX / 2) - self.created_day
    }

    /// True if the table exists on `day`.
    pub fn is_live(&self, day: i64) -> bool {
        day >= self.created_day && self.deleted_day.map(|d| day < d).unwrap_or(true)
    }

    /// True if this is a long-lived table per Filter rule R3 (lifespan
    /// exceeding `n` days).
    pub fn is_long_lived(&self, n: i64) -> bool {
        self.lifespan() > n
    }

    /// Average rows per partition.
    pub fn rows_per_partition(&self) -> f64 {
        self.rows as f64 / self.partitions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifespan_and_liveness() {
        let t = TableMeta::new(0, ProjectId(0), 100, 2, vec![], 10, Some(15));
        assert_eq!(t.lifespan(), 5);
        assert!(!t.is_live(9));
        assert!(t.is_live(10));
        assert!(t.is_live(14));
        assert!(!t.is_live(15));
        assert!(!t.is_long_lived(30));
    }

    #[test]
    fn permanent_tables_are_long_lived() {
        let t = TableMeta::new(0, ProjectId(0), 100, 2, vec![], 0, None);
        assert!(t.is_long_lived(30));
        assert!(t.is_live(1_000_000));
    }

    #[test]
    fn partitions_are_at_least_one() {
        let t = TableMeta::new(0, ProjectId(0), 100, 0, vec![], 0, None);
        assert_eq!(t.partitions, 1);
        assert_eq!(t.rows_per_partition(), 100.0);
    }
}
