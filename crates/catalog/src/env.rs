//! Execution-environment metrics.
//!
//! LOAM models machine load with four standard metrics (Appendix B.2):
//! CPU_IDLE, IO_WAIT, LOAD5, MEM_USAGE. The first two and the last are
//! percentages in `[0, 1]`; LOAD5 is an unbounded load average that LOAM
//! log-normalizes before feeding it to the model.

use serde::{Deserialize, Serialize};

/// Upper bound used when log-normalizing LOAD5 (a load average of 64 on the
/// simulator's homogeneous machines is saturation).
pub const LOAD5_MAX: f64 = 64.0;

/// A snapshot (or average) of the four machine-load metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnvMetrics {
    /// Fraction of time the CPU is idle, in `[0, 1]`.
    pub cpu_idle: f64,
    /// Fraction of CPU time spent waiting on I/O, in `[0, 1]`.
    pub io_wait: f64,
    /// 5-minute load average (unbounded, typically `0..64`).
    pub load5: f64,
    /// Fraction of memory in use, in `[0, 1]`.
    pub mem_usage: f64,
}

impl EnvMetrics {
    /// Creates a snapshot, clamping percentage metrics into `[0, 1]` and
    /// LOAD5 to be non-negative.
    pub fn new(cpu_idle: f64, io_wait: f64, load5: f64, mem_usage: f64) -> Self {
        EnvMetrics {
            cpu_idle: cpu_idle.clamp(0.0, 1.0),
            io_wait: io_wait.clamp(0.0, 1.0),
            load5: load5.max(0.0),
            mem_usage: mem_usage.clamp(0.0, 1.0),
        }
    }

    /// The 4-dimensional normalized feature vector used in plan encodings:
    /// `[cpu_idle, io_wait, lognorm(load5), mem_usage]`, all in `[0, 1]`.
    ///
    /// LOAD5 is log-normalized ("the metric LOAD5 is log-normalized, while
    /// other metrics are already bounded and used directly" — Section 4).
    pub fn features(&self) -> [f64; 4] {
        [
            self.cpu_idle,
            self.io_wait,
            lognorm_load5(self.load5),
            self.mem_usage,
        ]
    }

    /// Reconstructs metrics from a normalized feature vector (inverse of
    /// [`EnvMetrics::features`]); used by inference strategies that set
    /// features directly.
    pub fn from_features(f: [f64; 4]) -> Self {
        EnvMetrics::new(f[0], f[1], inv_lognorm_load5(f[2]), f[3])
    }

    /// Element-wise average of several snapshots (stage-level averaging over
    /// machines and over the execution window).
    pub fn mean<'a, I: IntoIterator<Item = &'a EnvMetrics>>(iter: I) -> EnvMetrics {
        let mut acc = EnvMetrics::default();
        let mut n = 0usize;
        for m in iter {
            acc.cpu_idle += m.cpu_idle;
            acc.io_wait += m.io_wait;
            acc.load5 += m.load5;
            acc.mem_usage += m.mem_usage;
            n += 1;
        }
        if n == 0 {
            return EnvMetrics::default();
        }
        let nf = n as f64;
        EnvMetrics {
            cpu_idle: acc.cpu_idle / nf,
            io_wait: acc.io_wait / nf,
            load5: acc.load5 / nf,
            mem_usage: acc.mem_usage / nf,
        }
    }
}

/// Log-min-max normalization of LOAD5 into `[0, 1]`.
pub fn lognorm_load5(load5: f64) -> f64 {
    ((1.0 + load5.max(0.0)).ln() / (1.0 + LOAD5_MAX).ln()).clamp(0.0, 1.0)
}

/// Inverse of [`lognorm_load5`].
pub fn inv_lognorm_load5(x: f64) -> f64 {
    ((1.0 + LOAD5_MAX).ln() * x.clamp(0.0, 1.0)).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_are_normalized() {
        let e = EnvMetrics::new(0.7, 0.05, 8.0, 0.45);
        let f = e.features();
        assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)), "{f:?}");
    }

    #[test]
    fn load5_normalization_round_trips() {
        for &l in &[0.0, 0.5, 1.0, 4.0, 16.0, 64.0] {
            let x = lognorm_load5(l);
            let back = inv_lognorm_load5(x);
            assert!((back - l).abs() < 1e-6, "l={l} back={back}");
        }
    }

    #[test]
    fn from_features_round_trips() {
        let e = EnvMetrics::new(0.55, 0.02, 3.0, 0.6);
        let back = EnvMetrics::from_features(e.features());
        assert!((back.cpu_idle - e.cpu_idle).abs() < 1e-9);
        assert!((back.load5 - e.load5).abs() < 1e-6);
    }

    #[test]
    fn constructor_clamps() {
        let e = EnvMetrics::new(1.5, -0.2, -3.0, 2.0);
        assert_eq!(e.cpu_idle, 1.0);
        assert_eq!(e.io_wait, 0.0);
        assert_eq!(e.load5, 0.0);
        assert_eq!(e.mem_usage, 1.0);
    }

    #[test]
    fn mean_of_snapshots() {
        let a = EnvMetrics::new(0.2, 0.0, 2.0, 0.4);
        let b = EnvMetrics::new(0.8, 0.1, 6.0, 0.6);
        let m = EnvMetrics::mean([&a, &b]);
        assert!((m.cpu_idle - 0.5).abs() < 1e-12);
        assert!((m.load5 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_default() {
        let m = EnvMetrics::mean(std::iter::empty());
        assert_eq!(m, EnvMetrics::default());
    }
}
