//! Shared operator work model.
//!
//! Both the native optimizer's coarse cost model and the execution
//! simulator's ground-truth physics use the *same functional form* for
//! per-operator work — they differ only in the cardinalities they plug in
//! (stale metadata + default selectivities vs. exact propagation) and in the
//! environment/noise terms the executor adds on top. Keeping the form in one
//! place guarantees the native optimizer is a *plausible* optimizer: wrong
//! only because its inputs are wrong (Challenge 2), not because it uses
//! different physics.

use crate::selectivity::NodeCard;
use mcsim_plan::op::{AggAlgo, JoinAlgo, Operator};
use serde::{Deserialize, Serialize};

/// Tunable constants of the work model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkParams {
    /// Rows per instance above which a hash table spills to disk.
    pub spill_threshold: f64,
    /// Multiplier applied to spilled hash operations.
    pub spill_penalty: f64,
    /// Multiplier applied to the probe side of a join whose shuffle was
    /// removed without key alignment (skewed direct read).
    pub skew_penalty: f64,
    /// Work units per row for scanning (base).
    pub scan_row: f64,
    /// Additional scan work per row per accessed column.
    pub scan_col: f64,
    /// Work units converting to final CPU-cost units.
    pub work_to_cost: f64,
}

impl Default for WorkParams {
    fn default() -> Self {
        WorkParams {
            spill_threshold: 4.0e6,
            spill_penalty: 3.0,
            skew_penalty: 1.35,
            scan_row: 0.3,
            scan_col: 0.03,
            work_to_cost: 1.0e-3,
        }
    }
}

/// Caller-supplied adjustments the plain plan structure cannot express.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkContext {
    /// `true` if a join's inputs are mis-partitioned because an exchange was
    /// aggressively removed (ground truth known only to the executor; the
    /// coarse model optimistically assumes `false`).
    pub skewed_inputs: bool,
}

fn lg(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// Work of one operator given its cardinality annotation and its children's.
///
/// `card` is the operator's own annotation; `children` the annotations of its
/// children in order (left, right). Work units are converted to CPU cost by
/// [`WorkParams::work_to_cost`] at the plan level.
pub fn operator_work(
    op: &Operator,
    card: &NodeCard,
    children: &[NodeCard],
    ctx: WorkContext,
    p: &WorkParams,
) -> f64 {
    let out = card.output_rows.max(0.0);
    let input: f64 = children.iter().map(|c| c.output_rows).sum();
    match op {
        Operator::TableScan { columns, .. } => {
            card.input_rows * (p.scan_row + p.scan_col * columns.len() as f64)
        }
        Operator::Filter { predicate } => input * 0.1 * predicate.comparison_count().max(1) as f64,
        Operator::Calc { predicate, columns } => {
            input * (0.1 * predicate.comparison_count().max(1) as f64 + 0.02 * columns.len() as f64)
        }
        Operator::Project { columns } => input * 0.02 * columns.len() as f64,
        Operator::Join { algo, .. } => {
            let probe = children.first().map(|c| c.output_rows).unwrap_or(0.0);
            let build = children.get(1).map(|c| c.output_rows).unwrap_or(0.0);
            let skew = if ctx.skewed_inputs {
                p.skew_penalty
            } else {
                1.0
            };
            match algo {
                JoinAlgo::Hash => {
                    let spill = if build > p.spill_threshold {
                        p.spill_penalty
                    } else {
                        1.0
                    };
                    (1.2 * build + 1.0 * probe) * spill * skew + 0.3 * out
                }
                JoinAlgo::Merge => {
                    0.05 * (probe * lg(probe) + build * lg(build))
                        + 0.7 * (probe + build) * skew
                        + 0.3 * out
                }
                JoinAlgo::Broadcast => {
                    // Replicating the build side to every instance of the
                    // probe side; parallelism grows with probe volume.
                    let fanout = (probe / 1.0e6).clamp(1.0, 256.0);
                    build * fanout + 1.0 * probe + 0.3 * out
                }
                JoinAlgo::NestedLoop => 1.0e-3 * probe * build + 0.3 * out,
            }
        }
        Operator::Aggregate { algo, funcs, .. } => {
            let per_func = 0.2 * funcs.len().max(1) as f64;
            match algo {
                AggAlgo::Hash => {
                    let spill = if out > p.spill_threshold {
                        p.spill_penalty
                    } else {
                        1.0
                    };
                    (1.0 + per_func) * input * spill + 0.5 * out
                }
                AggAlgo::Sort => 0.05 * input * lg(input) + (0.8 + per_func) * input,
            }
        }
        Operator::Sort { .. } => 0.05 * input * lg(input),
        Operator::TopN { .. } => 0.3 * input,
        Operator::Exchange { kind, .. } => {
            let width_factor = 0.06 + 0.005 * card.width;
            match kind {
                mcsim_plan::op::ExchangeKind::Broadcast => {
                    let fanout = (input / 1.0e6).clamp(1.0, 256.0);
                    input * fanout * width_factor
                }
                _ => input * width_factor,
            }
        }
        Operator::Spool { .. } => 0.25 * input,
        Operator::Union => 0.05 * input,
        Operator::Limit { .. } => 0.0,
        Operator::Sink => 0.05 * input,
    }
}

/// Total work of a plan given per-node cardinalities and per-node contexts
/// (use `Default::default()` contexts for the coarse, optimistic view).
pub fn plan_work(
    plan: &mcsim_plan::PlanTree,
    cards: &[NodeCard],
    ctx_of: impl Fn(mcsim_plan::NodeId) -> WorkContext,
    p: &WorkParams,
) -> f64 {
    plan.postorder()
        .into_iter()
        .map(|id| {
            let n = plan.node(id);
            let children: Vec<NodeCard> = n.children().map(|c| cards[c]).collect();
            operator_work(&n.op, &cards[id], &children, ctx_of(id), p)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_plan::op::{JoinKind, Operator};
    use mcsim_plan::PlanTree;

    fn card(rows: f64) -> NodeCard {
        NodeCard {
            input_rows: rows,
            output_rows: rows,
            width: 2.0,
        }
    }

    #[test]
    fn hash_join_spill_penalty_kicks_in() {
        let p = WorkParams::default();
        let join = Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![0], vec![1]);
        let small = operator_work(
            &join,
            &card(1000.0),
            &[card(1.0e6), card(1.0e6)],
            WorkContext::default(),
            &p,
        );
        let big = operator_work(
            &join,
            &card(1000.0),
            &[card(1.0e6), card(1.0e7)],
            WorkContext::default(),
            &p,
        );
        // 10x build rows but >10x work because of the spill multiplier.
        assert!(big > small * 5.0);
    }

    #[test]
    fn merge_join_beats_spilled_hash_join_on_huge_builds() {
        let p = WorkParams::default();
        let rows = 2.0e7;
        let hash = operator_work(
            &Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![0], vec![1]),
            &card(rows),
            &[card(rows), card(rows)],
            WorkContext::default(),
            &p,
        );
        let merge = operator_work(
            &Operator::join(JoinKind::Inner, JoinAlgo::Merge, vec![0], vec![1]),
            &card(rows),
            &[card(rows), card(rows)],
            WorkContext::default(),
            &p,
        );
        assert!(
            merge < hash,
            "merge {merge} should beat spilled hash {hash}"
        );
    }

    #[test]
    fn hash_join_beats_merge_when_build_fits() {
        let p = WorkParams::default();
        let hash = operator_work(
            &Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![0], vec![1]),
            &card(1.0e5),
            &[card(1.0e6), card(1.0e5)],
            WorkContext::default(),
            &p,
        );
        let merge = operator_work(
            &Operator::join(JoinKind::Inner, JoinAlgo::Merge, vec![0], vec![1]),
            &card(1.0e5),
            &[card(1.0e6), card(1.0e5)],
            WorkContext::default(),
            &p,
        );
        assert!(hash < merge);
    }

    #[test]
    fn broadcast_wins_with_tiny_build_large_probe() {
        let p = WorkParams::default();
        let probe = 5.0e7;
        let build = 1.0e3;
        let bc = operator_work(
            &Operator::join(JoinKind::Inner, JoinAlgo::Broadcast, vec![0], vec![1]),
            &card(probe),
            &[card(probe), card(build)],
            WorkContext::default(),
            &p,
        );
        // Compare against hash join *plus* the exchange the probe side would
        // need (broadcast avoids shuffling the huge probe side).
        let hj = operator_work(
            &Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![0], vec![1]),
            &card(probe),
            &[card(probe), card(build)],
            WorkContext::default(),
            &p,
        );
        let ex = operator_work(
            &Operator::exchange(mcsim_plan::op::ExchangeKind::HashPartition, vec![0]),
            &card(probe),
            &[card(probe)],
            WorkContext::default(),
            &p,
        );
        assert!(bc < hj + ex);
    }

    #[test]
    fn skew_penalty_applies_to_joins() {
        let p = WorkParams::default();
        let join = Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![0], vec![1]);
        let clean = operator_work(
            &join,
            &card(1.0e4),
            &[card(1.0e6), card(1.0e4)],
            WorkContext {
                skewed_inputs: false,
            },
            &p,
        );
        let skewed = operator_work(
            &join,
            &card(1.0e4),
            &[card(1.0e6), card(1.0e4)],
            WorkContext {
                skewed_inputs: true,
            },
            &p,
        );
        assert!(skewed > clean * 1.3);
    }

    #[test]
    fn plan_work_sums_over_nodes() {
        let p = WorkParams::default();
        let mut t = PlanTree::new();
        let s = t.leaf(Operator::table_scan(0, 1, 1, vec![0, 1]));
        let k = t.unary(Operator::Sink, s);
        t.set_root(k);
        let cards = vec![
            NodeCard {
                input_rows: 1000.0,
                output_rows: 1000.0,
                width: 2.0,
            },
            NodeCard {
                input_rows: 1000.0,
                output_rows: 1000.0,
                width: 2.0,
            },
        ];
        let total = plan_work(&t, &cards, |_| WorkContext::default(), &p);
        let scan = 1000.0 * (p.scan_row + p.scan_col * 2.0);
        let sink = 0.05 * 1000.0;
        assert!((total - (scan + sink)).abs() < 1e-9);
    }

    #[test]
    fn sort_aggregate_beats_spilled_hash_aggregate() {
        let p = WorkParams::default();
        let input = 3.0e7;
        let groups = 1.0e7; // way past the spill threshold
        let hash = operator_work(
            &Operator::Aggregate {
                algo: AggAlgo::Hash,
                funcs: vec![mcsim_plan::op::AggFunc::Sum],
                agg_columns: vec![0],
                group_by: vec![1],
            },
            &NodeCard {
                input_rows: input,
                output_rows: groups,
                width: 2.0,
            },
            &[card(input)],
            WorkContext::default(),
            &p,
        );
        let sort = operator_work(
            &Operator::Aggregate {
                algo: AggAlgo::Sort,
                funcs: vec![mcsim_plan::op::AggFunc::Sum],
                agg_columns: vec![0],
                group_by: vec![1],
            },
            &NodeCard {
                input_rows: input,
                output_rows: groups,
                width: 2.0,
            },
            &[card(input)],
            WorkContext::default(),
            &p,
        );
        assert!(sort < hash);
    }
}
