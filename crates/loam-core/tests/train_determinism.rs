//! End-to-end training determinism: with a fixed seed, `train` must produce
//! bit-identical per-epoch losses no matter how many pool threads run the
//! kernels underneath it.

use loam_core::predictor::train::{train, TrainConfig, TrainSample};
use loam_core::AdaptiveCostPredictor;
use mcsim_catalog::EnvMetrics;
use mcsim_plan::{Operator, PlanTree};

/// Synthetic workload: chains of varying depth with a cost that depends on
/// plan size and the (deterministic) environment.
fn make_samples(n: usize) -> Vec<TrainSample> {
    (0..n)
        .map(|i| {
            let chain = 2 + (i % 5);
            let mut plan = PlanTree::new();
            let mut cur = plan.leaf(Operator::table_scan((i % 7) as u32, 1, 1, vec![0]));
            for _ in 0..chain {
                cur = plan.unary(Operator::Limit { n: 10 }, cur);
            }
            let s = plan.unary(Operator::Sink, cur);
            plan.set_root(s);
            let idle = 0.1 + 0.8 * ((i as f64 * 0.37).fract());
            let env = EnvMetrics::new(idle, 0.05, 4.0, 0.5);
            let mult = 1.0 + 1.5 * (1.0 - idle);
            TrainSample {
                plan,
                stage_envs: vec![env],
                cost: 100.0 * (chain + 2) as f64 * mult,
            }
        })
        .collect()
}

fn loss_bits(losses: &[f64]) -> Vec<u64> {
    losses.iter().map(|l| l.to_bits()).collect()
}

fn train_once(samples: &[TrainSample]) -> Vec<u64> {
    let mut p = AdaptiveCostPredictor::new(7, true);
    let cfg = TrainConfig {
        epochs: 4,
        adaptive: false,
        seed: 0xd5eed,
        ..TrainConfig::default()
    };
    let report = train(&mut p, samples, &[], EnvMetrics::default(), &cfg);
    assert_eq!(report.cost_loss.len(), 4);
    loss_bits(&report.cost_loss)
}

/// Two runs with the same seed produce identical loss curves, and the curve
/// does not change across thread counts 1, 2, and 8 even with the work gate
/// forced open (every kernel takes its parallel path).
#[test]
fn same_seed_same_losses_at_any_thread_count() {
    let samples = make_samples(60);

    let prev_threads = mcsim_par::threads();
    let prev_work = mcsim_par::set_min_parallel_work(1);

    mcsim_par::set_threads(1);
    let reference = train_once(&samples);
    let repeat = train_once(&samples);
    assert_eq!(reference, repeat, "same seed must replay identically");

    for threads in [2usize, 8] {
        mcsim_par::set_threads(threads);
        let run = train_once(&samples);
        assert_eq!(
            reference, run,
            "loss curve changed at {threads} threads — parallel kernels are not bit-identical"
        );
    }

    mcsim_par::set_threads(prev_threads);
    mcsim_par::set_min_parallel_work(prev_work);
}
