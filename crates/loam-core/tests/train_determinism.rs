//! End-to-end training determinism: with a fixed seed, `train` must produce
//! bit-identical per-epoch losses no matter how many pool threads run the
//! kernels underneath it.

use loam_core::predictor::train::{train, train_reference, TrainConfig, TrainSample};
use loam_core::AdaptiveCostPredictor;
use mcsim_catalog::EnvMetrics;
use mcsim_plan::{Operator, PlanTree};

/// Synthetic workload: chains of varying depth with a cost that depends on
/// plan size and the (deterministic) environment.
fn make_samples(n: usize) -> Vec<TrainSample> {
    (0..n)
        .map(|i| {
            let chain = 2 + (i % 5);
            let mut plan = PlanTree::new();
            let mut cur = plan.leaf(Operator::table_scan((i % 7) as u32, 1, 1, vec![0]));
            for _ in 0..chain {
                cur = plan.unary(Operator::Limit { n: 10 }, cur);
            }
            let s = plan.unary(Operator::Sink, cur);
            plan.set_root(s);
            let idle = 0.1 + 0.8 * ((i as f64 * 0.37).fract());
            let env = EnvMetrics::new(idle, 0.05, 4.0, 0.5);
            let mult = 1.0 + 1.5 * (1.0 - idle);
            TrainSample {
                plan,
                stage_envs: vec![env],
                cost: 100.0 * (chain + 2) as f64 * mult,
            }
        })
        .collect()
}

fn loss_bits(losses: &[f64]) -> Vec<u64> {
    losses.iter().map(|l| l.to_bits()).collect()
}

fn train_once(samples: &[TrainSample]) -> Vec<u64> {
    let mut p = AdaptiveCostPredictor::new(7, true);
    let cfg = TrainConfig {
        epochs: 4,
        adaptive: false,
        seed: 0xd5eed,
        ..TrainConfig::default()
    };
    let report = train(&mut p, samples, &[], EnvMetrics::default(), &cfg);
    assert_eq!(report.cost_loss.len(), 4);
    loss_bits(&report.cost_loss)
}

/// Two runs with the same seed produce identical loss curves, and the curve
/// does not change across thread counts 1, 2, and 8 even with the work gate
/// forced open (every kernel takes its parallel path).
#[test]
fn same_seed_same_losses_at_any_thread_count() {
    let samples = make_samples(60);

    let prev_threads = mcsim_par::threads();
    let prev_work = mcsim_par::set_min_parallel_work(1);

    mcsim_par::set_threads(1);
    let reference = train_once(&samples);
    let repeat = train_once(&samples);
    assert_eq!(reference, repeat, "same seed must replay identically");

    for threads in [2usize, 8] {
        mcsim_par::set_threads(threads);
        let run = train_once(&samples);
        assert_eq!(
            reference, run,
            "loss curve changed at {threads} threads — parallel kernels are not bit-identical"
        );
    }

    mcsim_par::set_threads(prev_threads);
    mcsim_par::set_min_parallel_work(prev_work);
}

/// Candidate plans for the adversarial (DANN) branch: simple chains that
/// differ in shape from the training plans.
fn make_candidates(n: usize) -> Vec<PlanTree> {
    (0..n)
        .map(|i| {
            let mut plan = PlanTree::new();
            let mut cur = plan.leaf(Operator::table_scan((i % 3) as u32, 1, 1, vec![0]));
            for _ in 0..(1 + i % 4) {
                cur = plan.unary(Operator::Limit { n: 5 }, cur);
            }
            let s = plan.unary(Operator::Sink, cur);
            plan.set_root(s);
            plan
        })
        .collect()
}

/// Every model weight as its bit pattern, so comparisons are exact.
fn weight_bits(p: &AdaptiveCostPredictor) -> Vec<u32> {
    p.plan_emb
        .params()
        .into_iter()
        .chain(p.cost_head.params())
        .chain(p.dom_head.params())
        .flat_map(|prm| prm.value.data.iter().map(|v| v.to_bits()))
        .collect()
}

fn train_weights(
    samples: &[TrainSample],
    candidates: &[PlanTree],
    cfg: &TrainConfig,
    reference: bool,
) -> Vec<u32> {
    let mut p = AdaptiveCostPredictor::new(7, true);
    let f = if reference { train_reference } else { train };
    f(&mut p, samples, candidates, EnvMetrics::default(), cfg);
    weight_bits(&p)
}

/// The microbatched workspace engine yields bit-identical FINAL WEIGHTS at
/// 1, 2, and 8 threads — and those weights match the legacy allocating path
/// (`train_reference`) on the same seed. Runs the full adaptive (DANN)
/// configuration so the candidate branch is exercised too.
#[test]
fn microbatched_weights_are_bit_identical_across_engines_and_threads() {
    let samples = make_samples(48);
    let candidates = make_candidates(12);
    let cfg = TrainConfig {
        epochs: 3,
        adaptive: true,
        seed: 0xd5eed,
        ..TrainConfig::default()
    };

    let prev_threads = mcsim_par::threads();
    let prev_work = mcsim_par::set_min_parallel_work(1);

    mcsim_par::set_threads(1);
    let serial = train_weights(&samples, &candidates, &cfg, false);
    let legacy = train_weights(&samples, &candidates, &cfg, true);
    assert_eq!(
        serial, legacy,
        "workspace engine diverged from the legacy allocating path"
    );

    for threads in [2usize, 8] {
        mcsim_par::set_threads(threads);
        let run = train_weights(&samples, &candidates, &cfg, false);
        assert_eq!(
            serial, run,
            "final weights changed at {threads} threads — microbatch reduction is not deterministic"
        );
    }

    mcsim_par::set_threads(prev_threads);
    mcsim_par::set_min_parallel_work(prev_work);
}
