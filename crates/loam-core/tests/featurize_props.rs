//! Property tests on the statistics-free featurization over real generated
//! plans, and on the predictor's numerical hygiene.

use loam_core::featurize::{EnvSource, FeatureCache, PlanFeaturizer, ENV_OFF, FEATURE_DIM};
use loam_core::AdaptiveCostPredictor;
use mcsim_catalog::{EnvMetrics, ProjectId, ProjectProfile};
use mcsim_optimizer::{Knobs, NativeOptimizer, OptimizerFlags};
use proptest::prelude::*;

fn plans_for_seed(seed: u64) -> Vec<mcsim_plan::PlanTree> {
    let mut prof = ProjectProfile::random(seed);
    prof.n_tables = prof.n_tables.min(30);
    prof.n_templates = prof.n_templates.min(12);
    let p = prof.generate(ProjectId(0));
    let optimizer = NativeOptimizer::new(&p.catalog);
    let mut plans = Vec::new();
    for q in p.workload_for_day(0).iter().take(4) {
        for i in 0..OptimizerFlags::COUNT {
            plans.push(optimizer.optimize(
                q,
                &Knobs {
                    flags: OptimizerFlags::default().toggled(i),
                    card_scale: 1.0,
                },
            ));
        }
    }
    plans
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn features_are_bounded_and_finite(seed in 0u64..3000) {
        let featurizer = PlanFeaturizer::default();
        let env = EnvMetrics::new(0.5, 0.05, 6.0, 0.5);
        for plan in plans_for_seed(seed) {
            let (x, tree) = featurizer.featurize(&plan, EnvSource::Uniform(env));
            prop_assert_eq!(x.rows, plan.len());
            prop_assert_eq!(x.cols, FEATURE_DIM);
            prop_assert_eq!(tree.len(), plan.len());
            for v in &x.data {
                prop_assert!(v.is_finite());
                prop_assert!((0.0..=1.0).contains(v), "feature out of range: {v}");
            }
        }
    }

    #[test]
    fn featurization_is_deterministic(seed in 0u64..3000) {
        let featurizer = PlanFeaturizer::default();
        for plan in plans_for_seed(seed).into_iter().take(3) {
            let a = featurizer.featurize(&plan, EnvSource::None);
            let b = featurizer.featurize(&plan, EnvSource::None);
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn env_block_reflects_the_override(seed in 0u64..1000, idle in 0.05f64..0.95) {
        let featurizer = PlanFeaturizer::default();
        let env = EnvMetrics::new(idle, 0.05, 6.0, 0.5);
        if let Some(plan) = plans_for_seed(seed).into_iter().next() {
            let (x, _) = featurizer.featurize(&plan, EnvSource::Uniform(env));
            for r in 0..x.rows {
                prop_assert!((x.row(r)[ENV_OFF] as f64 - idle).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn cached_featurization_equals_fresh(seed in 0u64..2000, idle in 0.05f64..0.95) {
        let featurizer = PlanFeaturizer::default();
        let cache = FeatureCache::new();
        let env = EnvMetrics::new(idle, 0.05, 6.0, 0.5);
        let plans = plans_for_seed(seed);
        for plan in plans.iter().take(4) {
            for source in [EnvSource::None, EnvSource::Uniform(env)] {
                let fresh = featurizer.featurize(plan, source.clone());
                // First lookup populates the cache, second must hit; both
                // return exactly what a fresh featurization would.
                let miss = cache.featurize(&featurizer, plan, source.clone());
                let hit = cache.featurize(&featurizer, plan, source);
                prop_assert_eq!(&fresh.0, &miss.0);
                prop_assert_eq!(&fresh.1, &miss.1);
                prop_assert!(std::sync::Arc::ptr_eq(&miss, &hit), "second lookup must hit");
            }
        }
        // Distinct env sources for the same plan occupy distinct entries.
        prop_assert!(cache.len() >= 2);
    }

    #[test]
    fn untrained_predictions_are_positive_and_finite(seed in 0u64..1000) {
        let model = AdaptiveCostPredictor::new(seed, true);
        for plan in plans_for_seed(seed).into_iter().take(4) {
            let c = model.predict(&plan, EnvSource::None);
            prop_assert!(c.is_finite() && c > 0.0);
        }
    }
}

#[test]
fn flag_variants_of_the_same_query_get_distinct_features() {
    // The featurizer must distinguish candidate plans, otherwise steering is
    // impossible by construction.
    let featurizer = PlanFeaturizer::default();
    let plans = plans_for_seed(11);
    let mut distinct = std::collections::HashSet::new();
    for plan in plans.iter().take(6) {
        let (x, _) = featurizer.featurize(plan, EnvSource::None);
        let key: Vec<u32> = x.data.iter().map(|v| v.to_bits()).collect();
        distinct.insert(key);
    }
    assert!(
        distinct.len() >= 2,
        "feature collisions across flag variants"
    );
}
