//! Plan vectorization (Section 4, Figure 4).
//!
//! Each plan node becomes one feature row:
//!
//! | block | width | contents |
//! |---|---|---|
//! | operator one-hot | 20 | [`mcsim_plan::OpType`] |
//! | table hash enc | 40 | multi-segment encoding of the scanned table |
//! | scan shape | 3 | log-normalized #partitions accessed, #partitions total, #columns |
//! | join form one-hot | 6 | inner/outer/… |
//! | agg function multi-hot | 6 | SUM/COUNT/… |
//! | filter function multi-hot | 10 | =, <, BETWEEN, … |
//! | key-column hash enc | 40 | join keys / group-by / agg / sort columns |
//! | filter-column hash enc | 40 | columns referenced by predicates |
//! | environment | 4 | CPU_IDLE, IO_WAIT, lognorm LOAD5, MEM_USAGE |
//!
//! All plan nodes within the same stage share the same environment block
//! (they run on the same allocated machines). The encoding is deliberately
//! **statistics-free**: no histograms, NDVs or cardinalities appear —
//! data-distribution knowledge must be inferred from operator attributes and
//! historical costs (the paper's answer to Challenge 2).

use super::hash_enc::{encode_ids, HASH_ENC_DIM};
use mcsim_catalog::EnvMetrics;
use mcsim_plan::op::{Operator, OP_TYPE_COUNT};
use mcsim_plan::stage::decompose;
use mcsim_plan::PlanTree;
use tinynn::tcn::TreeStructure;
use tinynn::Mat;

/// Offsets of the feature blocks.
const OP_OFF: usize = 0;
const TABLE_OFF: usize = OP_OFF + OP_TYPE_COUNT;
const SHAPE_OFF: usize = TABLE_OFF + HASH_ENC_DIM;
const JOIN_OFF: usize = SHAPE_OFF + 3;
const AGG_OFF: usize = JOIN_OFF + mcsim_plan::op::JoinKind::COUNT;
const FILTER_FN_OFF: usize = AGG_OFF + mcsim_plan::op::AggFunc::COUNT;
const KEY_COL_OFF: usize = FILTER_FN_OFF + mcsim_plan::expr::CmpFn::COUNT;
const FILTER_COL_OFF: usize = KEY_COL_OFF + HASH_ENC_DIM;
/// Offset of the 4-dimensional environment block.
pub const ENV_OFF: usize = FILTER_COL_OFF + HASH_ENC_DIM;
/// Total node-feature width.
pub const FEATURE_DIM: usize = ENV_OFF + 4;

/// Namespaces for the hash encoder.
const NS_TABLE: u64 = 0x7ab1e;
const NS_KEY_COL: u64 = 0xc01a;
const NS_FILTER_COL: u64 = 0xf11c01;

/// How the environment block of a vectorized plan is filled.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvSource<'a> {
    /// Per-stage observed metrics (training on historical executions).
    PerStage(&'a [EnvMetrics]),
    /// A single override for every node (inference strategies, Section 5).
    Uniform(EnvMetrics),
    /// No environment information (the LOAM-NL ablation): zeros.
    None,
}

/// The plan featurizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlanFeaturizer {
    /// When false, the environment block is always zero (LOAM-NL).
    pub use_env: bool,
}

impl Default for PlanFeaturizer {
    fn default() -> Self {
        PlanFeaturizer { use_env: true }
    }
}

impl PlanFeaturizer {
    /// Vectorizes `plan` into (node features, tree structure). Node row `i`
    /// corresponds to plan `NodeId` `i`.
    ///
    /// Thin allocating wrapper over [`PlanFeaturizer::featurize_into`].
    pub fn featurize(&self, plan: &PlanTree, env: EnvSource<'_>) -> (Mat, TreeStructure) {
        let mut x = Mat::default();
        let mut tree = TreeStructure::default();
        self.featurize_into(plan, env, &mut x, &mut tree);
        (x, tree)
    }

    /// Vectorizes `plan` into caller-owned buffers, reusing their capacity
    /// across calls; identical output to [`PlanFeaturizer::featurize`].
    pub fn featurize_into(
        &self,
        plan: &PlanTree,
        env: EnvSource<'_>,
        x: &mut Mat,
        tree: &mut TreeStructure,
    ) {
        mcsim_obs::counter("loam.featurize.calls", 1);
        x.resize_in_place(plan.len(), FEATURE_DIM);
        x.fill(0.0);
        tree.left.clear();
        tree.right.clear();
        self.encode_plan_at(plan, &env, x, 0, tree);
    }

    /// Structure-of-arrays batch vectorization: every plan's node rows land
    /// contiguously in one stacked feature matrix, with child indices offset
    /// into the stack and `bounds` holding `plans.len() + 1` prefix node
    /// offsets — exactly the stacked-batch contract of
    /// `tinynn::ForestWs::stacked_parts_mut`, so a scoring batch goes from
    /// plans to one fused forest forward without any per-plan matrices. Row
    /// content is identical to featurizing each plan alone (the encoder is
    /// row-local), just relocated by the plan's node offset.
    pub fn featurize_forest_into(
        &self,
        plans: &[&PlanTree],
        env: EnvSource<'_>,
        x: &mut Mat,
        tree: &mut TreeStructure,
        bounds: &mut Vec<usize>,
    ) {
        mcsim_obs::counter("loam.featurize.calls", plans.len() as u64);
        let total: usize = plans.iter().map(|p| p.len()).sum();
        x.resize_in_place(total, FEATURE_DIM);
        x.fill(0.0);
        tree.left.clear();
        tree.right.clear();
        bounds.clear();
        bounds.push(0);
        let mut off = 0;
        for plan in plans {
            self.encode_plan_at(plan, &env, x, off, tree);
            off += plan.len();
            bounds.push(off);
        }
    }

    /// Encodes one plan's node rows starting at row `off` of the stacked
    /// matrix (rows must be pre-zeroed) and appends its offset child links.
    fn encode_plan_at(
        &self,
        plan: &PlanTree,
        env: &EnvSource<'_>,
        x: &mut Mat,
        off: usize,
        tree: &mut TreeStructure,
    ) {
        let stage_of: Option<Vec<usize>> = match env {
            EnvSource::PerStage(_) => Some(decompose(plan).stage_of_node),
            _ => None,
        };

        for (id, node) in plan.iter() {
            let row = x.row_mut(off + id);
            encode_operator(&node.op, row);
            if self.use_env {
                let metrics = match env {
                    EnvSource::PerStage(envs) => {
                        let s = stage_of.as_ref().expect("stage map")[id];
                        envs.get(s).copied().unwrap_or_default()
                    }
                    EnvSource::Uniform(e) => *e,
                    EnvSource::None => EnvMetrics::default(),
                };
                if !matches!(env, EnvSource::None) {
                    let f = metrics.features();
                    for (k, &v) in f.iter().enumerate() {
                        row[ENV_OFF + k] = v as f32;
                    }
                }
            }
        }

        tree.left
            .extend(plan.iter().map(|(_, n)| n.left.map(|j| j + off)));
        tree.right
            .extend(plan.iter().map(|(_, n)| n.right.map(|j| j + off)));
    }
}

fn lognorm(x: f64, max: f64) -> f32 {
    ((1.0 + x.max(0.0)).ln() / (1.0 + max).ln()).clamp(0.0, 1.0) as f32
}

fn encode_operator(op: &Operator, row: &mut [f32]) {
    row[OP_OFF + op.op_type().index()] = 1.0;
    match op {
        Operator::TableScan {
            table,
            partitions_accessed,
            partitions_total,
            columns,
            predicate,
        } => {
            encode_ids(
                NS_TABLE,
                std::iter::once(*table as u64),
                &mut row[TABLE_OFF..TABLE_OFF + HASH_ENC_DIM],
            );
            row[SHAPE_OFF] = lognorm(*partitions_accessed as f64, 4096.0);
            row[SHAPE_OFF + 1] = lognorm(*partitions_total as f64, 4096.0);
            row[SHAPE_OFF + 2] = lognorm(columns.len() as f64, 64.0);
            if !predicate.is_true() {
                for f in predicate.functions() {
                    row[FILTER_FN_OFF + f.index()] = 1.0;
                }
                encode_ids(
                    NS_FILTER_COL,
                    predicate.columns().into_iter().map(|c| c as u64),
                    &mut row[FILTER_COL_OFF..FILTER_COL_OFF + HASH_ENC_DIM],
                );
            }
        }
        Operator::Filter { predicate } | Operator::Calc { predicate, .. } => {
            for f in predicate.functions() {
                row[FILTER_FN_OFF + f.index()] = 1.0;
            }
            encode_ids(
                NS_FILTER_COL,
                predicate.columns().into_iter().map(|c| c as u64),
                &mut row[FILTER_COL_OFF..FILTER_COL_OFF + HASH_ENC_DIM],
            );
            if let Operator::Calc { columns, .. } = op {
                row[SHAPE_OFF + 2] = lognorm(columns.len() as f64, 64.0);
            }
        }
        Operator::Project { columns } => {
            row[SHAPE_OFF + 2] = lognorm(columns.len() as f64, 64.0);
        }
        Operator::Join {
            kind,
            left_keys,
            right_keys,
            ..
        } => {
            row[JOIN_OFF + kind.index()] = 1.0;
            encode_ids(
                NS_KEY_COL,
                left_keys.iter().chain(right_keys).map(|&c| c as u64),
                &mut row[KEY_COL_OFF..KEY_COL_OFF + HASH_ENC_DIM],
            );
        }
        Operator::Aggregate {
            funcs,
            agg_columns,
            group_by,
            ..
        } => {
            for f in funcs {
                row[AGG_OFF + f.index()] = 1.0;
            }
            encode_ids(
                NS_KEY_COL,
                agg_columns.iter().chain(group_by).map(|&c| c as u64),
                &mut row[KEY_COL_OFF..KEY_COL_OFF + HASH_ENC_DIM],
            );
        }
        Operator::Sort { keys } | Operator::TopN { keys, .. } | Operator::Exchange { keys, .. } => {
            encode_ids(
                NS_KEY_COL,
                keys.iter().map(|&c| c as u64),
                &mut row[KEY_COL_OFF..KEY_COL_OFF + HASH_ENC_DIM],
            );
        }
        Operator::Spool { .. } | Operator::Union | Operator::Limit { .. } | Operator::Sink => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_plan::expr::{CmpFn, Literal, Predicate};
    use mcsim_plan::op::{ExchangeKind, JoinAlgo, JoinKind};

    fn join_plan() -> PlanTree {
        let mut t = PlanTree::new();
        let a = t.leaf(Operator::TableScan {
            table: 3,
            partitions_accessed: 2,
            partitions_total: 8,
            columns: vec![30, 31],
            predicate: Predicate::cmp(CmpFn::Eq, 31, Literal::Int(5)),
        });
        let b = t.leaf(Operator::table_scan(4, 1, 1, vec![40]));
        let ea = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![30]), a);
        let eb = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![40]), b);
        let j = t.binary(
            Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![30], vec![40]),
            ea,
            eb,
        );
        let s = t.unary(Operator::Sink, j);
        t.set_root(s);
        t
    }

    #[test]
    fn feature_dim_is_consistent() {
        let f = PlanFeaturizer::default();
        let plan = join_plan();
        let (x, tree) = f.featurize(&plan, EnvSource::None);
        assert_eq!(x.cols, FEATURE_DIM);
        assert_eq!(x.rows, plan.len());
        assert_eq!(tree.len(), plan.len());
    }

    #[test]
    fn op_one_hot_is_exactly_one() {
        let f = PlanFeaturizer::default();
        let plan = join_plan();
        let (x, _) = f.featurize(&plan, EnvSource::None);
        for r in 0..x.rows {
            let ones: usize = x.row(r)[OP_OFF..OP_OFF + OP_TYPE_COUNT]
                .iter()
                .filter(|&&v| v == 1.0)
                .count();
            assert_eq!(ones, 1);
        }
    }

    #[test]
    fn filter_functions_and_columns_are_encoded() {
        let f = PlanFeaturizer::default();
        let plan = join_plan();
        let (x, _) = f.featurize(&plan, EnvSource::None);
        // Node 0 is the filtered scan.
        let row = x.row(0);
        assert_eq!(row[FILTER_FN_OFF + CmpFn::Eq.index()], 1.0);
        let filter_cols: f32 = row[FILTER_COL_OFF..FILTER_COL_OFF + HASH_ENC_DIM]
            .iter()
            .sum();
        assert!(filter_cols >= 5.0, "five segments must be hot");
        // Unfiltered scan has no filter encoding.
        let row1 = x.row(1);
        let none: f32 = row1[FILTER_FN_OFF..FILTER_FN_OFF + CmpFn::COUNT]
            .iter()
            .sum();
        assert_eq!(none, 0.0);
    }

    #[test]
    fn different_tables_have_different_encodings() {
        let f = PlanFeaturizer::default();
        let plan = join_plan();
        let (x, _) = f.featurize(&plan, EnvSource::None);
        let t0 = &x.row(0)[TABLE_OFF..TABLE_OFF + HASH_ENC_DIM];
        let t1 = &x.row(1)[TABLE_OFF..TABLE_OFF + HASH_ENC_DIM];
        assert_ne!(t0, t1);
    }

    #[test]
    fn uniform_env_fills_every_node() {
        let f = PlanFeaturizer::default();
        let plan = join_plan();
        let env = EnvMetrics::new(0.6, 0.05, 4.0, 0.5);
        let (x, _) = f.featurize(&plan, EnvSource::Uniform(env));
        for r in 0..x.rows {
            let row = x.row(r);
            assert!((row[ENV_OFF] - 0.6).abs() < 1e-6);
            assert!(row[ENV_OFF + 2] > 0.0);
        }
    }

    #[test]
    fn per_stage_env_differs_across_stages() {
        let f = PlanFeaturizer::default();
        let plan = join_plan();
        let stages = decompose(&plan);
        let envs: Vec<EnvMetrics> = (0..stages.len())
            .map(|i| EnvMetrics::new(0.1 * (i + 1) as f64, 0.0, 1.0, 0.5))
            .collect();
        let (x, _) = f.featurize(&plan, EnvSource::PerStage(&envs));
        // Scan (producer stage) vs sink (root stage) see different cpu_idle.
        let scan_env = x.row(0)[ENV_OFF];
        let sink_env = x.row(5)[ENV_OFF];
        assert_ne!(scan_env, sink_env);
    }

    #[test]
    fn no_env_mode_zeroes_the_block() {
        let f = PlanFeaturizer { use_env: false };
        let plan = join_plan();
        let env = EnvMetrics::new(0.6, 0.05, 4.0, 0.5);
        let (x, _) = f.featurize(&plan, EnvSource::Uniform(env));
        for r in 0..x.rows {
            assert!(x.row(r)[ENV_OFF..].iter().all(|&v| v == 0.0));
        }
    }

    /// The stacked (structure-of-arrays) batch featurization must equal
    /// featurizing every plan alone: identical row bits at the plan's offset
    /// and identically offset child links.
    #[test]
    fn forest_featurization_matches_per_plan_bitwise() {
        let f = PlanFeaturizer::default();
        let small = {
            let mut t = PlanTree::new();
            let a = t.leaf(Operator::table_scan(7, 1, 4, vec![70, 71]));
            let s = t.unary(Operator::Sink, a);
            t.set_root(s);
            t
        };
        let plans = [join_plan(), small, join_plan()];
        let refs: Vec<&PlanTree> = plans.iter().collect();
        let env = EnvMetrics::new(0.6, 0.05, 4.0, 0.5);

        let mut x = Mat::default();
        let mut tree = TreeStructure::default();
        let mut bounds = Vec::new();
        f.featurize_forest_into(
            &refs,
            EnvSource::Uniform(env),
            &mut x,
            &mut tree,
            &mut bounds,
        );

        let total: usize = plans.iter().map(|p| p.len()).sum();
        assert_eq!((x.rows, x.cols), (total, FEATURE_DIM));
        assert_eq!(bounds, {
            let mut b = vec![0];
            let mut off = 0;
            for p in &plans {
                off += p.len();
                b.push(off);
            }
            b
        });
        for (b, plan) in plans.iter().enumerate() {
            let (xa, ta) = f.featurize(plan, EnvSource::Uniform(env));
            let off = bounds[b];
            for r in 0..plan.len() {
                assert_eq!(x.row(off + r), xa.row(r), "plan {b} row {r}");
            }
            for i in 0..plan.len() {
                assert_eq!(tree.left[off + i], ta.left[i].map(|j| j + off));
                assert_eq!(tree.right[off + i], ta.right[i].map(|j| j + off));
            }
        }
        // Warm reuse with a smaller batch stays identical.
        f.featurize_forest_into(
            &refs[..1],
            EnvSource::Uniform(env),
            &mut x,
            &mut tree,
            &mut bounds,
        );
        let (xa, _) = f.featurize(&plans[0], EnvSource::Uniform(env));
        assert_eq!(bounds, vec![0, plans[0].len()]);
        for r in 0..plans[0].len() {
            assert_eq!(x.row(r), xa.row(r));
        }
    }

    #[test]
    fn tree_structure_mirrors_plan_links() {
        let f = PlanFeaturizer::default();
        let plan = join_plan();
        let (_, tree) = f.featurize(&plan, EnvSource::None);
        for (id, node) in plan.iter() {
            assert_eq!(tree.left[id], node.left);
            assert_eq!(tree.right[id], node.right);
        }
    }
}
