//! Multi-segment hash encoding of table/column identifiers (Appendix B.1).
//!
//! Standard hash encoding into `N` buckets collides quickly; LOAM instead
//! encodes each identifier into `S` independent segments of `N'` buckets
//! each (5 × 10, exactly as in the paper). With independent hash functions per segment,
//! two identifiers collide only if they collide in *every* segment, so a
//! 5 × 10 encoding reliably distinguishes ~10⁵ identifiers. The encoding
//! extends to identifier *sets* by unioning the per-identifier encodings.

use mcsim_plan::signature::fnv1a_seeded;

/// Number of segments `S`.
pub const SEGMENTS: usize = 5;
/// Buckets per segment `N'`.
pub const SEGMENT_DIM: usize = 10;
/// Total width of one hash encoding block.
pub const HASH_ENC_DIM: usize = SEGMENTS * SEGMENT_DIM;

/// Writes the multi-segment encoding of one identifier into `out`
/// (`out.len() == HASH_ENC_DIM`); sets one bucket per segment to 1.
///
/// `namespace` decorrelates identifier spaces (e.g. table ids of different
/// projects, tables vs. columns).
///
/// # Panics
///
/// Panics if `out` is not exactly [`HASH_ENC_DIM`] long.
pub fn encode_id(namespace: u64, id: u64, out: &mut [f32]) {
    assert_eq!(out.len(), HASH_ENC_DIM, "output slice has wrong width");
    let key = id.to_le_bytes();
    for seg in 0..SEGMENTS {
        let h = fnv1a_seeded(
            namespace
                .wrapping_add(seg as u64)
                .wrapping_mul(0x9e3779b97f4a7c15),
            &key,
        );
        let bucket = (h % SEGMENT_DIM as u64) as usize;
        out[seg * SEGMENT_DIM + bucket] = 1.0;
    }
}

/// Unions the encodings of several identifiers into `out` ("our method
/// naturally extends to support encoding multiple identifiers simultaneously
/// by taking the union of their respective encodings").
pub fn encode_ids<I: IntoIterator<Item = u64>>(namespace: u64, ids: I, out: &mut [f32]) {
    for id in ids {
        encode_id(namespace, id, out);
    }
}

/// Probability estimate that two random distinct identifiers receive the
/// same full encoding: `(1/N')^S` under ideal hashing.
pub fn collision_probability() -> f64 {
    (1.0 / SEGMENT_DIM as f64).powi(SEGMENTS as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn encode_owned(ns: u64, id: u64) -> Vec<f32> {
        let mut v = vec![0.0; HASH_ENC_DIM];
        encode_id(ns, id, &mut v);
        v
    }

    #[test]
    fn one_hot_per_segment() {
        let v = encode_owned(0, 12345);
        for seg in 0..SEGMENTS {
            let ones: usize = v[seg * SEGMENT_DIM..(seg + 1) * SEGMENT_DIM]
                .iter()
                .filter(|&&x| x == 1.0)
                .count();
            assert_eq!(ones, 1, "segment {seg} must have exactly one hot bucket");
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode_owned(3, 42), encode_owned(3, 42));
    }

    #[test]
    fn namespaces_decorrelate() {
        assert_ne!(encode_owned(1, 42), encode_owned(2, 42));
    }

    #[test]
    fn collisions_are_rare_across_many_ids() {
        // 2,000 identifiers in a space with (1/10)^5 = 1e-5 pairwise
        // collision probability: the birthday bound predicts ~20 duplicate
        // encodings among ~2M pairs; they must stay ~1 % of ids.
        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        let mut dups = 0;
        for id in 0..2000u64 {
            let enc: Vec<u32> = encode_owned(0, id).iter().map(|&x| x as u32).collect();
            if !seen.insert(enc) {
                dups += 1;
            }
        }
        assert!(dups < 45, "too many full-encoding collisions: {dups}");
    }

    #[test]
    fn union_of_ids_is_superset_of_each() {
        let mut both = vec![0.0; HASH_ENC_DIM];
        encode_ids(0, [7, 13], &mut both);
        for &id in &[7u64, 13] {
            let single = encode_owned(0, id);
            for i in 0..HASH_ENC_DIM {
                if single[i] == 1.0 {
                    assert_eq!(both[i], 1.0);
                }
            }
        }
    }

    #[test]
    fn collision_probability_is_tiny() {
        assert!(collision_probability() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn rejects_wrong_slice_width() {
        let mut v = vec![0.0; 7];
        encode_id(0, 1, &mut v);
    }
}
