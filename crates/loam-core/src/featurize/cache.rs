//! A feature cache keyed by plan identity.
//!
//! Featurization is deterministic: the same plan under the same environment
//! always produces the same `(Mat, TreeStructure)` pair. Training revisits
//! each plan every epoch and inference strategies re-score the same
//! candidate plans across queries, so the cache turns repeat featurization
//! into an `Arc` clone.
//!
//! The key combines the plan's structural [`PlanSignature`] (a hash over
//! the canonical plan serialization, including predicate constants — the
//! same identity the plan explorer dedupes by), the featurizer mode, and a
//! bit-exact fingerprint of the environment source. Entries are shared via
//! `Arc`, so hits cost one hash lookup plus a reference-count bump, and the
//! cache is `Sync` — workers of the parallel featurization paths share one
//! instance.
//!
//! The map is **sharded** by the key hash: under concurrent serving traffic
//! every worker of a batch used to serialize on one global mutex, so lookups
//! of *different* plans contended even though they never touch the same
//! entry. Each shard has its own lock and its own hit/miss counters
//! ([`FeatureCache::shard_stats`]); the process-wide
//! `loam.featurize.cache_hits` / `loam.featurize.cache_misses` counters are
//! unchanged.

use super::plan_vec::{EnvSource, PlanFeaturizer};
use mcsim_plan::{PlanSignature, PlanTree};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tinynn::tcn::TreeStructure;
use tinynn::Mat;

/// A cached featurization: node-feature matrix plus tree structure.
pub type CachedFeatures = Arc<(Mat, TreeStructure)>;

/// Default shard count: enough that a dozen concurrent workers rarely
/// collide, small enough that an idle cache stays cheap.
pub const DEFAULT_CACHE_SHARDS: usize = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    plan: PlanSignature,
    use_env: bool,
    env: u64,
}

impl CacheKey {
    /// The shard a key lands in: an FNV-style remix of the plan signature
    /// with the environment fingerprint, so plans that differ only in their
    /// environment block still spread across shards.
    fn shard(&self, mask: usize) -> usize {
        let mut h = self.plan.0 ^ self.env ^ (self.use_env as u64);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h as usize) & mask
    }
}

#[derive(Debug, Default)]
struct Shard {
    map: Mutex<HashMap<CacheKey, CachedFeatures>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Identity-keyed, thread-safe, hash-sharded featurization cache.
#[derive(Debug)]
pub struct FeatureCache {
    shards: Box<[Shard]>,
    mask: usize,
}

impl Default for FeatureCache {
    fn default() -> Self {
        FeatureCache::with_shards(DEFAULT_CACHE_SHARDS)
    }
}

impl FeatureCache {
    /// An empty cache with [`DEFAULT_CACHE_SHARDS`] shards.
    pub fn new() -> FeatureCache {
        FeatureCache::default()
    }

    /// An empty cache with at least `n` shards (rounded up to a power of
    /// two so the shard index is a mask, never a division).
    pub fn with_shards(n: usize) -> FeatureCache {
        let n = n.max(1).next_power_of_two();
        FeatureCache {
            shards: (0..n).map(|_| Shard::default()).collect(),
            mask: n - 1,
        }
    }

    /// Featurizes `plan` through the cache: returns the stored features on
    /// a hit, otherwise computes them with `featurizer` and stores them.
    /// Hit results are bit-identical to a fresh featurization.
    pub fn featurize(
        &self,
        featurizer: &PlanFeaturizer,
        plan: &PlanTree,
        env: EnvSource<'_>,
    ) -> CachedFeatures {
        let key = CacheKey {
            plan: PlanSignature::of(plan),
            use_env: featurizer.use_env,
            env: env_fingerprint(&env),
        };
        let shard = &self.shards[key.shard(self.mask)];
        {
            let map = shard.map.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(hit) = map.get(&key) {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                mcsim_obs::counter("loam.featurize.cache_hits", 1);
                return Arc::clone(hit);
            }
        }
        // Compute outside the lock so concurrent misses on different plans
        // featurize in parallel; a duplicate concurrent miss on the same
        // plan just overwrites with an identical value.
        shard.misses.fetch_add(1, Ordering::Relaxed);
        mcsim_obs::counter("loam.featurize.cache_misses", 1);
        let features = Arc::new(featurizer.featurize(plan, env));
        let mut map = shard.map.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(key).or_insert(features))
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cumulative `(cache_hits, cache_misses)` of shard `i`.
    pub fn shard_stats(&self, i: usize) -> (u64, u64) {
        let s = &self.shards[i];
        (
            s.hits.load(Ordering::Relaxed),
            s.misses.load(Ordering::Relaxed),
        )
    }

    /// Cumulative hits across all shards.
    pub fn hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Cumulative misses across all shards.
    pub fn misses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.misses.load(Ordering::Relaxed))
            .sum()
    }

    /// Fraction of lookups that hit, `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (e.g. when the environment regime changes
    /// wholesale and keys would only accumulate). Hit/miss counters keep
    /// accumulating across clears.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.map.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

/// Bit-exact FNV-1a fingerprint of an environment source. `f64::to_bits`
/// keeps the key exact: environments that differ in any bit get distinct
/// entries, so a hit can never return features for a different environment.
fn env_fingerprint(env: &EnvSource<'_>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    match env {
        EnvSource::None => mix(0),
        EnvSource::Uniform(m) => {
            mix(1);
            for f in [m.cpu_idle, m.io_wait, m.load5, m.mem_usage] {
                mix(f.to_bits());
            }
        }
        EnvSource::PerStage(envs) => {
            mix(2);
            mix(envs.len() as u64);
            for m in envs.iter() {
                for f in [m.cpu_idle, m.io_wait, m.load5, m.mem_usage] {
                    mix(f.to_bits());
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_catalog::EnvMetrics;
    use mcsim_plan::Operator;

    fn chain_plan(len: usize, table: u32) -> PlanTree {
        let mut t = PlanTree::new();
        let mut cur = t.leaf(Operator::table_scan(table, 1, 1, vec![0]));
        for _ in 0..len {
            cur = t.unary(Operator::Limit { n: 10 }, cur);
        }
        let s = t.unary(Operator::Sink, cur);
        t.set_root(s);
        t
    }

    #[test]
    fn hit_equals_fresh_featurization() {
        let cache = FeatureCache::new();
        let f = PlanFeaturizer::default();
        let plan = chain_plan(3, 1);
        let env = EnvMetrics::new(0.6, 0.05, 4.0, 0.5);
        let first = cache.featurize(&f, &plan, EnvSource::Uniform(env));
        let hit = cache.featurize(&f, &plan, EnvSource::Uniform(env));
        let fresh = f.featurize(&plan, EnvSource::Uniform(env));
        assert!(Arc::ptr_eq(&first, &hit), "second call must be a hit");
        assert_eq!(hit.0, fresh.0);
        assert_eq!(hit.1, fresh.1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_envs_and_plans_get_distinct_entries() {
        let cache = FeatureCache::new();
        let f = PlanFeaturizer::default();
        let plan = chain_plan(3, 1);
        let e1 = EnvMetrics::new(0.6, 0.05, 4.0, 0.5);
        let e2 = EnvMetrics::new(0.7, 0.05, 4.0, 0.5);
        let a = cache.featurize(&f, &plan, EnvSource::Uniform(e1));
        let b = cache.featurize(&f, &plan, EnvSource::Uniform(e2));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.0, b.0, "env block must differ");
        cache.featurize(&f, &chain_plan(4, 2), EnvSource::Uniform(e1));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn featurizer_mode_is_part_of_the_key() {
        let cache = FeatureCache::new();
        let plan = chain_plan(2, 1);
        let env = EnvMetrics::new(0.6, 0.05, 4.0, 0.5);
        let with_env = cache.featurize(
            &PlanFeaturizer { use_env: true },
            &plan,
            EnvSource::Uniform(env),
        );
        let no_env = cache.featurize(
            &PlanFeaturizer { use_env: false },
            &plan,
            EnvSource::Uniform(env),
        );
        assert_ne!(with_env.0, no_env.0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = FeatureCache::new();
        cache.featurize(
            &PlanFeaturizer::default(),
            &chain_plan(2, 1),
            EnvSource::None,
        );
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shard_counters_sum_to_the_totals() {
        let cache = FeatureCache::with_shards(4);
        assert_eq!(cache.shard_count(), 4);
        let f = PlanFeaturizer::default();
        // 8 distinct plans, each looked up twice: 8 misses + 8 hits.
        for table in 0..8 {
            let plan = chain_plan(2, table);
            cache.featurize(&f, &plan, EnvSource::None);
            cache.featurize(&f, &plan, EnvSource::None);
        }
        assert_eq!(cache.hits(), 8);
        assert_eq!(cache.misses(), 8);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        let (sh, sm) = (0..4).fold((0, 0), |(h, m), i| {
            let (a, b) = cache.shard_stats(i);
            (h + a, m + b)
        });
        assert_eq!((sh, sm), (8, 8));
        // Distinct plans must not all land in one shard.
        let occupied = (0..4).filter(|&i| cache.shard_stats(i).1 > 0).count();
        assert!(occupied > 1, "8 plans across 4 shards can't all collide");
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        assert_eq!(FeatureCache::with_shards(1).shard_count(), 1);
        assert_eq!(FeatureCache::with_shards(3).shard_count(), 4);
        assert_eq!(FeatureCache::with_shards(0).shard_count(), 1);
    }
}
