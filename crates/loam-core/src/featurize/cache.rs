//! A feature cache keyed by plan identity.
//!
//! Featurization is deterministic: the same plan under the same environment
//! always produces the same `(Mat, TreeStructure)` pair. Training revisits
//! each plan every epoch and inference strategies re-score the same
//! candidate plans across queries, so the cache turns repeat featurization
//! into an `Arc` clone.
//!
//! The key combines the plan's structural [`PlanSignature`] (a hash over
//! the canonical plan serialization, including predicate constants — the
//! same identity the plan explorer dedupes by), the featurizer mode, and a
//! bit-exact fingerprint of the environment source. Entries are shared via
//! `Arc`, so hits cost one hash lookup plus a reference-count bump, and the
//! cache is `Sync` — workers of the parallel featurization paths share one
//! instance.

use super::plan_vec::{EnvSource, PlanFeaturizer};
use mcsim_plan::{PlanSignature, PlanTree};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use tinynn::tcn::TreeStructure;
use tinynn::Mat;

/// A cached featurization: node-feature matrix plus tree structure.
pub type CachedFeatures = Arc<(Mat, TreeStructure)>;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    plan: PlanSignature,
    use_env: bool,
    env: u64,
}

/// Identity-keyed, thread-safe featurization cache.
#[derive(Debug, Default)]
pub struct FeatureCache {
    map: Mutex<HashMap<CacheKey, CachedFeatures>>,
}

impl FeatureCache {
    /// An empty cache.
    pub fn new() -> FeatureCache {
        FeatureCache::default()
    }

    /// Featurizes `plan` through the cache: returns the stored features on
    /// a hit, otherwise computes them with `featurizer` and stores them.
    /// Hit results are bit-identical to a fresh featurization.
    pub fn featurize(
        &self,
        featurizer: &PlanFeaturizer,
        plan: &PlanTree,
        env: EnvSource<'_>,
    ) -> CachedFeatures {
        let key = CacheKey {
            plan: PlanSignature::of(plan),
            use_env: featurizer.use_env,
            env: env_fingerprint(&env),
        };
        {
            let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(hit) = map.get(&key) {
                mcsim_obs::counter("loam.featurize.cache_hits", 1);
                return Arc::clone(hit);
            }
        }
        // Compute outside the lock so concurrent misses on different plans
        // featurize in parallel; a duplicate concurrent miss on the same
        // plan just overwrites with an identical value.
        mcsim_obs::counter("loam.featurize.cache_misses", 1);
        let features = Arc::new(featurizer.featurize(plan, env));
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(key).or_insert(features))
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (e.g. when the environment regime changes
    /// wholesale and keys would only accumulate).
    pub fn clear(&self) {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Bit-exact FNV-1a fingerprint of an environment source. `f64::to_bits`
/// keeps the key exact: environments that differ in any bit get distinct
/// entries, so a hit can never return features for a different environment.
fn env_fingerprint(env: &EnvSource<'_>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    match env {
        EnvSource::None => mix(0),
        EnvSource::Uniform(m) => {
            mix(1);
            for f in [m.cpu_idle, m.io_wait, m.load5, m.mem_usage] {
                mix(f.to_bits());
            }
        }
        EnvSource::PerStage(envs) => {
            mix(2);
            mix(envs.len() as u64);
            for m in envs.iter() {
                for f in [m.cpu_idle, m.io_wait, m.load5, m.mem_usage] {
                    mix(f.to_bits());
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_catalog::EnvMetrics;
    use mcsim_plan::Operator;

    fn chain_plan(len: usize, table: u32) -> PlanTree {
        let mut t = PlanTree::new();
        let mut cur = t.leaf(Operator::table_scan(table, 1, 1, vec![0]));
        for _ in 0..len {
            cur = t.unary(Operator::Limit { n: 10 }, cur);
        }
        let s = t.unary(Operator::Sink, cur);
        t.set_root(s);
        t
    }

    #[test]
    fn hit_equals_fresh_featurization() {
        let cache = FeatureCache::new();
        let f = PlanFeaturizer::default();
        let plan = chain_plan(3, 1);
        let env = EnvMetrics::new(0.6, 0.05, 4.0, 0.5);
        let first = cache.featurize(&f, &plan, EnvSource::Uniform(env));
        let hit = cache.featurize(&f, &plan, EnvSource::Uniform(env));
        let fresh = f.featurize(&plan, EnvSource::Uniform(env));
        assert!(Arc::ptr_eq(&first, &hit), "second call must be a hit");
        assert_eq!(hit.0, fresh.0);
        assert_eq!(hit.1, fresh.1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_envs_and_plans_get_distinct_entries() {
        let cache = FeatureCache::new();
        let f = PlanFeaturizer::default();
        let plan = chain_plan(3, 1);
        let e1 = EnvMetrics::new(0.6, 0.05, 4.0, 0.5);
        let e2 = EnvMetrics::new(0.7, 0.05, 4.0, 0.5);
        let a = cache.featurize(&f, &plan, EnvSource::Uniform(e1));
        let b = cache.featurize(&f, &plan, EnvSource::Uniform(e2));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.0, b.0, "env block must differ");
        cache.featurize(&f, &chain_plan(4, 2), EnvSource::Uniform(e1));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn featurizer_mode_is_part_of_the_key() {
        let cache = FeatureCache::new();
        let plan = chain_plan(2, 1);
        let env = EnvMetrics::new(0.6, 0.05, 4.0, 0.5);
        let with_env = cache.featurize(
            &PlanFeaturizer { use_env: true },
            &plan,
            EnvSource::Uniform(env),
        );
        let no_env = cache.featurize(
            &PlanFeaturizer { use_env: false },
            &plan,
            EnvSource::Uniform(env),
        );
        assert_ne!(with_env.0, no_env.0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = FeatureCache::new();
        cache.featurize(
            &PlanFeaturizer::default(),
            &chain_plan(2, 1),
            EnvSource::None,
        );
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
