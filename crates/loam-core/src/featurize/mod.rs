//! Statistics-free plan featurization: multi-segment hash encodings and the
//! per-node feature layout of Section 4 / Figure 4.

pub mod cache;
pub mod hash_enc;
pub mod plan_vec;

pub use cache::{CachedFeatures, FeatureCache};
pub use hash_enc::{encode_id, encode_ids, HASH_ENC_DIM, SEGMENTS, SEGMENT_DIM};
pub use plan_vec::{EnvSource, PlanFeaturizer, ENV_OFF, FEATURE_DIM};
