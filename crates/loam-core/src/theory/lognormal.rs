//! Log-normal modeling of execution costs (Appendix E.1).
//!
//! Repeated executions of a query plan exhibit a log-normal cost pattern;
//! this module provides MLE fitting, pdf/cdf, quantiles, Q-Q data, and a
//! Kolmogorov–Smirnov goodness-of-fit test — everything Figure 15 needs.

use serde::{Deserialize, Serialize};

/// A log-normal distribution `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Std-dev of `ln X`.
    pub sigma: f64,
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, |ε| < 1.5e-7).
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF (Acklam's rational approximation).
pub fn std_normal_quantile(p: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let plow = 0.02425;
    if p < plow {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - plow {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

impl LogNormal {
    /// Maximum-likelihood fit from positive samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-positive values.
    pub fn fit(samples: &[f64]) -> LogNormal {
        assert!(!samples.is_empty(), "cannot fit an empty sample");
        assert!(
            samples.iter().all(|&x| x > 0.0),
            "log-normal samples must be positive"
        );
        let logs: Vec<f64> = samples.iter().map(|x| x.ln()).collect();
        let mu = logs.iter().sum::<f64>() / logs.len() as f64;
        let var = logs.iter().map(|l| (l - mu).powi(2)).sum::<f64>() / logs.len() as f64;
        LogNormal {
            mu,
            sigma: var.sqrt().max(1e-9),
        }
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        std_normal_cdf((x.ln() - self.mu) / self.sigma)
    }

    /// Quantile (inverse CDF).
    pub fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * std_normal_quantile(p)).exp()
    }

    /// Mean of the distribution: `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// Draws one sample using a uniform RNG.
    pub fn sample<R: rand::Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(1e-12..1.0);
        self.quantile(u)
    }
}

/// Result of a Kolmogorov–Smirnov goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsTest {
    /// The KS statistic `D = sup |F_emp − F_fit|`.
    pub statistic: f64,
    /// Asymptotic p-value.
    pub p_value: f64,
}

/// KS test of `samples` against `dist`.
pub fn ks_test(samples: &[f64], dist: &LogNormal) -> KsTest {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let emp_hi = (i + 1) as f64 / n;
        let emp_lo = i as f64 / n;
        d = d.max((f - emp_lo).abs()).max((emp_hi - f).abs());
    }
    // Asymptotic Kolmogorov distribution.
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    let mut p = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        p += if k % 2 == 1 { 2.0 * term } else { -2.0 * term };
    }
    KsTest {
        statistic: d,
        p_value: p.clamp(0.0, 1.0),
    }
}

/// Q-Q plot data: pairs of (theoretical quantile, empirical quantile).
pub fn qq_points(samples: &[f64], dist: &LogNormal) -> Vec<(f64, f64)> {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let p = (i as f64 + 0.5) / n;
            (dist.quantile(p), x)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = std_normal_quantile(p);
            assert!((std_normal_cdf(x) - p).abs() < 1e-4, "p={p}");
        }
    }

    #[test]
    fn mle_recovers_parameters() {
        let truth = LogNormal {
            mu: 2.0,
            sigma: 0.3,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = LogNormal::fit(&samples);
        assert!((fit.mu - 2.0).abs() < 0.02, "mu {}", fit.mu);
        assert!((fit.sigma - 0.3).abs() < 0.02, "sigma {}", fit.sigma);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = LogNormal {
            mu: 1.0,
            sigma: 0.5,
        };
        let mut total = 0.0;
        let dx = 0.01;
        let mut x = dx / 2.0;
        while x < 60.0 {
            total += d.pdf(x) * dx;
            x += dx;
        }
        assert!((total - 1.0).abs() < 0.01, "{total}");
    }

    #[test]
    fn mean_formula_matches_samples() {
        let d = LogNormal {
            mu: 1.5,
            sigma: 0.4,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let emp: f64 = (0..50_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 50_000.0;
        assert!((emp - d.mean()).abs() / d.mean() < 0.02);
    }

    #[test]
    fn ks_accepts_true_distribution() {
        let d = LogNormal {
            mu: 0.0,
            sigma: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..500).map(|_| d.sample(&mut rng)).collect();
        let fit = LogNormal::fit(&samples);
        let ks = ks_test(&samples, &fit);
        assert!(ks.p_value > 0.1, "p = {}", ks.p_value);
    }

    #[test]
    fn ks_rejects_wrong_distribution() {
        // Uniform data is not log-normal with these parameters.
        let samples: Vec<f64> = (1..=500).map(|i| i as f64).collect();
        let wrong = LogNormal {
            mu: 0.0,
            sigma: 0.1,
        };
        let ks = ks_test(&samples, &wrong);
        assert!(ks.p_value < 0.01);
    }

    #[test]
    fn qq_points_lie_near_diagonal_for_good_fit() {
        let d = LogNormal {
            mu: 1.0,
            sigma: 0.25,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        let fit = LogNormal::fit(&samples);
        let qq = qq_points(&samples, &fit);
        // Middle quantiles should track the diagonal tightly.
        for &(theo, emp) in &qq[200..1800] {
            assert!((theo - emp).abs() / theo < 0.15, "{theo} vs {emp}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fit_rejects_non_positive() {
        let _ = LogNormal::fit(&[1.0, -2.0]);
    }
}
