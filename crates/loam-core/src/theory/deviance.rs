//! Deviance: the cost gap between a plan-selection model and the oracle
//! (Section 5, Theorem 1, Appendix E.1).
//!
//! For a query with candidate plans `P_1..P_n` and environment-dependent
//! costs `C_E(P_i)`, a model `M` that picks plan `P_M` incurs deviance
//! `D_E(M) = C_E(P_M) − C_E(P_{M_o})` where `M_o` is the per-environment
//! oracle. Theorem 1: any environment-blind model satisfies
//! `E[D(M)] ≥ E[D(M_b)] ≥ E[D(M_o)] = 0`, where `M_b` picks the plan with
//! minimum *expected* cost.
//!
//! Two estimation paths are provided, mirroring Appendix E.1: direct Monte
//! Carlo over synchronized cost samples (`costs[round][plan]` from the
//! flighting environment), and the log-normal route that fits per-plan
//! distributions and integrates the closed-form minimum-distribution PDF of
//! Lemma 1.

use crate::theory::lognormal::LogNormal;
use serde::{Deserialize, Serialize};

/// A deviance estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deviance {
    /// `E[D(M)]` in absolute cost units.
    pub expected: f64,
    /// `E[D(M)] / E[C(P_{M_o})]` — the relative deviance reported in
    /// Figure 10b.
    pub relative: f64,
    /// `E[C(P_{M_o})]`: the oracle's expected cost.
    pub oracle_cost: f64,
}

/// Expected cost of each plan across rounds.
pub fn mean_costs(costs: &[Vec<f64>]) -> Vec<f64> {
    assert!(!costs.is_empty(), "need at least one round");
    let n_plans = costs[0].len();
    let mut means = vec![0.0; n_plans];
    for row in costs {
        assert_eq!(row.len(), n_plans, "ragged cost matrix");
        for (m, &c) in means.iter_mut().zip(row) {
            *m += c;
        }
    }
    for m in &mut means {
        *m /= costs.len() as f64;
    }
    means
}

/// The index `M_b` would pick: minimum expected cost.
pub fn best_achievable_choice(costs: &[Vec<f64>]) -> usize {
    let means = mean_costs(costs);
    argmin(&means)
}

/// Monte-Carlo deviance of a model that always picks plan `chosen`
/// regardless of the environment (all environment-blind models reduce to
/// this once their choice is made).
pub fn deviance_of_choice(costs: &[Vec<f64>], chosen: usize) -> Deviance {
    assert!(!costs.is_empty());
    let mut dev_sum = 0.0;
    let mut oracle_sum = 0.0;
    for row in costs {
        let min = row.iter().cloned().fold(f64::MAX, f64::min);
        dev_sum += row[chosen] - min;
        oracle_sum += min;
    }
    let n = costs.len() as f64;
    let oracle_cost = oracle_sum / n;
    let expected = dev_sum / n;
    Deviance {
        expected,
        relative: if oracle_cost > 0.0 {
            expected / oracle_cost
        } else {
            0.0
        },
        oracle_cost,
    }
}

/// The improvement space `D(M_d)`: deviance of the native optimizer's
/// default-plan choice (Section 6 uses this as the Ranker's label).
pub fn improvement_space(costs: &[Vec<f64>], default_idx: usize) -> Deviance {
    deviance_of_choice(costs, default_idx)
}

/// Deviance of the best-achievable model `M_b`.
pub fn best_achievable_deviance(costs: &[Vec<f64>]) -> Deviance {
    deviance_of_choice(costs, best_achievable_choice(costs))
}

fn argmin(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Lemma 1: PDF of the minimum `C* = min_i C_i` of independent plan-cost
/// distributions, evaluated at `x`:
/// `f_{C*}(x) = Σ_i f_i(x) Π_{j≠i} (1 − F_j(x))`.
pub fn min_pdf(dists: &[LogNormal], x: f64) -> f64 {
    let mut total = 0.0;
    for (i, di) in dists.iter().enumerate() {
        let mut term = di.pdf(x);
        if term == 0.0 {
            continue;
        }
        for (j, dj) in dists.iter().enumerate() {
            if i != j {
                term *= 1.0 - dj.cdf(x);
            }
        }
        total += term;
    }
    total
}

/// Expected deviance via fitted log-normals (Appendix E.1's practical
/// estimation): `E[max(C_M − C*, 0)]` with `C_M` the chosen plan's fitted
/// distribution and `C*` the minimum over the *other* plans, assuming
/// independence, by numeric double integration on a quantile grid.
pub fn deviance_lognormal(chosen: &LogNormal, others: &[LogNormal], grid: usize) -> f64 {
    if others.is_empty() {
        return 0.0;
    }
    let grid = grid.max(16);
    // Integrate over quantiles of the chosen distribution (importance grid).
    let mut total = 0.0;
    for gi in 0..grid {
        let p = (gi as f64 + 0.5) / grid as f64;
        let c = chosen.quantile(p);
        // Inner expectation: E[max(c − C*, 0)] = ∫_0^c (c − m) f_{C*}(m) dm.
        // Integrate m over a quantile-ish grid of [0, c].
        let steps = 64;
        let mut inner = 0.0;
        let dm = c / steps as f64;
        for si in 0..steps {
            let m = (si as f64 + 0.5) * dm;
            inner += (c - m) * min_pdf(others, m) * dm;
        }
        total += inner / grid as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_matrix(dists: &[LogNormal], rounds: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rounds)
            .map(|_| dists.iter().map(|d| d.sample(&mut rng)).collect())
            .collect()
    }

    #[test]
    fn oracle_has_zero_deviance() {
        // A "model" that could pick per-round minima is the oracle; here we
        // verify the deviance of the best single choice is ≥ 0 and the
        // oracle cost is ≤ every per-plan mean.
        let dists = [
            LogNormal {
                mu: 1.0,
                sigma: 0.3,
            },
            LogNormal {
                mu: 1.2,
                sigma: 0.3,
            },
        ];
        let costs = sample_matrix(&dists, 2000, 1);
        let d = best_achievable_deviance(&costs);
        assert!(d.expected >= 0.0);
        let means = mean_costs(&costs);
        assert!(d.oracle_cost <= means[0] && d.oracle_cost <= means[1]);
    }

    #[test]
    fn theorem1_ordering_holds() {
        // E[D(M)] >= E[D(M_b)] >= 0 for every fixed choice M.
        let dists = [
            LogNormal {
                mu: 2.0,
                sigma: 0.4,
            },
            LogNormal {
                mu: 2.1,
                sigma: 0.2,
            },
            LogNormal {
                mu: 2.3,
                sigma: 0.6,
            },
        ];
        let costs = sample_matrix(&dists, 3000, 2);
        let db = best_achievable_deviance(&costs);
        assert!(db.expected >= 0.0);
        for chosen in 0..3 {
            let d = deviance_of_choice(&costs, chosen);
            assert!(
                d.expected >= db.expected - 1e-9,
                "choice {chosen}: {} < best {}",
                d.expected,
                db.expected
            );
        }
    }

    #[test]
    fn best_achievable_picks_lowest_mean() {
        let costs = vec![
            vec![10.0, 5.0, 8.0],
            vec![12.0, 6.0, 7.0],
            vec![11.0, 5.5, 9.0],
        ];
        assert_eq!(best_achievable_choice(&costs), 1);
    }

    #[test]
    fn identical_plans_have_zero_relative_deviance() {
        let costs = vec![vec![5.0, 5.0], vec![7.0, 7.0]];
        let d = deviance_of_choice(&costs, 0);
        assert_eq!(d.expected, 0.0);
        assert_eq!(d.relative, 0.0);
    }

    #[test]
    fn min_pdf_integrates_to_one() {
        let dists = [
            LogNormal {
                mu: 1.0,
                sigma: 0.3,
            },
            LogNormal {
                mu: 1.3,
                sigma: 0.5,
            },
            LogNormal {
                mu: 0.8,
                sigma: 0.2,
            },
        ];
        let mut total = 0.0;
        let dx = 0.005;
        let mut x = dx / 2.0;
        while x < 40.0 {
            total += min_pdf(&dists, x) * dx;
            x += dx;
        }
        assert!((total - 1.0).abs() < 0.02, "{total}");
    }

    #[test]
    fn lognormal_deviance_matches_monte_carlo() {
        let chosen = LogNormal {
            mu: 1.4,
            sigma: 0.3,
        };
        let others = [
            LogNormal {
                mu: 1.2,
                sigma: 0.3,
            },
            LogNormal {
                mu: 1.5,
                sigma: 0.4,
            },
        ];
        let analytic = deviance_lognormal(&chosen, &others, 128);

        // Monte Carlo of E[max(C_M − min(others), 0)].
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let c = chosen.sample(&mut rng);
            let m = others
                .iter()
                .map(|d| d.sample(&mut rng))
                .fold(f64::MAX, f64::min);
            sum += (c - m).max(0.0);
        }
        let mc = sum / n as f64;
        assert!(
            (analytic - mc).abs() / mc < 0.08,
            "analytic {analytic} vs MC {mc}"
        );
    }

    #[test]
    fn improvement_space_is_deviance_of_default() {
        let costs = vec![vec![10.0, 5.0], vec![12.0, 6.0]];
        let d = improvement_space(&costs, 0);
        assert!((d.expected - 5.5).abs() < 1e-12);
        assert!((d.oracle_cost - 5.5).abs() < 1e-12);
        assert!((d.relative - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        let _ = mean_costs(&[vec![1.0, 2.0], vec![1.0]]);
    }
}
