//! Theoretical machinery of Section 5 and Appendix C/E.1: deviance under
//! unobserved environments, Theorem 1's ordering, and log-normal cost
//! modeling with goodness-of-fit testing.

pub mod bootstrap;
pub mod deviance;
pub mod lognormal;

pub use bootstrap::{bootstrap, relative_deviance_interval, Interval};
pub use deviance::{
    best_achievable_choice, best_achievable_deviance, deviance_lognormal, deviance_of_choice,
    improvement_space, mean_costs, min_pdf, Deviance,
};
pub use lognormal::{
    erf, ks_test, qq_points, std_normal_cdf, std_normal_quantile, KsTest, LogNormal,
};
