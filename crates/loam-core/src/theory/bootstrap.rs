//! Bootstrap confidence intervals for deviance estimates.
//!
//! The flighting environment gives a finite sample of synchronized cost
//! matrices; deviance quantities computed from it (`D(M_d)`, `D(M_b)`,
//! relative deviance) are point estimates. Resampling rounds with
//! replacement yields distribution-free confidence intervals, which the
//! harness uses to avoid over-reading small replay budgets.

use crate::theory::deviance::deviance_of_choice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A two-sided percentile bootstrap interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Point estimate from the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

impl Interval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True if the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }
}

/// Percentile bootstrap over a generic per-sample statistic.
///
/// `stat` maps a resampled index multiset (indices into the original sample)
/// to the statistic value.
///
/// # Panics
///
/// Panics if `n_samples` is zero or `level` is outside `(0, 1)`.
pub fn bootstrap<F: Fn(&[usize]) -> f64>(
    n_samples: usize,
    resamples: usize,
    level: f64,
    seed: u64,
    stat: F,
) -> Interval {
    assert!(n_samples > 0, "need at least one sample");
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
    let full: Vec<usize> = (0..n_samples).collect();
    let estimate = stat(&full);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values: Vec<f64> = (0..resamples.max(2))
        .map(|_| {
            let idx: Vec<usize> = (0..n_samples)
                .map(|_| rng.gen_range(0..n_samples))
                .collect();
            stat(&idx)
        })
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - level) / 2.0;
    let pick = |p: f64| {
        let i = ((values.len() as f64 - 1.0) * p).round() as usize;
        values[i]
    };
    Interval {
        estimate,
        lo: pick(alpha),
        hi: pick(1.0 - alpha),
    }
}

/// Bootstrap interval for the *relative deviance* of a fixed plan choice,
/// resampling synchronized replay rounds.
pub fn relative_deviance_interval(
    costs: &[Vec<f64>],
    chosen: usize,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Interval {
    bootstrap(costs.len(), resamples, level, seed, |idx| {
        let resampled: Vec<Vec<f64>> = idx.iter().map(|&i| costs[i].clone()).collect();
        deviance_of_choice(&resampled, chosen).relative
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_the_estimate() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let iv = bootstrap(data.len(), 500, 0.9, 1, |idx| {
            idx.iter().map(|&i| data[i]).sum::<f64>() / idx.len() as f64
        });
        assert!(iv.lo <= iv.estimate && iv.estimate <= iv.hi);
        assert!(iv.contains(iv.estimate));
        assert!((iv.estimate - 24.5).abs() < 1e-9);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let data: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let stat = |idx: &[usize]| idx.iter().map(|&i| data[i]).sum::<f64>() / idx.len() as f64;
        let narrow = bootstrap(data.len(), 400, 0.5, 2, stat);
        let wide = bootstrap(data.len(), 400, 0.95, 2, stat);
        assert!(wide.width() >= narrow.width());
    }

    #[test]
    fn deviance_interval_shrinks_with_more_rounds() {
        // Synthetic cost matrix: two plans with noisy costs.
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(3);
        let mut make = |rounds: usize| -> Vec<Vec<f64>> {
            (0..rounds)
                .map(|_| {
                    vec![
                        100.0 * (1.0 + 0.2 * rng.gen_range(-1.0..1.0f64)),
                        80.0 * (1.0 + 0.2 * rng.gen_range(-1.0..1.0f64)),
                    ]
                })
                .collect()
        };
        let small = relative_deviance_interval(&make(8), 0, 300, 0.9, 4);
        let large = relative_deviance_interval(&make(200), 0, 300, 0.9, 4);
        assert!(large.width() < small.width() + 1e-9);
        assert!(small.estimate >= 0.0 && large.estimate >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_sample_panics() {
        let _ = bootstrap(0, 10, 0.9, 0, |_| 0.0);
    }
}
