//! The end-to-end deployment pipeline (Figure 2): history building, model
//! training, candidate evaluation in the flighting environment, and steered
//! serving — the machinery behind every end-to-end experiment (Figures
//! 6–11).

use crate::error::LoamError;
use crate::explorer::{ExplorerConfig, PlanExplorer};
use crate::inference::{guarded_choice_traced, select_plan, EnvStrategy, DEFAULT_MARGIN};
use crate::predictor::baselines::CostModel;
use crate::predictor::train::{train, TrainConfig, TrainSample};
use crate::predictor::AdaptiveCostPredictor;
use crate::theory::deviance::{best_achievable_deviance, deviance_of_choice, Deviance};
use mcsim_catalog::{EnvMetrics, Project, ProjectId, ProjectProfile, QueryRepository, QuerySpec};
use mcsim_exec::{build_history, Flighting, HistoryOptions};
use mcsim_obs::trace::TraceContext;
use mcsim_optimizer::NativeOptimizer;
use mcsim_plan::PlanTree;
use serde::{Deserialize, Serialize};

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Days of history used for training (paper: 25).
    pub train_days: i64,
    /// Days of history used for testing (paper: 5).
    pub test_days: i64,
    /// Cap on training queries (paper: 10,000).
    pub max_train: usize,
    /// Cap on test queries.
    pub max_test: usize,
    /// Synchronized replay rounds per test query ("each candidate plan is
    /// executed multiple times, and the average cost is used").
    pub eval_rounds: usize,
    /// How many training queries to explore for unlabeled candidate plans
    /// feeding the domain classifier.
    pub da_queries: usize,
    /// Predictor training hyperparameters.
    pub train_cfg: TrainConfig,
    /// Plan-explorer configuration.
    pub explorer: ExplorerConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            train_days: 25,
            test_days: 5,
            max_train: 10_000,
            max_test: 200,
            eval_rounds: 5,
            da_queries: 60,
            train_cfg: TrainConfig::default(),
            explorer: ExplorerConfig::default(),
            seed: 0x50a0,
        }
    }
}

impl PipelineConfig {
    /// A reduced-scale configuration for laptop-speed experiments: volumes
    /// shrink by `scale` but the structure (25+5 days, top-5 candidates)
    /// stays faithful.
    pub fn reduced(scale: f64) -> PipelineConfig {
        let base = PipelineConfig::default();
        PipelineConfig {
            max_train: ((base.max_train as f64 * scale) as usize).max(200),
            max_test: ((base.max_test as f64 * scale.max(0.25)) as usize).max(30),
            eval_rounds: 3,
            da_queries: 40,
            ..base
        }
    }

    /// Starts a validated builder pre-loaded with the defaults.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            config: PipelineConfig::default(),
        }
    }

    /// Checks every field the pipeline later relies on, so entry points can
    /// reject a bad configuration up front instead of panicking mid-run.
    pub fn validate(&self) -> Result<(), LoamError> {
        let err = |m: String| Err(LoamError::InvalidConfig(m));
        if self.train_days <= 0 {
            return err(format!("train_days must be > 0, got {}", self.train_days));
        }
        if self.test_days <= 0 {
            return err(format!("test_days must be > 0, got {}", self.test_days));
        }
        if self.max_train == 0 {
            return err("max_train must be >= 1".into());
        }
        if self.max_test == 0 {
            return err("max_test must be >= 1".into());
        }
        if self.eval_rounds == 0 {
            return err("eval_rounds must be >= 1".into());
        }
        if self.train_cfg.epochs == 0 {
            return err("train_cfg.epochs must be >= 1".into());
        }
        if self.train_cfg.batch_size == 0 {
            return err("train_cfg.batch_size must be >= 1".into());
        }
        if self.train_cfg.lr <= 0.0 || !self.train_cfg.lr.is_finite() {
            return err(format!(
                "train_cfg.lr must be a positive finite number, got {}",
                self.train_cfg.lr
            ));
        }
        if self.explorer.top_k == 0 {
            return err("explorer.top_k must be >= 1".into());
        }
        Ok(())
    }
}

/// Builder for [`PipelineConfig`] that validates at
/// [`build`](PipelineConfigBuilder::build) time and returns a typed
/// [`LoamError::InvalidConfig`] instead of panicking later.
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    config: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Days of history used for training.
    pub fn train_days(mut self, d: i64) -> Self {
        self.config.train_days = d;
        self
    }

    /// Days of history used for testing.
    pub fn test_days(mut self, d: i64) -> Self {
        self.config.test_days = d;
        self
    }

    /// Cap on training queries.
    pub fn max_train(mut self, n: usize) -> Self {
        self.config.max_train = n;
        self
    }

    /// Cap on test queries.
    pub fn max_test(mut self, n: usize) -> Self {
        self.config.max_test = n;
        self
    }

    /// Synchronized replay rounds per test query.
    pub fn eval_rounds(mut self, n: usize) -> Self {
        self.config.eval_rounds = n;
        self
    }

    /// Training queries explored for unlabeled domain-adaptation candidates.
    pub fn da_queries(mut self, n: usize) -> Self {
        self.config.da_queries = n;
        self
    }

    /// Predictor training hyperparameters.
    pub fn train_cfg(mut self, cfg: TrainConfig) -> Self {
        self.config.train_cfg = cfg;
        self
    }

    /// Plan-explorer configuration.
    pub fn explorer(mut self, cfg: ExplorerConfig) -> Self {
        self.config.explorer = cfg;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<PipelineConfig, LoamError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A project with its generated history and training data, ready for model
/// fitting and evaluation.
#[derive(Debug, Clone)]
pub struct PreparedProject {
    /// The synthesized project.
    pub project: Project,
    /// Its historical query repository (default plans, logged envs, costs).
    pub repo: QueryRepository,
    /// Labeled training samples extracted from the repository.
    pub train_samples: Vec<TrainSample>,
    /// Unlabeled candidate plans for the domain-adaptation objective.
    pub da_candidates: Vec<PlanTree>,
    /// Test queries (from the held-out days).
    pub test_queries: Vec<QuerySpec>,
    /// Mean historical stage environment (the representative instance e_r).
    pub mean_env: EnvMetrics,
}

/// Generates a project, simulates its history, and extracts train/test data.
///
/// # Errors
///
/// [`LoamError::InvalidConfig`] if `cfg` fails [`PipelineConfig::validate`];
/// [`LoamError::EmptyWorkload`] if the profile yields no historical
/// executions or no held-out test queries.
pub fn prepare_project(
    profile: &ProjectProfile,
    id: ProjectId,
    cfg: &PipelineConfig,
) -> Result<PreparedProject, LoamError> {
    cfg.validate()?;
    let _span = mcsim_obs::span("prepare");
    let project = profile.generate(id);
    let repo = {
        // History building replays the historical workload through the
        // executor: account it to the "execute" phase.
        let _s = mcsim_obs::span("execute");
        build_history(
            &project,
            &HistoryOptions {
                days: cfg.train_days,
                max_queries: cfg.max_train,
                seed: cfg.seed ^ id.0 as u64,
                ..HistoryOptions::default()
            },
        )
    };

    // Every logged execution is a training sample: recurring plans observed
    // under different environments are what teach the model to disentangle
    // environmental impact from plan-intrinsic cost (and average out the
    // execution noise).
    let train_samples: Vec<TrainSample> = repo
        .records()
        .iter()
        .map(|r| TrainSample {
            plan: r.plan.clone(),
            stage_envs: r.stage_envs.clone(),
            cost: r.cpu_cost,
        })
        .collect();

    // Unlabeled candidate plans from a sample of training queries.
    let optimizer = NativeOptimizer::new(&project.catalog);
    let explorer = PlanExplorer::new(cfg.explorer.clone());
    let mut da_candidates = Vec::new();
    let da_sample: Vec<QuerySpec> = project
        .workload_for_days(0, cfg.train_days.min(5))
        .into_iter()
        .take(cfg.da_queries)
        .collect();
    for q in &da_sample {
        let _s = mcsim_obs::span("optimize");
        let set = explorer.explore(&optimizer, q);
        for (i, c) in set.candidates.into_iter().enumerate() {
            if i != set.default_idx {
                da_candidates.push(c.plan);
            }
        }
    }

    // Test queries from the held-out days, deduplicated by spec identity.
    let mut test_queries: Vec<QuerySpec> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for day in cfg.train_days..cfg.train_days + cfg.test_days {
        for q in project.workload_for_day(day) {
            let key = (q.template, format!("{:?}", q.tables));
            if seen.insert(key) {
                test_queries.push(q);
            }
            if test_queries.len() >= cfg.max_test {
                break;
            }
        }
        if test_queries.len() >= cfg.max_test {
            break;
        }
    }

    if train_samples.is_empty() {
        return Err(LoamError::EmptyWorkload(format!(
            "project {} produced no historical executions over {} training days",
            id.0, cfg.train_days
        )));
    }
    if test_queries.is_empty() {
        return Err(LoamError::EmptyWorkload(format!(
            "project {} produced no test queries over {} held-out days",
            id.0, cfg.test_days
        )));
    }

    let mean_env = repo.mean_stage_env();
    Ok(PreparedProject {
        project,
        repo,
        train_samples,
        da_candidates,
        test_queries,
        mean_env,
    })
}

/// Trains LOAM's adaptive predictor on a prepared project.
///
/// # Errors
///
/// [`LoamError::InvalidConfig`] on bad hyperparameters,
/// [`LoamError::EmptyWorkload`] if `prepared` has no training samples, and
/// [`LoamError::TrainingDiverged`] if any epoch loss came out non-finite.
pub fn train_loam(
    prepared: &PreparedProject,
    cfg: &PipelineConfig,
) -> Result<AdaptiveCostPredictor, LoamError> {
    cfg.validate()?;
    if prepared.train_samples.is_empty() {
        return Err(LoamError::EmptyWorkload(
            "cannot train on zero samples".into(),
        ));
    }
    let mut predictor = AdaptiveCostPredictor::new(cfg.seed ^ 0x10a0, true);
    let report = train(
        &mut predictor,
        &prepared.train_samples,
        &prepared.da_candidates,
        prepared.mean_env,
        &cfg.train_cfg,
    );
    let diverged = report
        .cost_loss
        .iter()
        .chain(report.domain_loss.iter())
        .any(|l| !l.is_finite());
    if diverged {
        return Err(LoamError::TrainingDiverged(format!(
            "non-finite loss after {} epochs (cost_loss: {:?})",
            report.cost_loss.len(),
            report.cost_loss
        )));
    }
    Ok(predictor)
}

/// One test query's evaluated candidate set: plans, synchronized replay
/// costs, and the default-plan index.
#[derive(Debug, Clone)]
pub struct EvaluatedQuery {
    /// The query.
    pub query_id: u64,
    /// Candidate plans (index space of `costs` columns).
    pub plans: Vec<PlanTree>,
    /// Synchronized replay costs, `costs[round][plan]`.
    pub costs: Vec<Vec<f64>>,
    /// Index of the default plan.
    pub default_idx: usize,
}

impl EvaluatedQuery {
    /// Mean observed cost of candidate `idx`.
    pub fn mean_cost(&self, idx: usize) -> f64 {
        self.costs.iter().map(|r| r[idx]).sum::<f64>() / self.costs.len().max(1) as f64
    }

    /// Mean cost of the default plan.
    pub fn default_cost(&self) -> f64 {
        self.mean_cost(self.default_idx)
    }

    /// Mean per-round minimum (the oracle's expected cost).
    pub fn oracle_cost(&self) -> f64 {
        self.costs
            .iter()
            .map(|r| r.iter().cloned().fold(f64::MAX, f64::min))
            .sum::<f64>()
            / self.costs.len().max(1) as f64
    }
}

/// Explores and flighting-replays every test query's candidate set.
///
/// # Errors
///
/// [`LoamError::InvalidConfig`] on a bad configuration,
/// [`LoamError::EmptyWorkload`] if `prepared` holds no test queries, and
/// [`LoamError::PlanInvalid`] if a generated candidate fails structural
/// validation.
pub fn evaluate_candidates(
    prepared: &PreparedProject,
    cfg: &PipelineConfig,
) -> Result<Vec<EvaluatedQuery>, LoamError> {
    evaluate_candidates_traced(prepared, cfg, None)
}

/// Like [`evaluate_candidates`], but additionally records a per-query span
/// tree (`query` → `optimize`/`execute`, with query-id and candidate-count
/// attributes) into `trace` (when `Some`). Replay timelines are deliberately
/// *not* traced here — candidates × rounds × stages would swamp the trace;
/// use [`mcsim_exec::Executor::execute_traced`] on one representative query
/// for a machine-level timeline.
///
/// # Errors
///
/// Same as [`evaluate_candidates`].
pub fn evaluate_candidates_traced(
    prepared: &PreparedProject,
    cfg: &PipelineConfig,
    trace: Option<&TraceContext>,
) -> Result<Vec<EvaluatedQuery>, LoamError> {
    cfg.validate()?;
    if prepared.test_queries.is_empty() {
        return Err(LoamError::EmptyWorkload(
            "no test queries to evaluate".into(),
        ));
    }
    let optimizer = NativeOptimizer::new(&prepared.project.catalog);
    let explorer = PlanExplorer::new(cfg.explorer.clone());
    let mut flighting = Flighting::new(cfg.seed ^ 0xf1f1, prepared.project.profile.env_noise_sigma);
    prepared
        .test_queries
        .iter()
        .map(|q| {
            let q_span = trace.map(|t| {
                let s = t.span("query");
                s.attr("query_id", q.id);
                s
            });
            let set = {
                let _s = mcsim_obs::span("optimize");
                let _ts = trace.map(|t| t.span("optimize"));
                explorer.explore(&optimizer, q)
            };
            let plans: Vec<PlanTree> = set.candidates.iter().map(|c| c.plan.clone()).collect();
            if let Some(s) = &q_span {
                s.attr("candidates", plans.len());
            }
            for p in &plans {
                p.validate().map_err(|e| {
                    LoamError::PlanInvalid(format!("candidate for query {}: {e}", q.id))
                })?;
            }
            let refs: Vec<&PlanTree> = plans.iter().collect();
            let costs = {
                let _s = mcsim_obs::span("execute");
                let _ts = trace.map(|t| {
                    let s = t.span("execute");
                    s.attr("rounds", cfg.eval_rounds);
                    s
                });
                flighting.replay_synchronized(&refs, &prepared.project.catalog, cfg.eval_rounds)
            };
            Ok(EvaluatedQuery {
                query_id: q.id,
                plans,
                costs,
                default_idx: set.default_idx,
            })
        })
        .collect()
}

/// Summary of one model's plan selections over an evaluated workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEvaluation {
    /// Display name.
    pub name: String,
    /// Average observed cost of the model's chosen plans.
    pub avg_cost: f64,
    /// Per-query (default cost, chosen cost) pairs.
    pub per_query: Vec<(f64, f64)>,
    /// Mean deviance statistics of the model's choices.
    pub deviance: Deviance,
    /// Average model inference time per query, seconds.
    pub inference_seconds: f64,
}

/// Evaluates a cost model on pre-replayed candidate sets: the model picks
/// per query, and its pick is scored against the same synchronized cost
/// matrices every other model sees.
///
/// Queries are scored independently, so selection fans out across the
/// global pool; the order-preserved results are folded serially, giving the
/// same evaluation as a serial loop.
pub fn evaluate_model<M: CostModel + Sync + ?Sized>(
    model: &M,
    strategy: &EnvStrategy,
    evaluated: &[EvaluatedQuery],
) -> Result<ModelEvaluation, LoamError> {
    evaluate_model_traced(model, strategy, evaluated, None)
}

/// Like [`evaluate_model`], but additionally records an `infer` span and a
/// full [plan-selection decision](mcsim_obs::trace::Decision::PlanSelection)
/// per query into `trace` (when `Some`). Selection still fans out across
/// the thread pool — worker spans land on their own trace tracks.
///
/// # Errors
///
/// Same as [`evaluate_model`].
pub fn evaluate_model_traced<M: CostModel + Sync + ?Sized>(
    model: &M,
    strategy: &EnvStrategy,
    evaluated: &[EvaluatedQuery],
    trace: Option<&TraceContext>,
) -> Result<ModelEvaluation, LoamError> {
    if evaluated.is_empty() {
        return Err(LoamError::EmptyWorkload(
            "need at least one evaluated query".into(),
        ));
    }
    let started = std::time::Instant::now();
    let choices: Vec<usize> = mcsim_par::ThreadPool::global().parallel_map(evaluated, |eq| {
        let refs: Vec<&PlanTree> = eq.plans.iter().collect();
        let _s = mcsim_obs::span("infer");
        let _ts = trace.map(|t| {
            let s = t.span("infer");
            s.attr("query_id", eq.query_id);
            s
        });
        let (best, costs) = select_plan(model, &refs, strategy);
        guarded_choice_traced(
            &refs,
            &costs,
            best,
            eq.default_idx,
            DEFAULT_MARGIN,
            trace,
            eq.query_id,
        )
    });
    let mut per_query = Vec::with_capacity(evaluated.len());
    let mut dev_sum = 0.0;
    let mut oracle_sum = 0.0;
    let mut total_cost = 0.0;
    for (eq, &choice) in evaluated.iter().zip(&choices) {
        let chosen_cost = eq.mean_cost(choice);
        total_cost += chosen_cost;
        per_query.push((eq.default_cost(), chosen_cost));
        let d = deviance_of_choice(&eq.costs, choice);
        dev_sum += d.expected;
        oracle_sum += d.oracle_cost;
    }
    let inference_seconds = started.elapsed().as_secs_f64() / evaluated.len() as f64;
    let n = evaluated.len() as f64;
    let expected = dev_sum / n;
    let oracle_cost = oracle_sum / n;
    Ok(ModelEvaluation {
        name: model.name().to_string(),
        avg_cost: total_cost / n,
        per_query,
        deviance: Deviance {
            expected,
            relative: if oracle_cost > 0.0 {
                expected / oracle_cost
            } else {
                0.0
            },
            oracle_cost,
        },
        inference_seconds,
    })
}

/// The native optimizer's performance (always picking the default plan).
///
/// # Errors
///
/// [`LoamError::EmptyWorkload`] if `evaluated` is empty.
pub fn evaluate_native(evaluated: &[EvaluatedQuery]) -> Result<ModelEvaluation, LoamError> {
    if evaluated.is_empty() {
        return Err(LoamError::EmptyWorkload(
            "need at least one evaluated query".into(),
        ));
    }
    let mut per_query = Vec::with_capacity(evaluated.len());
    let mut dev_sum = 0.0;
    let mut oracle_sum = 0.0;
    let mut total = 0.0;
    for eq in evaluated {
        let c = eq.default_cost();
        total += c;
        per_query.push((c, c));
        let d = deviance_of_choice(&eq.costs, eq.default_idx);
        dev_sum += d.expected;
        oracle_sum += d.oracle_cost;
    }
    let n = evaluated.len() as f64;
    let expected = dev_sum / n;
    let oracle_cost = oracle_sum / n;
    Ok(ModelEvaluation {
        name: "MaxCompute".to_string(),
        avg_cost: total / n,
        per_query,
        deviance: Deviance {
            expected,
            relative: if oracle_cost > 0.0 {
                expected / oracle_cost
            } else {
                0.0
            },
            oracle_cost,
        },
        inference_seconds: 0.0,
    })
}

/// The best-achievable model M_b (minimum expected cost per query) — the
/// dashed line of Figures 6 and 8.
///
/// # Errors
///
/// [`LoamError::EmptyWorkload`] if `evaluated` is empty.
pub fn evaluate_best_achievable(
    evaluated: &[EvaluatedQuery],
) -> Result<ModelEvaluation, LoamError> {
    if evaluated.is_empty() {
        return Err(LoamError::EmptyWorkload(
            "need at least one evaluated query".into(),
        ));
    }
    let mut per_query = Vec::with_capacity(evaluated.len());
    let mut dev_sum = 0.0;
    let mut oracle_sum = 0.0;
    let mut total = 0.0;
    for eq in evaluated {
        let d = best_achievable_deviance(&eq.costs);
        let choice_cost = d.expected + d.oracle_cost;
        total += choice_cost;
        per_query.push((eq.default_cost(), choice_cost));
        dev_sum += d.expected;
        oracle_sum += d.oracle_cost;
    }
    let n = evaluated.len() as f64;
    let expected = dev_sum / n;
    let oracle_cost = oracle_sum / n;
    Ok(ModelEvaluation {
        name: "Best-achievable".to_string(),
        avg_cost: total / n,
        per_query,
        deviance: Deviance {
            expected,
            relative: if oracle_cost > 0.0 {
                expected / oracle_cost
            } else {
                0.0
            },
            oracle_cost,
        },
        inference_seconds: 0.0,
    })
}

/// The exact improvement space `D(M_d)` of a project, relative form —
/// computed from evaluated candidate sets (Appendix E.1's role in
/// Section 7.1).
///
/// # Errors
///
/// [`LoamError::EmptyWorkload`] if `evaluated` is empty.
pub fn project_improvement_space(evaluated: &[EvaluatedQuery]) -> Result<f64, LoamError> {
    Ok(evaluate_native(evaluated)?.deviance.relative)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> ProjectProfile {
        let mut prof = ProjectProfile::evaluation_project(2).unwrap();
        prof.n_tables = 18;
        prof.n_temp_tables = 2;
        prof.n_columns = 130;
        prof.n_templates = 10;
        prof.n_query_day0 = 15.0;
        prof
    }

    fn tiny_cfg() -> PipelineConfig {
        PipelineConfig {
            train_days: 3,
            test_days: 2,
            max_train: 40,
            max_test: 10,
            eval_rounds: 3,
            da_queries: 8,
            train_cfg: TrainConfig {
                epochs: 2,
                ..TrainConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn prepare_produces_train_and_test_data() {
        let prepared = prepare_project(&tiny_profile(), ProjectId(9), &tiny_cfg()).unwrap();
        assert!(!prepared.train_samples.is_empty());
        assert!(!prepared.test_queries.is_empty());
        assert!(!prepared.da_candidates.is_empty());
        assert!(prepared.mean_env.cpu_idle > 0.0);
    }

    #[test]
    fn end_to_end_small_pipeline_runs() {
        let cfg = tiny_cfg();
        let prepared = prepare_project(&tiny_profile(), ProjectId(9), &cfg).unwrap();
        let evaluated = evaluate_candidates(&prepared, &cfg).unwrap();
        assert!(!evaluated.is_empty());
        for eq in &evaluated {
            assert_eq!(eq.costs.len(), cfg.eval_rounds);
            assert!(eq.default_idx < eq.plans.len());
            assert!(eq.oracle_cost() <= eq.default_cost() + 1e-9);
        }

        let native = evaluate_native(&evaluated).unwrap();
        let best = evaluate_best_achievable(&evaluated).unwrap();
        // Theorem 1 at workload level: best-achievable deviance ≤ native's.
        assert!(best.deviance.expected <= native.deviance.expected + 1e-9);
        assert!(best.avg_cost <= native.avg_cost + 1e-9);

        let predictor = train_loam(&prepared, &cfg).unwrap();
        let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
        let loam = evaluate_model(&predictor, &strategy, &evaluated).unwrap();
        assert!(loam.avg_cost.is_finite() && loam.avg_cost > 0.0);
        assert!(loam.deviance.expected >= best.deviance.expected - 1e-9);
        assert_eq!(loam.per_query.len(), evaluated.len());
    }

    #[test]
    fn improvement_space_is_nonnegative() {
        let cfg = tiny_cfg();
        let prepared = prepare_project(&tiny_profile(), ProjectId(10), &cfg).unwrap();
        let evaluated = evaluate_candidates(&prepared, &cfg).unwrap();
        let d = project_improvement_space(&evaluated).unwrap();
        assert!(d >= 0.0);
    }

    #[test]
    fn invalid_configs_are_rejected_up_front() {
        let bad = PipelineConfig {
            train_days: 0,
            ..tiny_cfg()
        };
        let err = prepare_project(&tiny_profile(), ProjectId(11), &bad).unwrap_err();
        assert!(matches!(err, super::LoamError::InvalidConfig(_)), "{err}");

        assert!(PipelineConfig::builder().eval_rounds(0).build().is_err());
        assert!(PipelineConfig::builder()
            .train_cfg(TrainConfig {
                lr: 0.0,
                ..TrainConfig::default()
            })
            .build()
            .is_err());
        let ok = PipelineConfig::builder()
            .train_days(3)
            .test_days(2)
            .max_train(40)
            .max_test(10)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(ok.train_days, 3);
        assert_eq!(ok.seed, 7);
    }

    #[test]
    fn empty_evaluations_are_typed_errors_not_panics() {
        assert!(matches!(
            evaluate_native(&[]),
            Err(super::LoamError::EmptyWorkload(_))
        ));
        assert!(matches!(
            evaluate_best_achievable(&[]),
            Err(super::LoamError::EmptyWorkload(_))
        ));
    }
}
