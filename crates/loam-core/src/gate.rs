//! The pre-deployment validation gate (Section 3, Figure 2).
//!
//! "Before deployment, the predictor is evaluated on a sampled set of test
//! queries (not seen in training) from the historical query repository. To
//! obtain their actual cost as ground truth, they are executed in
//! MaxCompute's flighting environment … The results are then used to decide
//! whether the predictor is suitable for production use."
//!
//! The gate enforces two production criteria: the steered plans must not be
//! worse than the native optimizer's on average (no net regression), and no
//! single steered pick may blow up past a tail-risk ratio (multi-tenant
//! systems can tolerate a mild average regression long before they tolerate
//! a 20× disaster query).

use crate::inference::{guarded_choice_traced, select_plan, EnvStrategy, DEFAULT_MARGIN};
use crate::pipeline::EvaluatedQuery;
use crate::predictor::baselines::CostModel;
use mcsim_obs::trace::{Decision, GateVerdict, TraceContext};
use mcsim_plan::PlanTree;
use serde::{Deserialize, Serialize};

/// Thresholds for the deployment decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateConfig {
    /// Maximum tolerated ratio of (steered avg cost)/(native avg cost);
    /// 1.0 = must not regress on average.
    pub max_avg_ratio: f64,
    /// Maximum tolerated per-query ratio of (chosen cost)/(default cost).
    pub max_tail_ratio: f64,
    /// Fraction of queries allowed to exceed a mild regression (2 %).
    pub max_regression_fraction: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            max_avg_ratio: 1.0,
            max_tail_ratio: 3.0,
            max_regression_fraction: 0.5,
        }
    }
}

/// The gate's verdict with its supporting evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateReport {
    /// Average steered cost / average native cost.
    pub avg_ratio: f64,
    /// Worst per-query chosen/default cost ratio observed.
    pub worst_tail_ratio: f64,
    /// Fraction of queries regressing by more than 2 %.
    pub regression_fraction: f64,
    /// Whether each criterion passed.
    pub passes_avg: bool,
    /// Tail criterion.
    pub passes_tail: bool,
    /// Regression-fraction criterion.
    pub passes_regressions: bool,
}

impl GateReport {
    /// The deployment decision.
    pub fn deploy(&self) -> bool {
        self.passes_avg && self.passes_tail && self.passes_regressions
    }
}

/// Evaluates `model` on flighting-replayed candidate sets and renders the
/// deployment verdict.
///
/// # Panics
///
/// Panics if `evaluated` is empty (a gate needs evidence).
pub fn validate<M: CostModel + ?Sized>(
    model: &M,
    strategy: &EnvStrategy,
    evaluated: &[EvaluatedQuery],
    cfg: &GateConfig,
) -> GateReport {
    validate_traced(model, strategy, evaluated, cfg, None)
}

/// Like [`validate`], but additionally records a [`Decision::GateVerdict`]
/// (the three criteria with their measured evidence and the deployment
/// decision) into `trace` (when `Some`).
///
/// # Panics
///
/// Panics if `evaluated` is empty (a gate needs evidence).
pub fn validate_traced<M: CostModel + ?Sized>(
    model: &M,
    strategy: &EnvStrategy,
    evaluated: &[EvaluatedQuery],
    cfg: &GateConfig,
    trace: Option<&TraceContext>,
) -> GateReport {
    assert!(!evaluated.is_empty(), "gate needs at least one test query");
    let mut steered_sum = 0.0;
    let mut native_sum = 0.0;
    let mut worst_tail: f64 = 0.0;
    let mut regressions = 0usize;
    for eq in evaluated {
        let refs: Vec<&PlanTree> = eq.plans.iter().collect();
        let (best, costs) = select_plan(model, &refs, strategy);
        let choice =
            guarded_choice_traced(&refs, &costs, best, eq.default_idx, DEFAULT_MARGIN, None, 0);
        let chosen = eq.mean_cost(choice);
        let default = eq.default_cost();
        steered_sum += chosen;
        native_sum += default;
        let ratio = chosen / default.max(1e-12);
        worst_tail = worst_tail.max(ratio);
        if ratio > 1.02 {
            regressions += 1;
        }
    }
    let avg_ratio = steered_sum / native_sum.max(1e-12);
    let regression_fraction = regressions as f64 / evaluated.len() as f64;
    let report = GateReport {
        avg_ratio,
        worst_tail_ratio: worst_tail,
        regression_fraction,
        passes_avg: avg_ratio <= cfg.max_avg_ratio,
        passes_tail: worst_tail <= cfg.max_tail_ratio,
        passes_regressions: regression_fraction <= cfg.max_regression_fraction,
    };
    if let Some(t) = trace {
        t.decision(Decision::GateVerdict(GateVerdict {
            avg_ratio: report.avg_ratio,
            worst_tail_ratio: report.worst_tail_ratio,
            regression_fraction: report.regression_fraction,
            passes_avg: report.passes_avg,
            passes_tail: report.passes_tail,
            passes_regressions: report.passes_regressions,
            deploy: report.deploy(),
        }));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::EnvSource;
    use mcsim_catalog::EnvMetrics;
    use mcsim_plan::Operator;

    /// A model that always predicts the plan's node count (so it picks the
    /// smallest plan).
    struct SmallestPlan;
    impl CostModel for SmallestPlan {
        fn name(&self) -> &'static str {
            "smallest"
        }
        fn predict(&self, plan: &PlanTree, _env: EnvSource<'_>) -> f64 {
            plan.len() as f64
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }

    fn chain(n: usize) -> PlanTree {
        let mut t = PlanTree::new();
        let mut cur = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        for _ in 0..n {
            cur = t.unary(Operator::Limit { n: 1 }, cur);
        }
        t.set_root(cur);
        t
    }

    fn eq(default_cost: f64, other_cost: f64) -> EvaluatedQuery {
        EvaluatedQuery {
            query_id: 0,
            plans: vec![chain(3), chain(1)],
            costs: vec![vec![default_cost, other_cost]; 3],
            default_idx: 0,
        }
    }

    #[test]
    fn improving_model_passes() {
        // The smaller plan (index 1) is cheaper: picking it improves.
        let evaluated = vec![eq(100.0, 60.0), eq(200.0, 150.0)];
        let strategy = EnvStrategy::MeanHistorical(EnvMetrics::default());
        let report = validate(&SmallestPlan, &strategy, &evaluated, &GateConfig::default());
        assert!(report.deploy(), "{report:?}");
        assert!(report.avg_ratio < 1.0);
    }

    #[test]
    fn tail_blowup_fails_even_if_average_is_fine() {
        // One pick is 5× worse than default; averages still fine.
        let evaluated = vec![eq(100.0, 20.0), eq(10.0, 50.0)];
        let strategy = EnvStrategy::MeanHistorical(EnvMetrics::default());
        let report = validate(&SmallestPlan, &strategy, &evaluated, &GateConfig::default());
        assert!(!report.passes_tail);
        assert!(!report.deploy());
    }

    #[test]
    fn regressing_model_fails_average() {
        let evaluated = vec![eq(100.0, 120.0), eq(100.0, 130.0)];
        let strategy = EnvStrategy::MeanHistorical(EnvMetrics::default());
        let report = validate(&SmallestPlan, &strategy, &evaluated, &GateConfig::default());
        assert!(!report.passes_avg);
        assert!(!report.deploy());
    }

    #[test]
    fn traced_gate_records_its_verdict_and_evidence() {
        let evaluated = vec![eq(100.0, 60.0), eq(200.0, 150.0)];
        let strategy = EnvStrategy::MeanHistorical(EnvMetrics::default());
        let ctx = mcsim_obs::trace::TraceContext::new("gate");
        let report = validate_traced(
            &SmallestPlan,
            &strategy,
            &evaluated,
            &GateConfig::default(),
            Some(&ctx),
        );
        let ds = ctx.decisions();
        assert_eq!(ds.len(), 1);
        let Decision::GateVerdict(v) = &ds[0] else {
            panic!("expected a gate verdict, got {:?}", ds[0]);
        };
        assert_eq!(v.avg_ratio, report.avg_ratio);
        assert_eq!(v.worst_tail_ratio, report.worst_tail_ratio);
        assert_eq!(v.deploy, report.deploy());
    }

    #[test]
    #[should_panic(expected = "at least one test query")]
    fn empty_evidence_panics() {
        let strategy = EnvStrategy::NoEnv;
        let _ = validate(&SmallestPlan, &strategy, &[], &GateConfig::default());
    }
}
