//! The public error type of the LOAM pipeline.
//!
//! Every facade-level entry point (`prepare_project`, `train_loam`,
//! `evaluate_*`) returns `Result<_, LoamError>` instead of panicking, so
//! invalid configurations and degenerate workloads surface as values the
//! caller can match on.

use mcsim_exec::{ExecFailure, InvalidClusterConfig};

/// Everything that can go wrong in the public pipeline API.
#[derive(Debug, Clone, PartialEq)]
pub enum LoamError {
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// A step needed queries/samples and the workload provided none.
    EmptyWorkload(String),
    /// Training produced non-finite losses or predictions.
    TrainingDiverged(String),
    /// A generated or supplied plan failed structural validation.
    PlanInvalid(String),
    /// Execution failed even after retries and the default-plan fallback
    /// (only reachable with fault injection armed).
    ExecutionFailed(String),
}

impl std::fmt::Display for LoamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoamError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            LoamError::EmptyWorkload(m) => write!(f, "empty workload: {m}"),
            LoamError::TrainingDiverged(m) => write!(f, "training diverged: {m}"),
            LoamError::PlanInvalid(m) => write!(f, "invalid plan: {m}"),
            LoamError::ExecutionFailed(m) => write!(f, "execution failed: {m}"),
        }
    }
}

impl std::error::Error for LoamError {}

impl From<InvalidClusterConfig> for LoamError {
    fn from(e: InvalidClusterConfig) -> Self {
        LoamError::InvalidConfig(e.0)
    }
}

impl From<ExecFailure> for LoamError {
    fn from(e: ExecFailure) -> Self {
        LoamError::ExecutionFailed(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LoamError::InvalidConfig("train_days must be > 0".into());
        assert!(e.to_string().contains("train_days"));
        let e = LoamError::EmptyWorkload("no test queries".into());
        assert!(e.to_string().contains("empty workload"));
    }

    #[test]
    fn cluster_config_errors_convert() {
        let e: LoamError = InvalidClusterConfig("n_machines must be >= 1".into()).into();
        assert!(matches!(e, LoamError::InvalidConfig(_)));
    }

    #[test]
    fn exec_failures_convert() {
        let e: LoamError = ExecFailure::StageFailed {
            stage: 1,
            attempts: 4,
        }
        .into();
        assert!(matches!(e, LoamError::ExecutionFailed(_)));
        assert!(e.to_string().contains("stage 1"));
    }
}
