//! The unified per-query serving engine: [`RobustServer`].
//!
//! Earlier revisions grew a pile of free functions — `run_robust_serving`,
//! `select_plan_robust`, `execute_with_fallback`, `select_plan_guarded*` —
//! that all threaded the same margin/fallback/gate configuration through
//! their parameter lists. [`RobustServer`] binds an [`EnvStrategy`] and a
//! validated [`RobustConfig`] once and exposes the same ladder as methods;
//! the old free functions remain as `#[deprecated]` shims delegating here.
//!
//! `RobustServer` is the *per-query* engine: select under the margin guard,
//! degrade on non-finite predictions, execute with default-plan replay.
//! The *throughput* layer — open-loop arrivals, batching, admission
//! control, decision caching — lives in the `mcsim-serve` crate, whose
//! `ServeSession` drives a `RobustServer` under the hood.

use crate::error::LoamError;
use crate::featurize::FeatureCache;
use crate::gate::validate_traced;
use crate::inference::{guarded_choice_traced, select_plan, EnvStrategy};
use crate::pipeline::EvaluatedQuery;
use crate::predictor::baselines::CostModel;
use crate::predictor::InferWs;
use crate::robust::{Resolution, RobustConfig, RobustQueryResult, RobustRunReport};
use mcsim_catalog::Catalog;
use mcsim_exec::{ExecutionOutcome, Executor};
use mcsim_obs::trace::{Decision, Fallback, TraceContext};
use mcsim_plan::PlanTree;

/// Per-query serving engine: plan selection under the margin guard plus the
/// graceful-degradation ladder of [`Resolution`], bound to one environment
/// strategy and one validated configuration.
#[derive(Debug, Clone)]
pub struct RobustServer {
    strategy: EnvStrategy,
    cfg: RobustConfig,
}

impl RobustServer {
    /// Binds `strategy` and `cfg`. Fails with
    /// [`LoamError::InvalidConfig`] unless `0 ≤ margin < 1` — a margin of
    /// 1 or more can never accept a steered plan (costs are positive), and
    /// a negative or non-finite margin makes the guard vacuous.
    pub fn new(strategy: EnvStrategy, cfg: RobustConfig) -> Result<RobustServer, LoamError> {
        if !cfg.margin.is_finite() || !(0.0..1.0).contains(&cfg.margin) {
            return Err(LoamError::InvalidConfig(format!(
                "guard margin must be in [0, 1), got {}",
                cfg.margin
            )));
        }
        Ok(RobustServer { strategy, cfg })
    }

    /// Shim constructor for the deprecated free functions, which never
    /// validated their margin.
    pub(crate) fn unchecked(strategy: EnvStrategy, cfg: RobustConfig) -> RobustServer {
        RobustServer { strategy, cfg }
    }

    /// The bound environment strategy.
    pub fn strategy(&self) -> &EnvStrategy {
        &self.strategy
    }

    /// The bound configuration.
    pub fn config(&self) -> &RobustConfig {
        &self.cfg
    }

    /// Scores every candidate with one batched forward (through `cache`
    /// when provided). Bit-identical to scoring each plan alone.
    pub fn score_batch<M: CostModel + Sync + ?Sized>(
        &self,
        model: &M,
        plans: &[&PlanTree],
        cache: Option<&FeatureCache>,
    ) -> Vec<f64> {
        model.predict_batch(plans, self.strategy.env_source(), cache)
    }

    /// [`score_batch`](Self::score_batch) into caller-owned buffers: `out`
    /// receives one cost per candidate (cleared first). With a warm
    /// workspace and feature cache, a steady-state scoring batch performs
    /// zero heap allocations. Bit-identical to `score_batch`.
    pub fn score_batch_into<M: CostModel + Sync + ?Sized>(
        &self,
        model: &M,
        plans: &[&PlanTree],
        cache: Option<&FeatureCache>,
        ws: &mut InferWs,
        out: &mut Vec<f64>,
    ) {
        model.predict_batch_into(plans, self.strategy.env_source(), cache, ws, out);
    }

    /// Guarded selection: scores the candidates and keeps the default plan
    /// unless the winner beats it by the configured margin. Returns
    /// `(chosen index, predicted costs)` and records the provenance into
    /// `trace`.
    pub fn select_guarded<M: CostModel + Sync + ?Sized>(
        &self,
        model: &M,
        plans: &[&PlanTree],
        default_idx: usize,
        trace: Option<&TraceContext>,
        query_id: u64,
    ) -> (usize, Vec<f64>) {
        let (best, costs) = select_plan(model, plans, &self.strategy);
        let chosen = guarded_choice_traced(
            plans,
            &costs,
            best,
            default_idx,
            self.cfg.margin,
            trace,
            query_id,
        );
        (chosen, costs)
    }

    /// The margin guard plus predictor-degradation rung over an
    /// already-scored candidate set: a non-finite cost degrades to the
    /// default plan with a [`Decision::Fallback`] record and a reason,
    /// otherwise the guard decides. This is the method batched callers use
    /// after [`score_batch`](Self::score_batch).
    pub fn resolve_scored(
        &self,
        plans: &[&PlanTree],
        costs: &[f64],
        default_idx: usize,
        trace: Option<&TraceContext>,
        query_id: u64,
    ) -> (usize, Option<String>) {
        assert!(!plans.is_empty(), "candidate set must be non-empty");
        assert_eq!(plans.len(), costs.len(), "one cost per candidate");
        if let Some((i, c)) = costs.iter().enumerate().find(|(_, c)| !c.is_finite()) {
            let reason = format!(
                "predictor returned non-finite cost {c} for candidate #{i}; serving default"
            );
            mcsim_obs::counter("loam.fallback.predictor_error", 1);
            if let Some(t) = trace {
                t.decision(Decision::Fallback(Fallback {
                    query_id,
                    reason: reason.clone(),
                }));
            }
            return (default_idx, Some(reason));
        }
        let best = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(default_idx);
        let chosen = guarded_choice_traced(
            plans,
            costs,
            best,
            default_idx,
            self.cfg.margin,
            trace,
            query_id,
        );
        (chosen, None)
    }

    /// Robust selection: scores the candidates with one batched forward
    /// through the calling thread's warm inference workspace and runs
    /// [`resolve_scored`](Self::resolve_scored). The returned reason is
    /// `Some` exactly when the predictor misbehaved.
    pub fn select_robust<M: CostModel + Sync + ?Sized>(
        &self,
        model: &M,
        plans: &[&PlanTree],
        default_idx: usize,
        trace: Option<&TraceContext>,
        query_id: u64,
    ) -> (usize, Option<String>) {
        assert!(!plans.is_empty(), "candidate set must be non-empty");
        let mut costs = Vec::with_capacity(plans.len());
        crate::predictor::with_thread_infer_ws(|ws| {
            model.predict_batch_into(plans, self.strategy.env_source(), None, ws, &mut costs);
        });
        self.resolve_scored(plans, &costs, default_idx, trace, query_id)
    }

    /// Executes `steered`, and on failure replays `default_plan` (recording
    /// a [`Decision::Fallback`]). Returns the outcome and whether the
    /// fallback fired; errs only if the default plan failed too.
    pub fn execute_with_fallback(
        &self,
        exec: &mut Executor,
        steered: &PlanTree,
        default_plan: &PlanTree,
        catalog: &Catalog,
        trace: Option<&TraceContext>,
        query_id: u64,
    ) -> Result<(ExecutionOutcome, bool), LoamError> {
        match exec.try_execute_traced(steered, catalog, trace) {
            Ok(out) => Ok((out, false)),
            Err(e) => {
                mcsim_obs::counter("loam.fallback.exec_failed", 1);
                if let Some(t) = trace {
                    t.decision(Decision::Fallback(Fallback {
                        query_id,
                        reason: format!("steered execution failed ({e}); replaying default plan"),
                    }));
                }
                match exec.try_execute_traced(default_plan, catalog, trace) {
                    Ok(out) => Ok((out, true)),
                    Err(e2) => {
                        mcsim_obs::counter("loam.robust.queries_failed", 1);
                        Err(LoamError::ExecutionFailed(format!(
                            "default plan failed too ({e2}) after steered failure ({e})"
                        )))
                    }
                }
            }
        }
    }

    /// Serves one already-selected query down the execution rungs of the
    /// ladder: with fallback enabled a steered failure replays the default
    /// plan, without it the failure is terminal. `base` is the resolution
    /// the selection stage decided on.
    pub fn execute_resolved(
        &self,
        exec: &mut Executor,
        eq: &EvaluatedQuery,
        choice: usize,
        base: Resolution,
        catalog: &Catalog,
        trace: Option<&TraceContext>,
    ) -> RobustQueryResult {
        let steered = &eq.plans[choice];
        let default_plan = &eq.plans[eq.default_idx];
        let resolved = if self.cfg.fallback_enabled {
            match self.execute_with_fallback(
                exec,
                steered,
                default_plan,
                catalog,
                trace,
                eq.query_id,
            ) {
                Ok((out, fell_back)) => Some((
                    out,
                    if fell_back {
                        Resolution::ExecFallback
                    } else {
                        base
                    },
                )),
                Err(_) => None,
            }
        } else {
            match exec.try_execute_traced(steered, catalog, trace) {
                Ok(out) => Some((out, base)),
                Err(_) => {
                    mcsim_obs::counter("loam.robust.queries_failed", 1);
                    None
                }
            }
        };
        match resolved {
            Some((out, resolution)) => {
                mcsim_obs::counter("loam.robust.queries_completed", 1);
                RobustQueryResult {
                    query_id: eq.query_id,
                    resolution,
                    cost: out.cpu_cost,
                    retries: out.retries,
                    wasted_cost: out.wasted_cost,
                    speculative_launches: out.speculative_launches,
                }
            }
            None => RobustQueryResult {
                query_id: eq.query_id,
                resolution: Resolution::Failed,
                cost: 0.0,
                retries: 0,
                wasted_cost: 0.0,
                speculative_launches: 0,
            },
        }
    }

    /// Selection stage for one evaluated query: gate hold → default plan;
    /// otherwise robust selection. Returns the chosen index and the
    /// resolution the execution stage starts from.
    pub fn select_for<M: CostModel + Sync + ?Sized>(
        &self,
        model: &M,
        eq: &EvaluatedQuery,
        gate_deployed: bool,
        trace: Option<&TraceContext>,
    ) -> (usize, Resolution) {
        if !gate_deployed && self.cfg.fallback_enabled {
            mcsim_obs::counter("loam.fallback.gate_hold", 1);
            if let Some(t) = trace {
                t.decision(Decision::Fallback(Fallback {
                    query_id: eq.query_id,
                    reason: "deployment gate held the model; serving default plan".into(),
                }));
            }
            return (eq.default_idx, Resolution::GateFallback);
        }
        let refs: Vec<&PlanTree> = eq.plans.iter().collect();
        let (choice, predictor_error) =
            self.select_robust(model, &refs, eq.default_idx, trace, eq.query_id);
        match predictor_error {
            Some(_) => (choice, Resolution::PredictorFallback),
            None if choice == eq.default_idx => (choice, Resolution::Default),
            None => (choice, Resolution::Steered),
        }
    }

    /// The full robust serving loop: gate the model once, then select and
    /// execute every evaluated query down the fallback ladder. Never panics
    /// and always terminates — every query lands on some [`Resolution`],
    /// and every degraded query carries a [`Decision::Fallback`] record in
    /// `trace`.
    pub fn serve_all<M: CostModel + Sync + ?Sized>(
        &self,
        model: &M,
        evaluated: &[EvaluatedQuery],
        exec: &mut Executor,
        catalog: &Catalog,
        trace: Option<&TraceContext>,
    ) -> Result<RobustRunReport, LoamError> {
        if evaluated.is_empty() {
            return Err(LoamError::EmptyWorkload(
                "robust serving needs at least one evaluated query".into(),
            ));
        }
        let gate = validate_traced(model, &self.strategy, evaluated, &self.cfg.gate, trace);
        let gate_deployed = gate.deploy();
        let mut results = Vec::with_capacity(evaluated.len());
        for eq in evaluated {
            let (choice, base) = self.select_for(model, eq, gate_deployed, trace);
            results.push(self.execute_resolved(exec, eq, choice, base, catalog, trace));
        }
        Ok(RobustRunReport {
            gate_deployed,
            results,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::EnvSource;
    use crate::gate::GateConfig;
    use crate::inference::DEFAULT_MARGIN;
    use mcsim_plan::Operator;

    /// Charges per node; optionally returns NaN for every non-trivial plan.
    struct FakeModel {
        nan_for_big: bool,
    }
    impl CostModel for FakeModel {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn predict(&self, plan: &PlanTree, _env: EnvSource<'_>) -> f64 {
            if self.nan_for_big && plan.len() > 2 {
                f64::NAN
            } else {
                plan.len() as f64
            }
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }

    fn chain(n: usize) -> PlanTree {
        let mut t = PlanTree::new();
        let mut cur = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        for _ in 0..n {
            cur = t.unary(Operator::Limit { n: 1 }, cur);
        }
        t.set_root(cur);
        t
    }

    fn server(margin: f64) -> RobustServer {
        RobustServer::new(
            EnvStrategy::NoEnv,
            RobustConfig {
                margin,
                ..RobustConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn builder_rejects_degenerate_margins() {
        for bad in [-0.1, 1.0, 1.5, f64::NAN, f64::INFINITY] {
            let err = RobustServer::new(
                EnvStrategy::NoEnv,
                RobustConfig {
                    margin: bad,
                    ..RobustConfig::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, LoamError::InvalidConfig(_)),
                "margin {bad} must be rejected, got {err:?}"
            );
        }
        assert!(server(0.0).config().margin == 0.0);
    }

    #[test]
    fn non_finite_predictions_fall_back_to_default_with_provenance() {
        let model = FakeModel { nan_for_big: true };
        let small = chain(1);
        let big = chain(9);
        let ctx = TraceContext::new("robust");
        let (choice, reason) =
            server(0.1).select_robust(&model, &[&small, &big], 0, Some(&ctx), 42);
        assert_eq!(choice, 0);
        assert!(reason.is_some(), "NaN prediction must surface a reason");
        let ds = ctx.decisions();
        assert!(
            matches!(&ds[0], Decision::Fallback(f) if f.query_id == 42),
            "fallback record expected, got {ds:?}"
        );
    }

    #[test]
    fn finite_predictions_delegate_to_the_margin_guard() {
        let model = FakeModel { nan_for_big: false };
        let small = chain(1);
        let big = chain(9);
        // Winner far cheaper than default ⇒ steered, no reason.
        let (choice, reason) = server(0.4).select_robust(&model, &[&big, &small], 0, None, 1);
        assert_eq!(choice, 1);
        assert!(reason.is_none());
    }

    #[test]
    fn resolve_scored_matches_select_robust_on_the_same_costs() {
        let model = FakeModel { nan_for_big: false };
        let plans = [chain(9), chain(1), chain(5)];
        let refs: Vec<&PlanTree> = plans.iter().collect();
        let s = server(DEFAULT_MARGIN);
        let costs = s.score_batch(&model, &refs, None);
        let (from_scored, r1) = s.resolve_scored(&refs, &costs, 0, None, 3);
        let (from_select, r2) = s.select_robust(&model, &refs, 0, None, 3);
        assert_eq!(from_scored, from_select);
        assert_eq!(r1, r2);
    }

    #[test]
    fn guarded_selection_keeps_near_ties_on_the_default() {
        let model = FakeModel { nan_for_big: false };
        let big = chain(9);
        let near = chain(8);
        let (choice, costs) =
            server(DEFAULT_MARGIN).select_guarded(&model, &[&big, &near], 0, None, 8);
        assert_eq!(choice, 0, "margin guard must keep the default");
        assert_eq!(costs.len(), 2);
    }

    #[test]
    fn gate_hold_serves_every_query_default() {
        // An impossible gate (max_avg_ratio = 0) always holds the model.
        let s = RobustServer::new(
            EnvStrategy::NoEnv,
            RobustConfig {
                margin: DEFAULT_MARGIN,
                fallback_enabled: true,
                gate: GateConfig {
                    max_avg_ratio: 0.0,
                    ..GateConfig::default()
                },
            },
        )
        .unwrap();
        let eq = EvaluatedQuery {
            query_id: 9,
            plans: vec![chain(3), chain(1)],
            costs: vec![vec![30.0], vec![10.0]],
            default_idx: 0,
        };
        let (choice, base) = s.select_for(&FakeModel { nan_for_big: false }, &eq, false, None);
        assert_eq!(choice, 0);
        assert_eq!(base, Resolution::GateFallback);
    }
}
