//! The plan explorer (Section 3).
//!
//! Steers MaxCompute's native optimizer with knobs — toggling the six
//! expert-selected flags (Bao-style) and scaling estimated cardinalities for
//! subqueries with ≥ 3 inputs (Lero-style) — to generate a diverse candidate
//! set. Candidates are deduplicated structurally, ranked by the native
//! optimizer's rough cost estimate, and the top-k (always including the
//! default plan) are retained (Section 7.1 uses k = 5).

use mcsim_catalog::QuerySpec;
use mcsim_optimizer::{Knobs, NativeOptimizer, OptimizerFlags};
use mcsim_plan::{PlanSignature, PlanTree};
use serde::{Deserialize, Serialize};

/// Explorer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplorerConfig {
    /// Keep at most this many candidates (including the default plan).
    pub top_k: usize,
    /// Cardinality-scaling factors to try (in addition to 1.0).
    pub card_scales: Vec<f64>,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            top_k: 5,
            card_scales: vec![0.25, 4.0],
        }
    }
}

/// A generated candidate plan with its provenance.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The physical plan.
    pub plan: PlanTree,
    /// The knobs that produced it.
    pub knobs: Knobs,
    /// Native rough cost estimate used for top-k pre-selection.
    pub rough_cost: f64,
}

/// The candidate set for one query.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Retained candidates; `candidates[default_idx]` is the default plan.
    pub candidates: Vec<Candidate>,
    /// Index of the default plan within `candidates`.
    pub default_idx: usize,
}

impl CandidateSet {
    /// Number of retained candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True if only the default plan survived.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Borrow the plans.
    pub fn plans(&self) -> Vec<&PlanTree> {
        self.candidates.iter().map(|c| &c.plan).collect()
    }
}

/// The plan explorer.
#[derive(Debug, Clone)]
pub struct PlanExplorer {
    config: ExplorerConfig,
}

impl Default for PlanExplorer {
    fn default() -> Self {
        PlanExplorer::new(ExplorerConfig::default())
    }
}

impl PlanExplorer {
    /// Creates an explorer.
    pub fn new(config: ExplorerConfig) -> Self {
        PlanExplorer { config }
    }

    /// All knob settings the explorer tries: the default, every single-flag
    /// toggle, and each cardinality scale.
    pub fn knob_space(&self) -> Vec<Knobs> {
        let mut out = vec![Knobs::default()];
        for i in 0..OptimizerFlags::COUNT {
            out.push(Knobs {
                flags: OptimizerFlags::default().toggled(i),
                card_scale: 1.0,
            });
        }
        for &s in &self.config.card_scales {
            out.push(Knobs {
                flags: OptimizerFlags::default(),
                card_scale: s,
            });
        }
        out
    }

    /// Generates the candidate set for `query`.
    ///
    /// Each knob setting's optimize + rough-cost run is independent, so they
    /// fan out across the global pool; dedup then walks the results in knob
    /// order, exactly as the serial loop did.
    pub fn explore(&self, optimizer: &NativeOptimizer<'_>, query: &QuerySpec) -> CandidateSet {
        let space = self.knob_space();
        mcsim_obs::counter("explorer.plans_explored", space.len() as u64);
        let explored: Vec<(Knobs, PlanTree, f64)> =
            mcsim_par::ThreadPool::global().parallel_map(&space, |knobs| {
                let plan = optimizer.optimize(query, knobs);
                let rough_cost = optimizer.rough_cost(&plan, knobs);
                (knobs.clone(), plan, rough_cost)
            });

        let mut seen = std::collections::HashSet::new();
        let mut all: Vec<Candidate> = Vec::new();
        let mut default_sig = None;

        for (knobs, plan, rough_cost) in explored {
            let sig = PlanSignature::of(&plan);
            if knobs.is_default() {
                default_sig = Some(sig);
            }
            if seen.insert(sig) {
                all.push(Candidate {
                    plan,
                    knobs,
                    rough_cost,
                });
            } else {
                mcsim_obs::counter("explorer.duplicates_pruned", 1);
            }
        }

        let default_sig = default_sig.expect("default knobs are always explored");
        // Rank by rough cost, keep top-k, force-include the default plan.
        all.sort_by(|a, b| {
            a.rough_cost
                .partial_cmp(&b.rough_cost)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut kept: Vec<Candidate> = Vec::with_capacity(self.config.top_k);
        let mut default_included = false;
        for c in all {
            let is_default = PlanSignature::of(&c.plan) == default_sig;
            if kept.len() < self.config.top_k {
                default_included |= is_default;
                kept.push(c);
            } else if is_default && !default_included {
                let last = kept.len() - 1;
                kept[last] = c;
                default_included = true;
            }
        }
        let default_idx = kept
            .iter()
            .position(|c| PlanSignature::of(&c.plan) == default_sig)
            .expect("default plan retained");
        mcsim_obs::counter("explorer.candidates_kept", kept.len() as u64);

        CandidateSet {
            candidates: kept,
            default_idx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_catalog::{ProjectId, ProjectProfile};

    fn project() -> mcsim_catalog::Project {
        let mut prof = ProjectProfile::evaluation_project(2).unwrap();
        prof.n_tables = 25;
        prof.n_temp_tables = 3;
        prof.n_columns = 180;
        prof.n_templates = 15;
        prof.generate(ProjectId(2))
    }

    #[test]
    fn knob_space_covers_flags_and_scales() {
        let e = PlanExplorer::default();
        let space = e.knob_space();
        // 1 default + 6 toggles + 2 scales.
        assert_eq!(space.len(), 9);
        assert!(space[0].is_default());
    }

    #[test]
    fn candidate_sets_contain_the_default_plan() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let e = PlanExplorer::default();
        for q in p.workload_for_day(0).iter().take(20) {
            let set = e.explore(&opt, q);
            assert!(!set.is_empty());
            assert!(set.len() <= 5);
            let def = &set.candidates[set.default_idx];
            assert!(
                def.knobs.is_default() || {
                    // The default plan may also be produced by a non-default
                    // knob; its signature is what matters.
                    let dplan = opt.optimize(q, &Knobs::default());
                    PlanSignature::of(&def.plan) == PlanSignature::of(&dplan)
                }
            );
        }
    }

    #[test]
    fn candidates_are_structurally_distinct() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let e = PlanExplorer::default();
        for q in p.workload_for_day(1).iter().take(20) {
            let set = e.explore(&opt, q);
            let sigs: std::collections::HashSet<_> = set
                .candidates
                .iter()
                .map(|c| PlanSignature::of(&c.plan))
                .collect();
            assert_eq!(sigs.len(), set.len(), "candidates must be deduplicated");
        }
    }

    #[test]
    fn explorer_finds_multiple_candidates_for_join_queries() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let e = PlanExplorer::default();
        let mut multi = 0;
        let queries = p.workload_for_day(2);
        for q in queries.iter().filter(|q| q.table_count() >= 2).take(30) {
            if e.explore(&opt, q).len() >= 2 {
                multi += 1;
            }
        }
        assert!(
            multi >= 15,
            "join queries should have plan diversity: {multi}"
        );
    }

    #[test]
    fn all_candidates_are_valid_plans() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let e = PlanExplorer::default();
        for q in p.workload_for_day(3).iter().take(10) {
            for c in e.explore(&opt, q).candidates {
                assert!(c.plan.validate().is_ok());
                assert!(c.rough_cost > 0.0);
            }
        }
    }
}
