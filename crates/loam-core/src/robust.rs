//! Graceful degradation: the fallback ladder that keeps queries completing
//! when the predictor, the deployment gate, or the cluster itself misbehaves.
//!
//! Production steering is only shippable if every failure mode degrades to
//! the native optimizer's default plan instead of taking the query down
//! (what Microsoft's steering deployment and Bao both insist on). The ladder
//! here, from least to most degraded:
//!
//! 1. **Steered** — the model's choice survives the margin guard and
//!    executes (possibly with fault-injected retries along the way).
//! 2. **Predictor fallback** — a candidate scored non-finite: serve the
//!    default plan, record a
//!    [`Decision::Fallback`](mcsim_obs::trace::Decision::Fallback).
//! 3. **Gate fallback** — the deployment gate held the model: every query
//!    serves the default plan, each with a fallback record.
//! 4. **Execution fallback** — the steered plan exhausted its retry budget
//!    or deadline: replay the default plan.
//! 5. **Failed** — even the default plan failed; the query is counted
//!    against the completion rate and surfaces a
//!    [`LoamError::ExecutionFailed`]-equivalent result entry.
//!
//! Every degradation leaves a typed
//! [`Decision::Fallback`](mcsim_obs::trace::Decision::Fallback) provenance record
//! in the trace and bumps a `loam.fallback.*` counter.

use crate::error::LoamError;
use crate::gate::GateConfig;
use crate::inference::{EnvStrategy, DEFAULT_MARGIN};
use crate::pipeline::EvaluatedQuery;
use crate::predictor::baselines::CostModel;
use crate::serving::RobustServer;
use mcsim_catalog::Catalog;
use mcsim_exec::{ExecutionOutcome, Executor};
use mcsim_obs::trace::TraceContext;
use mcsim_plan::PlanTree;

/// Configuration of the robust serving loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustConfig {
    /// Margin of the guarded selection (see
    /// [`DEFAULT_MARGIN`]).
    pub margin: f64,
    /// Whether the fallback ladder is armed. With it off, gate holds are
    /// ignored and execution failures are terminal — the configuration the
    /// chaos benchmark contrasts against.
    pub fallback_enabled: bool,
    /// Deployment-gate thresholds.
    pub gate: GateConfig,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            margin: DEFAULT_MARGIN,
            fallback_enabled: true,
            gate: GateConfig::default(),
        }
    }
}

/// How a query was ultimately resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// The steered (non-default) plan executed successfully.
    Steered,
    /// The model or margin guard itself preferred the default plan — the
    /// normal conservative outcome, not a degradation.
    Default,
    /// Non-finite prediction ⇒ default plan.
    PredictorFallback,
    /// Deployment gate held the model ⇒ default plan.
    GateFallback,
    /// Steered execution failed ⇒ default plan replayed.
    ExecFallback,
    /// Both steered and default execution failed.
    Failed,
}

impl Resolution {
    /// True for the degraded rungs of the ladder (everything below a clean
    /// steered/default serve).
    pub fn is_degraded(&self) -> bool {
        matches!(
            self,
            Resolution::PredictorFallback
                | Resolution::GateFallback
                | Resolution::ExecFallback
                | Resolution::Failed
        )
    }
}

/// Per-query outcome of the robust serving loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustQueryResult {
    /// The query.
    pub query_id: u64,
    /// How the query was resolved.
    pub resolution: Resolution,
    /// Observed CPU cost (0 for failed queries).
    pub cost: f64,
    /// Fault-injected retries the execution survived.
    pub retries: u32,
    /// CPU cost burnt by killed attempts.
    pub wasted_cost: f64,
    /// Speculative backups launched.
    pub speculative_launches: u32,
}

/// The robust serving loop's report.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustRunReport {
    /// Whether the gate deployed the model.
    pub gate_deployed: bool,
    /// One entry per evaluated query, in input order.
    pub results: Vec<RobustQueryResult>,
}

impl RobustRunReport {
    /// Fraction of queries that completed (any rung above `Failed`).
    pub fn completion_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 1.0;
        }
        let ok = self
            .results
            .iter()
            .filter(|r| r.resolution != Resolution::Failed)
            .count();
        ok as f64 / self.results.len() as f64
    }

    /// How many queries took any degraded rung of the ladder.
    pub fn degraded_count(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.resolution.is_degraded())
            .count()
    }

    /// Total fault-injected retries across all queries.
    pub fn total_retries(&self) -> u32 {
        self.results.iter().map(|r| r.retries).sum()
    }

    /// Total observed CPU cost of completed queries.
    pub fn total_cost(&self) -> f64 {
        self.results.iter().map(|r| r.cost).sum()
    }

    /// Total CPU cost burnt by killed attempts.
    pub fn total_wasted_cost(&self) -> f64 {
        self.results.iter().map(|r| r.wasted_cost).sum()
    }
}

/// Robust plan selection.
#[deprecated(note = "use `serving::RobustServer::select_robust` instead")]
pub fn select_plan_robust<M: CostModel + Sync + ?Sized>(
    model: &M,
    plans: &[&PlanTree],
    strategy: &EnvStrategy,
    default_idx: usize,
    margin: f64,
    trace: Option<&TraceContext>,
    query_id: u64,
) -> (usize, Option<String>) {
    let cfg = RobustConfig {
        margin,
        ..RobustConfig::default()
    };
    RobustServer::unchecked(*strategy, cfg).select_robust(
        model,
        plans,
        default_idx,
        trace,
        query_id,
    )
}

/// Executes `steered`, replaying `default_plan` on failure.
#[deprecated(note = "use `serving::RobustServer::execute_with_fallback` instead")]
pub fn execute_with_fallback(
    exec: &mut Executor,
    steered: &PlanTree,
    default_plan: &PlanTree,
    catalog: &Catalog,
    trace: Option<&TraceContext>,
    query_id: u64,
) -> Result<(ExecutionOutcome, bool), LoamError> {
    RobustServer::unchecked(EnvStrategy::NoEnv, RobustConfig::default()).execute_with_fallback(
        exec,
        steered,
        default_plan,
        catalog,
        trace,
        query_id,
    )
}

/// The robust serving loop.
#[deprecated(note = "use `serving::RobustServer::serve_all` instead")]
pub fn run_robust_serving<M: CostModel + Sync + ?Sized>(
    model: &M,
    strategy: &EnvStrategy,
    evaluated: &[EvaluatedQuery],
    exec: &mut Executor,
    catalog: &Catalog,
    cfg: &RobustConfig,
    trace: Option<&TraceContext>,
) -> Result<RobustRunReport, LoamError> {
    RobustServer::unchecked(*strategy, cfg.clone())
        .serve_all(model, evaluated, exec, catalog, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::EnvSource;
    use mcsim_plan::Operator;

    /// Charges per node; optionally returns NaN for every non-trivial plan.
    struct FakeModel {
        nan_for_big: bool,
    }
    impl CostModel for FakeModel {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn predict(&self, plan: &PlanTree, _env: EnvSource<'_>) -> f64 {
            if self.nan_for_big && plan.len() > 2 {
                f64::NAN
            } else {
                plan.len() as f64
            }
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }

    fn chain(n: usize) -> PlanTree {
        let mut t = PlanTree::new();
        let mut cur = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        for _ in 0..n {
            cur = t.unary(Operator::Limit { n: 1 }, cur);
        }
        t.set_root(cur);
        t
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_the_session_engine() {
        let model = FakeModel { nan_for_big: true };
        let small = chain(1);
        let big = chain(9);
        let strat = EnvStrategy::NoEnv;
        // NaN candidate ⇒ default, with a reason — same ladder as the new API.
        let (choice, reason) =
            select_plan_robust(&model, &[&small, &big], &strat, 0, 0.1, None, 42);
        let (new_choice, new_reason) = RobustServer::unchecked(
            strat,
            RobustConfig {
                margin: 0.1,
                ..RobustConfig::default()
            },
        )
        .select_robust(&model, &[&small, &big], 0, None, 42);
        assert_eq!(choice, new_choice);
        assert_eq!(reason.is_some(), new_reason.is_some());
        // Finite candidates ⇒ margin guard, same winner.
        let ok = FakeModel { nan_for_big: false };
        let (c1, r1) = select_plan_robust(&ok, &[&big, &small], &strat, 0, 0.4, None, 1);
        assert_eq!(c1, 1);
        assert!(r1.is_none());
    }

    #[test]
    fn resolution_degradation_classes_are_consistent() {
        assert!(!Resolution::Steered.is_degraded());
        assert!(!Resolution::Default.is_degraded());
        assert!(Resolution::PredictorFallback.is_degraded());
        assert!(Resolution::GateFallback.is_degraded());
        assert!(Resolution::ExecFallback.is_degraded());
        assert!(Resolution::Failed.is_degraded());
    }

    #[test]
    fn report_rates_are_computed_over_all_queries() {
        let mk = |resolution, cost| RobustQueryResult {
            query_id: 0,
            resolution,
            cost,
            retries: 1,
            wasted_cost: 0.5,
            speculative_launches: 0,
        };
        let report = RobustRunReport {
            gate_deployed: true,
            results: vec![
                mk(Resolution::Steered, 10.0),
                mk(Resolution::ExecFallback, 20.0),
                mk(Resolution::Failed, 0.0),
                mk(Resolution::Default, 5.0),
            ],
        };
        assert!((report.completion_rate() - 0.75).abs() < 1e-12);
        assert_eq!(report.degraded_count(), 2);
        assert_eq!(report.total_retries(), 4);
        assert!((report.total_cost() - 35.0).abs() < 1e-12);
        assert!((report.total_wasted_cost() - 2.0).abs() < 1e-12);
    }
}
