//! Graceful degradation: the fallback ladder that keeps queries completing
//! when the predictor, the deployment gate, or the cluster itself misbehaves.
//!
//! Production steering is only shippable if every failure mode degrades to
//! the native optimizer's default plan instead of taking the query down
//! (what Microsoft's steering deployment and Bao both insist on). The ladder
//! here, from least to most degraded:
//!
//! 1. **Steered** — the model's choice survives the margin guard and
//!    executes (possibly with fault-injected retries along the way).
//! 2. **Predictor fallback** — a candidate scored non-finite: serve the
//!    default plan, record a [`Decision::Fallback`].
//! 3. **Gate fallback** — the deployment gate held the model: every query
//!    serves the default plan, each with a fallback record.
//! 4. **Execution fallback** — the steered plan exhausted its retry budget
//!    or deadline: replay the default plan.
//! 5. **Failed** — even the default plan failed; the query is counted
//!    against the completion rate and surfaces a
//!    [`LoamError::ExecutionFailed`]-equivalent result entry.
//!
//! Every degradation leaves a typed [`Decision::Fallback`] provenance record
//! in the trace and bumps a `loam.fallback.*` counter.

use crate::error::LoamError;
use crate::gate::{validate_traced, GateConfig};
use crate::inference::{guarded_choice_traced, EnvStrategy, DEFAULT_MARGIN};
use crate::pipeline::EvaluatedQuery;
use crate::predictor::baselines::CostModel;
use mcsim_catalog::Catalog;
use mcsim_exec::{ExecutionOutcome, Executor};
use mcsim_obs::trace::{Decision, Fallback, TraceContext};
use mcsim_plan::PlanTree;

/// Configuration of the robust serving loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustConfig {
    /// Margin of the guarded selection (see
    /// [`DEFAULT_MARGIN`]).
    pub margin: f64,
    /// Whether the fallback ladder is armed. With it off, gate holds are
    /// ignored and execution failures are terminal — the configuration the
    /// chaos benchmark contrasts against.
    pub fallback_enabled: bool,
    /// Deployment-gate thresholds.
    pub gate: GateConfig,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            margin: DEFAULT_MARGIN,
            fallback_enabled: true,
            gate: GateConfig::default(),
        }
    }
}

/// How a query was ultimately resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// The steered (non-default) plan executed successfully.
    Steered,
    /// The model or margin guard itself preferred the default plan — the
    /// normal conservative outcome, not a degradation.
    Default,
    /// Non-finite prediction ⇒ default plan.
    PredictorFallback,
    /// Deployment gate held the model ⇒ default plan.
    GateFallback,
    /// Steered execution failed ⇒ default plan replayed.
    ExecFallback,
    /// Both steered and default execution failed.
    Failed,
}

impl Resolution {
    /// True for the degraded rungs of the ladder (everything below a clean
    /// steered/default serve).
    pub fn is_degraded(&self) -> bool {
        matches!(
            self,
            Resolution::PredictorFallback
                | Resolution::GateFallback
                | Resolution::ExecFallback
                | Resolution::Failed
        )
    }
}

/// Per-query outcome of the robust serving loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustQueryResult {
    /// The query.
    pub query_id: u64,
    /// How the query was resolved.
    pub resolution: Resolution,
    /// Observed CPU cost (0 for failed queries).
    pub cost: f64,
    /// Fault-injected retries the execution survived.
    pub retries: u32,
    /// CPU cost burnt by killed attempts.
    pub wasted_cost: f64,
    /// Speculative backups launched.
    pub speculative_launches: u32,
}

/// The robust serving loop's report.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustRunReport {
    /// Whether the gate deployed the model.
    pub gate_deployed: bool,
    /// One entry per evaluated query, in input order.
    pub results: Vec<RobustQueryResult>,
}

impl RobustRunReport {
    /// Fraction of queries that completed (any rung above `Failed`).
    pub fn completion_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 1.0;
        }
        let ok = self
            .results
            .iter()
            .filter(|r| r.resolution != Resolution::Failed)
            .count();
        ok as f64 / self.results.len() as f64
    }

    /// How many queries took any degraded rung of the ladder.
    pub fn degraded_count(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.resolution.is_degraded())
            .count()
    }

    /// Total fault-injected retries across all queries.
    pub fn total_retries(&self) -> u32 {
        self.results.iter().map(|r| r.retries).sum()
    }

    /// Total observed CPU cost of completed queries.
    pub fn total_cost(&self) -> f64 {
        self.results.iter().map(|r| r.cost).sum()
    }

    /// Total CPU cost burnt by killed attempts.
    pub fn total_wasted_cost(&self) -> f64 {
        self.results.iter().map(|r| r.wasted_cost).sum()
    }
}

/// Robust plan selection: like
/// [`select_plan_guarded_traced`](crate::inference::select_plan_guarded_traced),
/// but a non-finite prediction degrades to the default plan (with a
/// [`Decision::Fallback`] record) instead of poisoning the argmin. Returns
/// the chosen index and, when the predictor misbehaved, the reason.
pub fn select_plan_robust<M: CostModel + Sync + ?Sized>(
    model: &M,
    plans: &[&PlanTree],
    strategy: &EnvStrategy,
    default_idx: usize,
    margin: f64,
    trace: Option<&TraceContext>,
    query_id: u64,
) -> (usize, Option<String>) {
    assert!(!plans.is_empty(), "candidate set must be non-empty");
    let costs: Vec<f64> = mcsim_par::ThreadPool::global()
        .parallel_map(plans, |p| model.predict(p, strategy.env_source()));
    if let Some((i, c)) = costs.iter().enumerate().find(|(_, c)| !c.is_finite()) {
        let reason =
            format!("predictor returned non-finite cost {c} for candidate #{i}; serving default");
        mcsim_obs::counter("loam.fallback.predictor_error", 1);
        if let Some(t) = trace {
            t.decision(Decision::Fallback(Fallback {
                query_id,
                reason: reason.clone(),
            }));
        }
        return (default_idx, Some(reason));
    }
    let best = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(default_idx);
    let chosen = guarded_choice_traced(plans, &costs, best, default_idx, margin, trace, query_id);
    (chosen, None)
}

/// Executes `steered`, and on failure replays `default_plan` (recording a
/// [`Decision::Fallback`]). Returns the outcome and whether the fallback
/// fired; errs only if the default plan failed too.
pub fn execute_with_fallback(
    exec: &mut Executor,
    steered: &PlanTree,
    default_plan: &PlanTree,
    catalog: &Catalog,
    trace: Option<&TraceContext>,
    query_id: u64,
) -> Result<(ExecutionOutcome, bool), LoamError> {
    match exec.try_execute_traced(steered, catalog, trace) {
        Ok(out) => Ok((out, false)),
        Err(e) => {
            mcsim_obs::counter("loam.fallback.exec_failed", 1);
            if let Some(t) = trace {
                t.decision(Decision::Fallback(Fallback {
                    query_id,
                    reason: format!("steered execution failed ({e}); replaying default plan"),
                }));
            }
            match exec.try_execute_traced(default_plan, catalog, trace) {
                Ok(out) => Ok((out, true)),
                Err(e2) => {
                    mcsim_obs::counter("loam.robust.queries_failed", 1);
                    Err(LoamError::ExecutionFailed(format!(
                        "default plan failed too ({e2}) after steered failure ({e})"
                    )))
                }
            }
        }
    }
}

/// The robust serving loop: gate the model, then select and execute every
/// evaluated query down the fallback ladder. Never panics and always
/// terminates — every query lands on some [`Resolution`], and every degraded
/// query carries a [`Decision::Fallback`] record in `trace`.
pub fn run_robust_serving<M: CostModel + Sync + ?Sized>(
    model: &M,
    strategy: &EnvStrategy,
    evaluated: &[EvaluatedQuery],
    exec: &mut Executor,
    catalog: &Catalog,
    cfg: &RobustConfig,
    trace: Option<&TraceContext>,
) -> Result<RobustRunReport, LoamError> {
    if evaluated.is_empty() {
        return Err(LoamError::EmptyWorkload(
            "robust serving needs at least one evaluated query".into(),
        ));
    }
    let gate = validate_traced(model, strategy, evaluated, &cfg.gate, trace);
    let gate_deployed = gate.deploy();

    let mut results = Vec::with_capacity(evaluated.len());
    for eq in evaluated {
        let (choice, base) = if !gate_deployed && cfg.fallback_enabled {
            mcsim_obs::counter("loam.fallback.gate_hold", 1);
            if let Some(t) = trace {
                t.decision(Decision::Fallback(Fallback {
                    query_id: eq.query_id,
                    reason: "deployment gate held the model; serving default plan".into(),
                }));
            }
            (eq.default_idx, Resolution::GateFallback)
        } else {
            let refs: Vec<&PlanTree> = eq.plans.iter().collect();
            let (choice, predictor_error) = select_plan_robust(
                model,
                &refs,
                strategy,
                eq.default_idx,
                cfg.margin,
                trace,
                eq.query_id,
            );
            match predictor_error {
                Some(_) => (choice, Resolution::PredictorFallback),
                None if choice == eq.default_idx => (choice, Resolution::Default),
                None => (choice, Resolution::Steered),
            }
        };

        let steered = &eq.plans[choice];
        let default_plan = &eq.plans[eq.default_idx];
        let resolved = if cfg.fallback_enabled {
            match execute_with_fallback(exec, steered, default_plan, catalog, trace, eq.query_id) {
                Ok((out, fell_back)) => Some((
                    out,
                    if fell_back {
                        Resolution::ExecFallback
                    } else {
                        base
                    },
                )),
                Err(_) => None,
            }
        } else {
            match exec.try_execute_traced(steered, catalog, trace) {
                Ok(out) => Some((out, base)),
                Err(_) => {
                    mcsim_obs::counter("loam.robust.queries_failed", 1);
                    None
                }
            }
        };

        match resolved {
            Some((out, resolution)) => {
                mcsim_obs::counter("loam.robust.queries_completed", 1);
                results.push(RobustQueryResult {
                    query_id: eq.query_id,
                    resolution,
                    cost: out.cpu_cost,
                    retries: out.retries,
                    wasted_cost: out.wasted_cost,
                    speculative_launches: out.speculative_launches,
                });
            }
            None => results.push(RobustQueryResult {
                query_id: eq.query_id,
                resolution: Resolution::Failed,
                cost: 0.0,
                retries: 0,
                wasted_cost: 0.0,
                speculative_launches: 0,
            }),
        }
    }

    Ok(RobustRunReport {
        gate_deployed,
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::EnvSource;
    use mcsim_plan::Operator;

    /// Charges per node; optionally returns NaN for every non-trivial plan.
    struct FakeModel {
        nan_for_big: bool,
    }
    impl CostModel for FakeModel {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn predict(&self, plan: &PlanTree, _env: EnvSource<'_>) -> f64 {
            if self.nan_for_big && plan.len() > 2 {
                f64::NAN
            } else {
                plan.len() as f64
            }
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }

    fn chain(n: usize) -> PlanTree {
        let mut t = PlanTree::new();
        let mut cur = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        for _ in 0..n {
            cur = t.unary(Operator::Limit { n: 1 }, cur);
        }
        t.set_root(cur);
        t
    }

    #[test]
    fn non_finite_predictions_fall_back_to_default_with_provenance() {
        let model = FakeModel { nan_for_big: true };
        let small = chain(1);
        let big = chain(9);
        let strat = EnvStrategy::NoEnv;
        let ctx = TraceContext::new("robust");
        let (choice, reason) =
            select_plan_robust(&model, &[&small, &big], &strat, 0, 0.1, Some(&ctx), 42);
        assert_eq!(choice, 0);
        assert!(reason.is_some(), "NaN prediction must surface a reason");
        let ds = ctx.decisions();
        assert!(
            matches!(&ds[0], Decision::Fallback(f) if f.query_id == 42),
            "fallback record expected, got {ds:?}"
        );
    }

    #[test]
    fn finite_predictions_delegate_to_the_margin_guard() {
        let model = FakeModel { nan_for_big: false };
        let small = chain(1);
        let big = chain(9);
        let strat = EnvStrategy::NoEnv;
        // Winner far cheaper than default ⇒ steered, no reason.
        let (choice, reason) = select_plan_robust(&model, &[&big, &small], &strat, 0, 0.4, None, 1);
        assert_eq!(choice, 1);
        assert!(reason.is_none());
    }

    #[test]
    fn resolution_degradation_classes_are_consistent() {
        assert!(!Resolution::Steered.is_degraded());
        assert!(!Resolution::Default.is_degraded());
        assert!(Resolution::PredictorFallback.is_degraded());
        assert!(Resolution::GateFallback.is_degraded());
        assert!(Resolution::ExecFallback.is_degraded());
        assert!(Resolution::Failed.is_degraded());
    }

    #[test]
    fn report_rates_are_computed_over_all_queries() {
        let mk = |resolution, cost| RobustQueryResult {
            query_id: 0,
            resolution,
            cost,
            retries: 1,
            wasted_cost: 0.5,
            speculative_launches: 0,
        };
        let report = RobustRunReport {
            gate_deployed: true,
            results: vec![
                mk(Resolution::Steered, 10.0),
                mk(Resolution::ExecFallback, 20.0),
                mk(Resolution::Failed, 0.0),
                mk(Resolution::Default, 5.0),
            ],
        };
        assert!((report.completion_rate() - 0.75).abs() < 1e-12);
        assert_eq!(report.degraded_count(), 2);
        assert_eq!(report.total_retries(), 4);
        assert!((report.total_cost() - 35.0).abs() < 1e-12);
        assert!((report.total_wasted_cost() - 2.0).abs() < 1e-12);
    }
}
