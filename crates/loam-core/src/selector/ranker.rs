//! The learned project Ranker (Section 6, Appendix D.2).
//!
//! Estimates the improvement space `D(M_d)` of a query from *generic*
//! observable properties of its default plan — parent/child operator
//! patterns, the sizes of the largest input tables, and the plan's execution
//! cost — using a lightweight GBDT. Because the features carry no
//! project-specific identifiers, the Ranker trains across projects and
//! transfers to unseen ones.

use mcsim_catalog::Catalog;
use mcsim_obs::trace::{Decision, ProjectRanking, TraceContext};
use mcsim_plan::op::OpType;
use mcsim_plan::{Operator, PlanTree};
use serde::{Deserialize, Serialize};
use tinygbdt::{Gbdt, GbdtConfig};

/// Width of the hashed parent/child-pattern block.
pub const PATTERN_DIM: usize = 64;
/// Total Ranker feature width: structure summary (op count, scan count,
/// join count, depth) + patterns + 3 top table sizes + cost + the
/// cost-per-data-volume residual (the "unusually high execution cost" cue
/// of Section 6).
pub const RANKER_FEATURE_DIM: usize = 4 + PATTERN_DIM + 3 + 2;

/// Encodes a default plan into the Ranker's feature vector.
///
/// Pattern counts use `⟨parent, child⟩` operator-type pairs hashed into
/// [`PATTERN_DIM`] buckets — e.g. `#⟨HA, MJ⟩ = 1` can suggest a reversible
/// aggregate-over-join, which plain operator counts cannot express
/// (Appendix D.2).
pub fn ranker_features(plan: &PlanTree, catalog: &Catalog, cost: f64) -> Vec<f64> {
    let mut out = vec![0.0; RANKER_FEATURE_DIM];
    out[0] = (plan.len() as f64).ln_1p();
    out[1] = plan.count_ops(|o| matches!(o, Operator::TableScan { .. })) as f64;
    out[2] = plan.count_ops(|o| matches!(o, Operator::Join { .. })) as f64;
    out[3] = plan.depth() as f64;

    // Parent/child pattern counts.
    for (id, node) in plan.iter() {
        let p: OpType = node.op.op_type();
        for c in node.children() {
            let ct = plan.op(c).op_type();
            let bucket = (p.index() * 31 + ct.index() * 7) % PATTERN_DIM;
            out[4 + bucket] += 1.0;
        }
        let _ = id;
    }

    // Top-3 input table sizes (log10) and the total data volume.
    let mut sizes: Vec<f64> = Vec::new();
    let mut volume = 0.0f64;
    for (_, n) in plan.iter() {
        if let Operator::TableScan { table, .. } = &n.op {
            if let Some(t) = catalog.table(*table) {
                sizes.push((t.rows as f64).log10());
                volume += t.rows as f64;
            }
        }
    }
    sizes.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    for (i, s) in sizes.iter().take(3).enumerate() {
        out[4 + PATTERN_DIM + i] = *s;
    }

    // Plan cost (log) and its residual against the data volume — a plan
    // that is expensive *for its inputs* suggests a poor join order.
    out[4 + PATTERN_DIM + 3] = cost.max(1.0).ln();
    out[4 + PATTERN_DIM + 4] = cost.max(1.0).ln() - volume.max(1.0).ln();
    out
}

/// The trained Ranker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ranker {
    model: Gbdt,
}

impl Ranker {
    /// Fits the Ranker on `(features, D(M_d))` pairs pooled from multiple
    /// projects.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty.
    pub fn fit(features: &[Vec<f64>], labels: &[f64], seed: u64) -> Ranker {
        let config = GbdtConfig {
            n_trees: 80,
            ..GbdtConfig::default()
        };
        Ranker {
            model: Gbdt::fit(features, labels, config, seed),
        }
    }

    /// Estimated improvement space of one query's default plan.
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.model.predict(features)
    }

    /// A project's score: the mean estimated improvement space over its
    /// sampled workload's default plans.
    pub fn score_project(&self, features: &[Vec<f64>]) -> f64 {
        if features.is_empty() {
            return 0.0;
        }
        features.iter().map(|f| self.predict(f)).sum::<f64>() / features.len() as f64
    }

    /// Ranks projects by descending score; returns indices into `projects`.
    pub fn rank_projects(&self, projects: &[Vec<Vec<f64>>]) -> Vec<usize> {
        self.rank_projects_traced(projects, None)
    }

    /// Like [`Ranker::rank_projects`], but additionally records a
    /// [`Decision::ProjectRanking`] — every project's score in ranked
    /// order — into `trace` (when `Some`).
    pub fn rank_projects_traced(
        &self,
        projects: &[Vec<Vec<f64>>],
        trace: Option<&TraceContext>,
    ) -> Vec<usize> {
        let mut scored: Vec<(usize, f64)> = projects
            .iter()
            .enumerate()
            .map(|(i, feats)| (i, self.score_project(feats)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some(t) = trace {
            t.decision(Decision::ProjectRanking(ProjectRanking {
                scores: scored.iter().map(|&(i, s)| (i as u64, s)).collect(),
            }));
        }
        scored.into_iter().map(|(i, _)| i).collect()
    }

    /// Approximate model size (bytes).
    pub fn size_bytes(&self) -> usize {
        self.model.approx_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_catalog::{ProjectId, ProjectProfile};
    use mcsim_optimizer::{Knobs, NativeOptimizer};

    fn project() -> mcsim_catalog::Project {
        let mut prof = ProjectProfile::evaluation_project(3).unwrap();
        prof.n_tables = 20;
        prof.n_temp_tables = 2;
        prof.n_columns = 150;
        prof.n_templates = 12;
        prof.generate(ProjectId(3))
    }

    #[test]
    fn features_have_fixed_width_and_capture_structure() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let queries = p.workload_for_day(0);
        let f1 = ranker_features(
            &opt.optimize(&queries[0], &Knobs::default()),
            &p.catalog,
            100.0,
        );
        assert_eq!(f1.len(), RANKER_FEATURE_DIM);
        // Pattern block must be populated.
        let pattern_sum: f64 = f1[4..4 + PATTERN_DIM].iter().sum();
        assert!(pattern_sum > 0.0);
    }

    #[test]
    fn cost_feature_reflects_input() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let plan = opt.optimize(&p.workload_for_day(0)[0], &Knobs::default());
        let lo = ranker_features(&plan, &p.catalog, 10.0);
        let hi = ranker_features(&plan, &p.catalog, 1.0e6);
        assert!(hi[RANKER_FEATURE_DIM - 1] > lo[RANKER_FEATURE_DIM - 1]);
    }

    #[test]
    fn ranker_learns_a_cost_linked_signal() {
        // Synthetic: improvement space proportional to the cost feature.
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let queries = p.workload_for_days(0, 3);
        let feats: Vec<Vec<f64>> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                ranker_features(
                    &opt.optimize(q, &Knobs::default()),
                    &p.catalog,
                    100.0 * (i + 1) as f64,
                )
            })
            .collect();
        let labels: Vec<f64> = feats
            .iter()
            .map(|f| 0.1 * f[RANKER_FEATURE_DIM - 1])
            .collect();
        let ranker = Ranker::fit(&feats, &labels, 1);
        // Predictions must correlate with labels (Spearman-ish check).
        let preds: Vec<f64> = feats.iter().map(|f| ranker.predict(f)).collect();
        let n = preds.len();
        let mut concordant = 0;
        let mut total = 0;
        for i in 0..n {
            for j in i + 1..n {
                if labels[i] != labels[j] {
                    total += 1;
                    if (preds[i] - preds[j]) * (labels[i] - labels[j]) > 0.0 {
                        concordant += 1;
                    }
                }
            }
        }
        let tau = concordant as f64 / total as f64;
        assert!(tau > 0.8, "concordance {tau}");
    }

    #[test]
    fn rank_projects_orders_by_score() {
        let feats_low = vec![vec![0.0; RANKER_FEATURE_DIM]; 3];
        let mut feats_high = vec![vec![0.0; RANKER_FEATURE_DIM]; 3];
        for f in &mut feats_high {
            f[RANKER_FEATURE_DIM - 1] = 10.0;
        }
        // Train a trivial model where label = last feature.
        let all: Vec<Vec<f64>> = feats_low.iter().chain(&feats_high).cloned().collect();
        let labels: Vec<f64> = all.iter().map(|f| f[RANKER_FEATURE_DIM - 1]).collect();
        let ranker = Ranker::fit(&all, &labels, 2);
        let order = ranker.rank_projects(&[feats_low, feats_high]);
        assert_eq!(order[0], 1, "high-score project must rank first");
    }

    #[test]
    fn empty_project_scores_zero() {
        let ranker = Ranker::fit(&[vec![0.0; RANKER_FEATURE_DIM]], &[0.5], 3);
        assert_eq!(ranker.score_project(&[]), 0.0);
    }
}
