//! Ranking metrics: Recall@(k, n) and NDCG@k, plus the closed-form
//! expectations for a uniform random ranking (Appendix E.2).

/// `Recall@(k, n)`: the fraction of the `n` ground-truth-best projects that
/// appear in the top-`k` of `predicted` (both are index orderings, best
/// first).
///
/// # Panics
///
/// Panics if `n` is zero or exceeds the number of projects.
pub fn recall_at(predicted: &[usize], truth: &[usize], k: usize, n: usize) -> f64 {
    assert!(n > 0 && n <= truth.len(), "invalid n");
    let top_truth: std::collections::HashSet<usize> = truth.iter().take(n).copied().collect();
    let hits = predicted
        .iter()
        .take(k)
        .filter(|i| top_truth.contains(i))
        .count();
    hits as f64 / n as f64
}

/// `DCG@k` of a predicted ordering given per-project relevance scores:
/// `Σ_{i=1..k} (2^{rel_i} − 1) / log2(i + 1)`.
pub fn dcg_at(predicted: &[usize], relevance: &[f64], k: usize) -> f64 {
    predicted
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &p)| (2f64.powf(relevance[p]) - 1.0) / ((i + 2) as f64).log2())
        .sum()
}

/// `NDCG@k`: DCG of the predicted ordering divided by the ideal DCG.
pub fn ndcg_at(predicted: &[usize], relevance: &[f64], k: usize) -> f64 {
    let mut ideal: Vec<usize> = (0..relevance.len()).collect();
    ideal.sort_by(|&a, &b| {
        relevance[b]
            .partial_cmp(&relevance[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let idcg = dcg_at(&ideal, relevance, k);
    if idcg <= 0.0 {
        return 0.0;
    }
    dcg_at(predicted, relevance, k) / idcg
}

/// Expected `Recall@(k, n)` of a uniform random permutation of `total`
/// projects: `k / N` (Appendix E.2).
pub fn expected_random_recall(k: usize, total: usize) -> f64 {
    (k as f64 / total as f64).min(1.0)
}

/// Expected `NDCG@k` of a uniform random permutation (Appendix E.2): every
/// position carries the mean gain `(1/N) Σ_i (2^{rel_i} − 1)`.
pub fn expected_random_ndcg(relevance: &[f64], k: usize) -> f64 {
    let n = relevance.len();
    if n == 0 {
        return 0.0;
    }
    let mean_gain: f64 = relevance.iter().map(|&r| 2f64.powf(r) - 1.0).sum::<f64>() / n as f64;
    let expected_dcg: f64 = (0..k.min(n))
        .map(|i| mean_gain / ((i + 2) as f64).log2())
        .sum();
    let mut ideal: Vec<usize> = (0..n).collect();
    ideal.sort_by(|&a, &b| {
        relevance[b]
            .partial_cmp(&relevance[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let idcg = dcg_at(&ideal, relevance, k);
    if idcg <= 0.0 {
        0.0
    } else {
        expected_dcg / idcg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn perfect_ranking_scores_one() {
        let truth = vec![3, 1, 0, 2];
        assert_eq!(recall_at(&truth, &truth, 2, 2), 1.0);
        let rel = vec![0.1, 0.8, 0.05, 1.0];
        assert!((ndcg_at(&truth, &rel, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_ranking_scores_zero_recall() {
        let predicted = vec![2, 3];
        let truth = vec![0, 1, 2, 3];
        assert_eq!(recall_at(&predicted, &truth, 2, 2), 0.0);
    }

    #[test]
    fn recall_is_monotone_in_k() {
        let predicted = vec![4, 2, 0, 1, 3];
        let truth = vec![0, 1, 2, 3, 4];
        let mut prev = 0.0;
        for k in 1..=5 {
            let r = recall_at(&predicted, &truth, k, 3);
            assert!(r >= prev);
            prev = r;
        }
        assert_eq!(prev, 1.0);
    }

    #[test]
    fn ndcg_in_unit_interval() {
        let rel = vec![0.5, 0.2, 0.9, 0.1, 0.7];
        let predicted = vec![3, 1, 0, 4, 2]; // bad ordering
        for k in 1..=5 {
            let v = ndcg_at(&predicted, &rel, k);
            assert!((0.0..=1.0).contains(&v), "k={k} v={v}");
        }
    }

    #[test]
    fn random_expectations_match_simulation() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 15usize;
        let rel: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let mut truth: Vec<usize> = (0..n).collect();
        truth.sort_by(|&a, &b| rel[b].partial_cmp(&rel[a]).unwrap());
        let trials = 5000;
        let k = 5;
        let mut recall_sum = 0.0;
        let mut ndcg_sum = 0.0;
        let mut perm: Vec<usize> = (0..n).collect();
        for _ in 0..trials {
            perm.shuffle(&mut rng);
            recall_sum += recall_at(&perm, &truth, k, k);
            ndcg_sum += ndcg_at(&perm, &rel, k);
        }
        let emp_recall = recall_sum / trials as f64;
        let emp_ndcg = ndcg_sum / trials as f64;
        assert!(
            (emp_recall - expected_random_recall(k, n)).abs() < 0.02,
            "recall {emp_recall} vs {}",
            expected_random_recall(k, n)
        );
        assert!(
            (emp_ndcg - expected_random_ndcg(&rel, k)).abs() < 0.02,
            "ndcg {emp_ndcg} vs {}",
            expected_random_ndcg(&rel, k)
        );
    }

    #[test]
    #[should_panic(expected = "invalid n")]
    fn recall_rejects_bad_n() {
        let _ = recall_at(&[0], &[0], 1, 0);
    }
}
