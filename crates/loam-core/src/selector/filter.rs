//! The rule-based project filter (Section 6, Appendix D.1).
//!
//! Three rules exclude projects likely to pose training challenges:
//!
//! * **R1** `n_query(Q) ≥ N₀` — enough queries per day;
//! * **R2** `query_inc_ratio(Q) ≥ r` — stable or growing volume, with `r`
//!   the minimum ratio such that `N₀ · r³⁰ ≥` the target training-set size;
//! * **R3** `stable_table_ratio(Q) ≥ θ` — enough queries touch only
//!   long-lived tables (lifespan > `n` days), so distribution knowledge
//!   learned from history transfers to future queries.

use mcsim_catalog::Project;
use mcsim_obs::trace::{Decision, ProjectFilter, TraceContext};
use serde::{Deserialize, Serialize};

/// Thresholds of the three rules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterConfig {
    /// R1: minimum average queries per day (paper: 2,000).
    pub n0: f64,
    /// R2: minimum daily growth ratio (paper: min `r` with
    /// `N₀ · r³⁰ ≥ 10,000`).
    pub r: f64,
    /// R3: lifespan threshold in days (paper: 30).
    pub lifespan_days: i64,
    /// R3: minimum stable-table ratio θ (paper: 0.2).
    pub theta: f64,
}

impl FilterConfig {
    /// The paper's production thresholds.
    pub fn paper() -> FilterConfig {
        let n0 = 2000.0;
        let target = 10_000.0;
        FilterConfig {
            n0,
            r: (target / n0).powf(1.0 / 30.0),
            lifespan_days: 30,
            theta: 0.2,
        }
    }

    /// Thresholds scaled down for reduced-volume simulations: `n0` shrinks
    /// by `scale`, the growth rule keeps the same functional form.
    pub fn scaled(scale: f64) -> FilterConfig {
        let paper = Self::paper();
        let n0 = (paper.n0 * scale).max(1.0);
        let target = (10_000.0 * scale).max(5.0 * n0.min(2.0 * n0));
        FilterConfig {
            n0,
            r: (target / n0).powf(1.0 / 30.0).max(1.0),
            ..paper
        }
    }
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig::paper()
    }
}

/// The computed metrics and per-rule outcomes for one project.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterReport {
    /// Average queries per day over the sampled window.
    pub n_query: f64,
    /// Mean day-over-day query-count ratio.
    pub query_inc_ratio: f64,
    /// Fraction of queries touching only long-lived tables.
    pub stable_table_ratio: f64,
    /// R1 outcome.
    pub passes_r1: bool,
    /// R2 outcome.
    pub passes_r2: bool,
    /// R3 outcome.
    pub passes_r3: bool,
}

impl FilterReport {
    /// True if every rule passes.
    pub fn passes(&self) -> bool {
        self.passes_r1 && self.passes_r2 && self.passes_r3
    }
}

/// Evaluates the filter on `project` using the workload of days
/// `[from, to)` as the sampled workload `Q`.
///
/// # Panics
///
/// Panics if the day range is empty.
pub fn evaluate(project: &Project, from: i64, to: i64, cfg: &FilterConfig) -> FilterReport {
    evaluate_traced(project, from, to, cfg, None)
}

/// Like [`evaluate`], but additionally records a
/// [`Decision::ProjectFilter`] (the three measured metrics, each rule's
/// verdict, and the conjunction) into `trace` (when `Some`).
///
/// # Panics
///
/// Panics if the day range is empty.
pub fn evaluate_traced(
    project: &Project,
    from: i64,
    to: i64,
    cfg: &FilterConfig,
    trace: Option<&TraceContext>,
) -> FilterReport {
    assert!(to > from, "day range must be non-empty");
    let d = (to - from) as f64;
    let mut daily_counts = Vec::with_capacity((to - from) as usize);
    let mut total = 0usize;
    let mut stable = 0usize;
    for day in from..to {
        let queries = project.workload_for_day(day);
        daily_counts.push(queries.len() as f64);
        for q in &queries {
            total += 1;
            if project.query_uses_only_stable_tables(q, cfg.lifespan_days) {
                stable += 1;
            }
        }
    }
    let n_query = daily_counts.iter().sum::<f64>() / d;
    let query_inc_ratio = if daily_counts.len() < 2 {
        1.0
    } else {
        let ratios: Vec<f64> = daily_counts
            .windows(2)
            .map(|w| if w[0] > 0.0 { w[1] / w[0] } else { 1.0 })
            .collect();
        ratios.iter().sum::<f64>() / ratios.len() as f64
    };
    let stable_table_ratio = if total == 0 {
        0.0
    } else {
        stable as f64 / total as f64
    };
    let report = FilterReport {
        n_query,
        query_inc_ratio,
        stable_table_ratio,
        passes_r1: n_query >= cfg.n0,
        passes_r2: query_inc_ratio >= cfg.r,
        passes_r3: stable_table_ratio >= cfg.theta,
    };
    if let Some(t) = trace {
        t.decision(Decision::ProjectFilter(ProjectFilter {
            project: project.id.0 as u64,
            n_query: report.n_query,
            query_inc_ratio: report.query_inc_ratio,
            stable_table_ratio: report.stable_table_ratio,
            passes_r1: report.passes_r1,
            passes_r2: report.passes_r2,
            passes_r3: report.passes_r3,
            selected: report.passes(),
        }));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_catalog::{ProjectId, ProjectProfile};

    fn project(n_query_day0: f64, growth: f64, temp_ratio: f64) -> Project {
        let mut prof = ProjectProfile::evaluation_project(1).unwrap();
        prof.n_tables = 20;
        prof.n_temp_tables = 6;
        prof.n_columns = 140;
        prof.n_templates = 15;
        prof.n_query_day0 = n_query_day0;
        prof.daily_growth = growth;
        prof.temp_query_ratio = temp_ratio;
        // These tests exercise the rule logic, not volume noise: with σ = 0
        // the day-over-day ratio equals `growth` exactly, so the R1/R2
        // verdicts below hold for any RNG stream.
        prof.daily_volume_sigma = 0.0;
        prof.generate(ProjectId(0))
    }

    #[test]
    fn paper_thresholds_follow_the_formula() {
        let cfg = FilterConfig::paper();
        assert_eq!(cfg.n0, 2000.0);
        // 2000 * r^30 >= 10000 → r = 5^(1/30)
        assert!((cfg.n0 * cfg.r.powi(30) - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn high_volume_stable_project_passes() {
        let p = project(120.0, 1.06, 0.05);
        let cfg = FilterConfig {
            n0: 100.0,
            r: 1.05,
            lifespan_days: 30,
            theta: 0.2,
        };
        let report = evaluate(&p, 0, 5, &cfg);
        assert!(report.passes_r1, "{report:?}");
        assert!(report.passes_r2, "{report:?}");
        assert!(report.passes_r3, "{report:?}");
        assert!(report.passes());
    }

    #[test]
    fn low_volume_project_fails_r1() {
        let p = project(10.0, 1.0, 0.05);
        let cfg = FilterConfig {
            n0: 100.0,
            r: 1.0,
            lifespan_days: 30,
            theta: 0.2,
        };
        let report = evaluate(&p, 0, 5, &cfg);
        assert!(!report.passes_r1);
        assert!(!report.passes());
    }

    #[test]
    fn shrinking_project_fails_r2() {
        let p = project(200.0, 0.8, 0.05);
        let cfg = FilterConfig {
            n0: 50.0,
            r: 1.0,
            lifespan_days: 30,
            theta: 0.2,
        };
        let report = evaluate(&p, 0, 6, &cfg);
        assert!(report.query_inc_ratio < 1.0);
        assert!(!report.passes_r2);
    }

    #[test]
    fn churny_project_fails_r3() {
        let p = project(100.0, 1.0, 0.95);
        let cfg = FilterConfig {
            n0: 50.0,
            r: 0.9,
            lifespan_days: 30,
            theta: 0.5,
        };
        let report = evaluate(&p, 0, 4, &cfg);
        assert!(report.stable_table_ratio < 0.5, "{report:?}");
        assert!(!report.passes_r3);
    }

    #[test]
    fn scaled_config_shrinks_n0() {
        let cfg = FilterConfig::scaled(0.05);
        assert!(cfg.n0 < FilterConfig::paper().n0);
        assert!(cfg.r >= 1.0);
    }
}
