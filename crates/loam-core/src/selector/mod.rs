//! Automatic project selection (Section 6): the rule-based Filter, the
//! learned Ranker, and the ranking metrics used to evaluate it.

pub mod filter;
pub mod metrics;
pub mod ranker;

pub use filter::{
    evaluate as evaluate_filter, evaluate_traced as evaluate_filter_traced, FilterConfig,
    FilterReport,
};
pub use metrics::{dcg_at, expected_random_ndcg, expected_random_recall, ndcg_at, recall_at};
pub use ranker::{ranker_features, Ranker, PATTERN_DIM, RANKER_FEATURE_DIM};
