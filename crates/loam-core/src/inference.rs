//! Plan cost inference under invisible environments (Section 5).
//!
//! At optimization time the execution environment of an online query is
//! unknown. LOAM sets every environmental feature to its empirical mean over
//! historical *per-stage, machine-level* observations (the representative
//! instance `e_r`), which Section 7.2.5 shows beats the cluster-wide
//! alternatives. The ablation variants evaluated there are all here:
//!
//! * **LOAM** — [`EnvStrategy::MeanHistorical`]: mean of logged stage envs.
//! * **LOAM-CE** — [`EnvStrategy::ClusterExpected`]: expectation of a
//!   distribution fitted to cluster-wide metrics over the past 24 h.
//! * **LOAM-CB** — [`EnvStrategy::ClusterCurrent`]: the cluster-wide
//!   snapshot at the moment of optimization.
//! * **LOAM-NL** — [`EnvStrategy::NoEnv`]: no environment features at all
//!   (must be paired with a predictor trained with `use_env = false`).

use crate::featurize::EnvSource;
use crate::predictor::baselines::CostModel;
use mcsim_catalog::{EnvMetrics, QueryRepository};
use mcsim_exec::Cluster;
use mcsim_obs::trace::{
    CandidateScore, Decision, Fallback, PlanSelection, SelectionOutcome, TraceContext,
};
use mcsim_plan::{PlanSignature, PlanTree};
use serde::{Deserialize, Serialize};

/// How the environment block is instantiated at inference time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EnvStrategy {
    /// Representative instance `e_r`: empirical mean of historical
    /// machine-level stage environments (LOAM's choice).
    MeanHistorical(EnvMetrics),
    /// Expected cluster-wide environment over the trailing window (LOAM-CE).
    ClusterExpected(EnvMetrics),
    /// Instantaneous cluster-wide environment (LOAM-CB).
    ClusterCurrent(EnvMetrics),
    /// No environment features (LOAM-NL).
    NoEnv,
}

impl EnvStrategy {
    /// Builds LOAM's strategy from a historical repository.
    pub fn mean_historical(repo: &QueryRepository) -> EnvStrategy {
        EnvStrategy::MeanHistorical(repo.mean_stage_env())
    }

    /// Builds LOAM-CE from the cluster's retained history.
    pub fn cluster_expected(cluster: &Cluster) -> EnvStrategy {
        EnvStrategy::ClusterExpected(cluster.history_mean())
    }

    /// Builds LOAM-CB from the cluster's current snapshot.
    pub fn cluster_current(cluster: &Cluster) -> EnvStrategy {
        EnvStrategy::ClusterCurrent(cluster.cluster_mean())
    }

    /// The [`EnvSource`] to featurize candidate plans with.
    pub fn env_source(&self) -> EnvSource<'static> {
        match self {
            EnvStrategy::MeanHistorical(e)
            | EnvStrategy::ClusterExpected(e)
            | EnvStrategy::ClusterCurrent(e) => EnvSource::Uniform(*e),
            EnvStrategy::NoEnv => EnvSource::None,
        }
    }

    /// Display name matching the paper's variant labels.
    pub fn name(&self) -> &'static str {
        match self {
            EnvStrategy::MeanHistorical(_) => "LOAM",
            EnvStrategy::ClusterExpected(_) => "LOAM-CE",
            EnvStrategy::ClusterCurrent(_) => "LOAM-CB",
            EnvStrategy::NoEnv => "LOAM-NL",
        }
    }
}

/// Default confidence margin used by the guarded selection: a steered plan
/// must be predicted at least this much cheaper than the default plan to be
/// chosen over it.
pub const DEFAULT_MARGIN: f64 = 0.4;

/// Selects the candidate plan with the lowest estimated cost under the
/// given environment strategy. Returns `(index, predicted_costs)`.
///
/// The whole candidate set is scored with one batched forward through the
/// calling thread's warm inference workspace (models without a batched
/// forward fall back to a per-plan loop via the trait default); inner
/// kernels still fan out row blocks across the global pool above the work
/// gate, so the cost vector is bit-identical at any thread count.
pub fn select_plan<M: CostModel + Sync + ?Sized>(
    model: &M,
    plans: &[&PlanTree],
    strategy: &EnvStrategy,
) -> (usize, Vec<f64>) {
    assert!(!plans.is_empty(), "candidate set must be non-empty");
    let mut costs = Vec::with_capacity(plans.len());
    crate::predictor::with_thread_infer_ws(|ws| {
        model.predict_batch_into(plans, strategy.env_source(), None, ws, &mut costs);
    });
    let best = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    (best, costs)
}

/// Guarded selection: picks the estimated-cheapest candidate, but falls back
/// to the default plan unless the winner is predicted at least `margin`
/// cheaper than the default. Production steering is asymmetric — a missed
/// improvement costs little, a confident-but-wrong switch is a regression a
/// multi-tenant system cannot afford — so deviations from the native
/// optimizer require a confidence margin.
#[deprecated(note = "use `serving::RobustServer::select_guarded` instead")]
pub fn select_plan_guarded<M: CostModel + Sync + ?Sized>(
    model: &M,
    plans: &[&PlanTree],
    strategy: &EnvStrategy,
    default_idx: usize,
    margin: f64,
) -> (usize, Vec<f64>) {
    let (best, costs) = select_plan(model, plans, strategy);
    let chosen = guarded_choice_traced(plans, &costs, best, default_idx, margin, None, 0);
    (chosen, costs)
}

/// Like [`select_plan_guarded`], but additionally records a
/// [`Decision::PlanSelection`] (every candidate's signature and predicted
/// cost, the model's favourite, and the guarded choice) — plus a
/// [`Decision::Fallback`] when the margin guard overrides the model — into
/// `trace` (when `Some`). `query_id` labels the records.
#[deprecated(note = "use `serving::RobustServer::select_guarded` instead")]
pub fn select_plan_guarded_traced<M: CostModel + Sync + ?Sized>(
    model: &M,
    plans: &[&PlanTree],
    strategy: &EnvStrategy,
    default_idx: usize,
    margin: f64,
    trace: Option<&TraceContext>,
    query_id: u64,
) -> (usize, Vec<f64>) {
    let (best, costs) = select_plan(model, plans, strategy);
    let chosen = guarded_choice_traced(plans, &costs, best, default_idx, margin, trace, query_id);
    (chosen, costs)
}

/// The margin guard over an already-scored candidate set: picks between the
/// model's favourite `best` and `default_idx`, records the provenance, and
/// returns the guarded choice. Factored out of
/// [`select_plan_guarded_traced`] so callers that must inspect the predicted
/// costs first (e.g. the robust serving path, which checks them for
/// non-finite values) do not have to score the candidates twice.
pub fn guarded_choice_traced(
    plans: &[&PlanTree],
    costs: &[f64],
    best: usize,
    default_idx: usize,
    margin: f64,
    trace: Option<&TraceContext>,
    query_id: u64,
) -> usize {
    let (chosen, outcome) = if best == default_idx {
        mcsim_obs::counter("loam.select.default_best", 1);
        (best, SelectionOutcome::DefaultBest)
    } else if costs[best] > costs[default_idx] * (1.0 - margin) {
        mcsim_obs::counter("loam.select.rejected", 1);
        (default_idx, SelectionOutcome::RejectedFallback)
    } else {
        mcsim_obs::counter("loam.select.accepted", 1);
        (best, SelectionOutcome::Accepted)
    };
    if let Some(t) = trace {
        let candidates: Vec<CandidateScore> = plans
            .iter()
            .zip(costs)
            .enumerate()
            .map(|(i, (p, &c))| CandidateScore {
                signature: PlanSignature::of(p).0,
                predicted_cost: c,
                is_default: i == default_idx,
            })
            .collect();
        t.decision(Decision::PlanSelection(PlanSelection {
            query_id,
            candidates,
            default_idx,
            best_idx: best,
            chosen_idx: chosen,
            margin,
            outcome,
        }));
        if outcome == SelectionOutcome::RejectedFallback {
            t.decision(Decision::Fallback(Fallback {
                query_id,
                reason: format!(
                    "steered candidate #{best} predicted {:.3} vs default {:.3}: \
                     not {:.0}% cheaper, keeping default plan",
                    costs[best],
                    costs[default_idx],
                    margin * 100.0
                ),
            }));
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_plan::Operator;

    /// A fake model that charges per node and per unit of busy fraction.
    struct FakeModel;
    impl CostModel for FakeModel {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn predict(&self, plan: &PlanTree, env: EnvSource<'_>) -> f64 {
            let env_term = match env {
                EnvSource::Uniform(e) => 1.0 + (1.0 - e.cpu_idle),
                _ => 1.0,
            };
            plan.len() as f64 * env_term
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }

    fn chain(n: usize) -> PlanTree {
        let mut t = PlanTree::new();
        let mut cur = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        for _ in 0..n {
            cur = t.unary(Operator::Limit { n: 1 }, cur);
        }
        t.set_root(cur);
        t
    }

    #[test]
    fn select_plan_picks_minimum() {
        let a = chain(5);
        let b = chain(2);
        let c = chain(8);
        let strat = EnvStrategy::MeanHistorical(EnvMetrics::new(0.5, 0.05, 4.0, 0.5));
        let (idx, costs) = select_plan(&FakeModel, &[&a, &b, &c], &strat);
        assert_eq!(idx, 1);
        assert_eq!(costs.len(), 3);
    }

    #[test]
    #[allow(deprecated)]
    fn guarded_selection_records_decision_provenance() {
        let small = chain(1); // cheapest under FakeModel
        let big = chain(9); // the "default" plan
        let strat = EnvStrategy::NoEnv;
        let ctx = TraceContext::new("select");
        // Winner is far cheaper than the default: accepted.
        let (choice, costs) = select_plan_guarded_traced(
            &FakeModel,
            &[&big, &small],
            &strat,
            0,
            DEFAULT_MARGIN,
            Some(&ctx),
            7,
        );
        assert_eq!(choice, 1);
        let ds = ctx.decisions();
        assert_eq!(ds.len(), 1);
        let Decision::PlanSelection(sel) = &ds[0] else {
            panic!("expected a plan-selection record, got {:?}", ds[0]);
        };
        assert_eq!(sel.query_id, 7);
        assert_eq!(sel.candidates.len(), 2);
        assert_eq!(sel.default_idx, 0);
        assert_eq!(sel.chosen_idx, 1);
        assert_eq!(sel.outcome, SelectionOutcome::Accepted);
        assert!(sel.candidates[0].is_default);
        assert_eq!(sel.candidates[0].predicted_cost, costs[0]);
        assert_ne!(sel.candidates[0].signature, sel.candidates[1].signature);

        // Near-tied candidates: the margin guard falls back and says why.
        let near = chain(8);
        let ctx2 = TraceContext::new("fallback");
        let (choice2, _) = select_plan_guarded_traced(
            &FakeModel,
            &[&big, &near],
            &strat,
            0,
            DEFAULT_MARGIN,
            Some(&ctx2),
            8,
        );
        assert_eq!(choice2, 0, "margin guard must keep the default");
        let ds2 = ctx2.decisions();
        assert_eq!(ds2.len(), 2, "selection + fallback");
        assert!(matches!(&ds2[1], Decision::Fallback(f) if f.query_id == 8));
    }

    #[test]
    fn strategy_names_match_paper_variants() {
        let e = EnvMetrics::default();
        assert_eq!(EnvStrategy::MeanHistorical(e).name(), "LOAM");
        assert_eq!(EnvStrategy::ClusterExpected(e).name(), "LOAM-CE");
        assert_eq!(EnvStrategy::ClusterCurrent(e).name(), "LOAM-CB");
        assert_eq!(EnvStrategy::NoEnv.name(), "LOAM-NL");
    }

    #[test]
    fn no_env_strategy_yields_none_source() {
        assert!(matches!(EnvStrategy::NoEnv.env_source(), EnvSource::None));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_candidate_set_panics() {
        let strat = EnvStrategy::NoEnv;
        let _ = select_plan(&FakeModel, &[], &strat);
    }
}
