//! Plan cost inference under invisible environments (Section 5).
//!
//! At optimization time the execution environment of an online query is
//! unknown. LOAM sets every environmental feature to its empirical mean over
//! historical *per-stage, machine-level* observations (the representative
//! instance `e_r`), which Section 7.2.5 shows beats the cluster-wide
//! alternatives. The ablation variants evaluated there are all here:
//!
//! * **LOAM** — [`EnvStrategy::MeanHistorical`]: mean of logged stage envs.
//! * **LOAM-CE** — [`EnvStrategy::ClusterExpected`]: expectation of a
//!   distribution fitted to cluster-wide metrics over the past 24 h.
//! * **LOAM-CB** — [`EnvStrategy::ClusterCurrent`]: the cluster-wide
//!   snapshot at the moment of optimization.
//! * **LOAM-NL** — [`EnvStrategy::NoEnv`]: no environment features at all
//!   (must be paired with a predictor trained with `use_env = false`).

use crate::featurize::EnvSource;
use crate::predictor::baselines::CostModel;
use mcsim_catalog::{EnvMetrics, QueryRepository};
use mcsim_exec::Cluster;
use mcsim_plan::PlanTree;
use serde::{Deserialize, Serialize};

/// How the environment block is instantiated at inference time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EnvStrategy {
    /// Representative instance `e_r`: empirical mean of historical
    /// machine-level stage environments (LOAM's choice).
    MeanHistorical(EnvMetrics),
    /// Expected cluster-wide environment over the trailing window (LOAM-CE).
    ClusterExpected(EnvMetrics),
    /// Instantaneous cluster-wide environment (LOAM-CB).
    ClusterCurrent(EnvMetrics),
    /// No environment features (LOAM-NL).
    NoEnv,
}

impl EnvStrategy {
    /// Builds LOAM's strategy from a historical repository.
    pub fn mean_historical(repo: &QueryRepository) -> EnvStrategy {
        EnvStrategy::MeanHistorical(repo.mean_stage_env())
    }

    /// Builds LOAM-CE from the cluster's retained history.
    pub fn cluster_expected(cluster: &Cluster) -> EnvStrategy {
        EnvStrategy::ClusterExpected(cluster.history_mean())
    }

    /// Builds LOAM-CB from the cluster's current snapshot.
    pub fn cluster_current(cluster: &Cluster) -> EnvStrategy {
        EnvStrategy::ClusterCurrent(cluster.cluster_mean())
    }

    /// The [`EnvSource`] to featurize candidate plans with.
    pub fn env_source(&self) -> EnvSource<'static> {
        match self {
            EnvStrategy::MeanHistorical(e)
            | EnvStrategy::ClusterExpected(e)
            | EnvStrategy::ClusterCurrent(e) => EnvSource::Uniform(*e),
            EnvStrategy::NoEnv => EnvSource::None,
        }
    }

    /// Display name matching the paper's variant labels.
    pub fn name(&self) -> &'static str {
        match self {
            EnvStrategy::MeanHistorical(_) => "LOAM",
            EnvStrategy::ClusterExpected(_) => "LOAM-CE",
            EnvStrategy::ClusterCurrent(_) => "LOAM-CB",
            EnvStrategy::NoEnv => "LOAM-NL",
        }
    }
}

/// Default confidence margin used by the guarded selection: a steered plan
/// must be predicted at least this much cheaper than the default plan to be
/// chosen over it.
pub const DEFAULT_MARGIN: f64 = 0.4;

/// Selects the candidate plan with the lowest estimated cost under the
/// given environment strategy. Returns `(index, predicted_costs)`.
///
/// Candidates are scored independently, so scoring fans out across the
/// global pool; the winner is picked from the order-preserved cost vector,
/// identical to a serial scan.
pub fn select_plan<M: CostModel + Sync + ?Sized>(
    model: &M,
    plans: &[&PlanTree],
    strategy: &EnvStrategy,
) -> (usize, Vec<f64>) {
    assert!(!plans.is_empty(), "candidate set must be non-empty");
    let costs: Vec<f64> = mcsim_par::ThreadPool::global()
        .parallel_map(plans, |p| model.predict(p, strategy.env_source()));
    let best = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    (best, costs)
}

/// Guarded selection: picks the estimated-cheapest candidate, but falls back
/// to the default plan unless the winner is predicted at least `margin`
/// cheaper than the default. Production steering is asymmetric — a missed
/// improvement costs little, a confident-but-wrong switch is a regression a
/// multi-tenant system cannot afford — so deviations from the native
/// optimizer require a confidence margin.
pub fn select_plan_guarded<M: CostModel + Sync + ?Sized>(
    model: &M,
    plans: &[&PlanTree],
    strategy: &EnvStrategy,
    default_idx: usize,
    margin: f64,
) -> (usize, Vec<f64>) {
    let (best, costs) = select_plan(model, plans, strategy);
    if best == default_idx {
        mcsim_obs::counter("loam.select.default_best", 1);
        (best, costs)
    } else if costs[best] > costs[default_idx] * (1.0 - margin) {
        mcsim_obs::counter("loam.select.rejected", 1);
        (default_idx, costs)
    } else {
        mcsim_obs::counter("loam.select.accepted", 1);
        (best, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_plan::Operator;

    /// A fake model that charges per node and per unit of busy fraction.
    struct FakeModel;
    impl CostModel for FakeModel {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn predict(&self, plan: &PlanTree, env: EnvSource<'_>) -> f64 {
            let env_term = match env {
                EnvSource::Uniform(e) => 1.0 + (1.0 - e.cpu_idle),
                _ => 1.0,
            };
            plan.len() as f64 * env_term
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }

    fn chain(n: usize) -> PlanTree {
        let mut t = PlanTree::new();
        let mut cur = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        for _ in 0..n {
            cur = t.unary(Operator::Limit { n: 1 }, cur);
        }
        t.set_root(cur);
        t
    }

    #[test]
    fn select_plan_picks_minimum() {
        let a = chain(5);
        let b = chain(2);
        let c = chain(8);
        let strat = EnvStrategy::MeanHistorical(EnvMetrics::new(0.5, 0.05, 4.0, 0.5));
        let (idx, costs) = select_plan(&FakeModel, &[&a, &b, &c], &strat);
        assert_eq!(idx, 1);
        assert_eq!(costs.len(), 3);
    }

    #[test]
    fn strategy_names_match_paper_variants() {
        let e = EnvMetrics::default();
        assert_eq!(EnvStrategy::MeanHistorical(e).name(), "LOAM");
        assert_eq!(EnvStrategy::ClusterExpected(e).name(), "LOAM-CE");
        assert_eq!(EnvStrategy::ClusterCurrent(e).name(), "LOAM-CB");
        assert_eq!(EnvStrategy::NoEnv.name(), "LOAM-NL");
    }

    #[test]
    fn no_env_strategy_yields_none_source() {
        assert!(matches!(EnvStrategy::NoEnv.env_source(), EnvSource::None));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_candidate_set_panics() {
        let strat = EnvStrategy::NoEnv;
        let _ = select_plan(&FakeModel, &[], &strat);
    }
}
