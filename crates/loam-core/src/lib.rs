//! # loam-core
//!
//! LOAM: a one-stop learned query optimization framework for distributed,
//! multi-tenant data warehouses (reproduction of the MaxCompute paper).
//!
//! The crate implements the paper's four design principles:
//!
//! 1. **Environment-aware plan cost modeling** — per-stage load metrics are
//!    part of the plan encoding ([`featurize`]); at inference time the
//!    unobservable environment is replaced by a representative average-case
//!    instance with a theoretically grounded deviance analysis
//!    ([`inference`], [`theory`]).
//! 2. **Statistics-free plan encoding** — operator attributes and
//!    multi-segment hash encodings instead of histograms/NDVs
//!    ([`featurize`]).
//! 3. **Preemptive generalization** — adversarial domain adaptation (GRL)
//!    aligns default-plan and candidate-plan embeddings during offline
//!    training, eliminating conventional refinement ([`predictor`]).
//! 4. **Automatic project selection** — a rule-based filter plus a learned
//!    GBDT ranker prioritize high-benefit deployments ([`selector`]).
//!
//! [`pipeline`] wires everything together against the MaxCompute simulator
//! crates (`mcsim-*`).
//!
//! ## Example
//!
//! ```no_run
//! use loam_core::pipeline::{self, PipelineConfig};
//! use loam_core::inference::EnvStrategy;
//! use mcsim_catalog::{ProjectId, ProjectProfile};
//!
//! # fn main() -> Result<(), loam_core::LoamError> {
//! let profile = ProjectProfile::evaluation_project(1).unwrap();
//! let cfg = PipelineConfig::reduced(0.05);
//! let prepared = pipeline::prepare_project(&profile, ProjectId(1), &cfg)?;
//! let predictor = pipeline::train_loam(&prepared, &cfg)?;
//! let evaluated = pipeline::evaluate_candidates(&prepared, &cfg)?;
//! let strategy = EnvStrategy::MeanHistorical(prepared.mean_env);
//! let result = pipeline::evaluate_model(&predictor, &strategy, &evaluated)?;
//! println!("LOAM avg CPU cost: {:.0}", result.avg_cost);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod explorer;
pub mod featurize;
pub mod gate;
pub mod inference;
pub mod persist;
pub mod pipeline;
pub mod predictor;
pub mod robust;
pub mod selector;
pub mod serving;
pub mod theory;

pub use error::LoamError;
pub use explorer::{Candidate, CandidateSet, ExplorerConfig, PlanExplorer};
pub use featurize::{CachedFeatures, EnvSource, FeatureCache, PlanFeaturizer, FEATURE_DIM};
pub use gate::{
    validate as validate_deployment, validate_traced as validate_deployment_traced, GateConfig,
    GateReport,
};
pub use inference::{guarded_choice_traced, select_plan, EnvStrategy, DEFAULT_MARGIN};
#[allow(deprecated)] // legacy surface, kept until the shims are removed
pub use inference::{select_plan_guarded, select_plan_guarded_traced};
pub use persist::{load_predictor, load_ranker, save_predictor, save_ranker, PersistError};
pub use predictor::baselines::{CostModel, GcnPredictor, TransformerPredictor, XgbPredictor};
pub use predictor::train::{train, train_reference, TrainConfig, TrainReport, TrainSample};
pub use predictor::{with_thread_infer_ws, AdaptiveCostPredictor, InferWs};
#[allow(deprecated)] // legacy surface, kept until the shims are removed
pub use robust::{execute_with_fallback, run_robust_serving, select_plan_robust};
pub use robust::{Resolution, RobustConfig, RobustQueryResult, RobustRunReport};
pub use selector::{FilterConfig, FilterReport, Ranker};
pub use serving::RobustServer;
pub use theory::{Deviance, KsTest, LogNormal};
