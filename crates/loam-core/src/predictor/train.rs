//! The adaptive training paradigm (Section 4, Equation 1).
//!
//! Jointly optimizes: (1) PlanEmb + CostPred on historical *default* plans
//! with observed per-stage environments and costs; and (2) PlanEmb vs.
//! DomClf adversarially (through a gradient reversal layer) on the mix of
//! default and (unexecuted, unlabeled) *candidate* plans, so PlanEmb learns
//! domain-invariant representations and CostPred generalizes to candidate
//! plans without conventional refinement. Loss weights `w_c`, `w_d` are
//! re-balanced automatically from the running loss magnitudes.
//!
//! ## Hot path
//!
//! Each optimizer step splits its minibatch into fixed-boundary *microbatch
//! slots* (`TrainConfig::microbatches`). Every slot owns a reusable
//! `SlotState` — gradient buffers, layer workspaces, and scratch — so the
//! per-sample forward/backward work runs through tinynn's allocation-free
//! `_ws` kernels and performs zero heap allocation after the first step.
//! Plan-feature rows are ~90% zeros, so `prepare` also builds a CSR nonzero
//! index per plan ([`SparseRows`]) and the encoder's first conv layer — the
//! dominant share of a step's multiply-accumulates — runs its sparse
//! kernels, which are bit-identical to the dense ones.
//! Slots are distributed over persistent worker threads (spawned once per
//! `train` call, synchronized with barriers) and their gradients are folded
//! in slot-index order, so the final weights are bit-identical regardless of
//! thread count — and identical to [`train_reference`], the legacy
//! allocating path kept as a cross-check.

use super::AdaptiveCostPredictor;
use crate::featurize::{CachedFeatures, EnvSource, FeatureCache};
use mcsim_catalog::EnvMetrics;
use mcsim_plan::PlanTree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex, RwLock};
use tinynn::workspace::alloc_probe;
use tinynn::{
    cross_entropy_logits, cross_entropy_logits_into, lambda_schedule, mse, mse_into,
    reverse_gradient, AdamConfig, GradSet, Mat, MlpWs, SparseRows, TcnWs, Workspace,
};

/// One labeled training sample: a historical default plan, its logged
/// per-stage environments, and its observed CPU cost.
#[derive(Debug, Clone)]
pub struct TrainSample {
    /// The executed plan.
    pub plan: PlanTree,
    /// Observed per-stage environment metrics.
    pub stage_envs: Vec<EnvMetrics>,
    /// Observed end-to-end CPU cost.
    pub cost: f64,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size (trees per optimizer step).
    pub batch_size: usize,
    /// Initial learning rate (paper: 0.01).
    pub lr: f32,
    /// Exponential decay per epoch (paper: 0.99).
    pub lr_decay: f32,
    /// Enable the adversarial domain-adaptation objective. `false` builds
    /// the LOAM-NA ablation of Section 7.2.3.
    pub adaptive: bool,
    /// RNG seed for shuffling.
    pub seed: u64,
    /// Microbatch slots per optimizer step. Slot boundaries depend only on
    /// the batch length and this value, and slot gradients are folded in
    /// slot-index order, so results are bit-identical at any thread count.
    pub microbatches: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            batch_size: 16,
            lr: 0.004,
            lr_decay: 0.99,
            adaptive: true,
            seed: 0x10a0,
            microbatches: 8,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean cost loss `L_c` per epoch.
    pub cost_loss: Vec<f64>,
    /// Mean domain loss `L_d` per epoch (empty when `adaptive` is off).
    pub domain_loss: Vec<f64>,
    /// Wall-clock training time in seconds.
    pub seconds: f64,
    /// Wall-clock seconds per epoch.
    pub epoch_seconds: Vec<f64>,
    /// Heap allocations performed inside the optimizer steps of each epoch
    /// (0 without the counting allocator installed; with it, warmup
    /// allocations land in the first epoch and steady-state epochs are 0).
    pub epoch_allocs: Vec<u64>,
    /// Total optimizer steps taken.
    pub steps: u64,
}

impl TrainReport {
    fn with_capacity(epochs: usize) -> TrainReport {
        TrainReport {
            cost_loss: Vec::with_capacity(epochs),
            domain_loss: Vec::with_capacity(epochs),
            seconds: 0.0,
            epoch_seconds: Vec::with_capacity(epochs),
            epoch_allocs: Vec::with_capacity(epochs),
            steps: 0,
        }
    }
}

/// Immutable per-call context shared by every engine.
struct Ctx<'a> {
    feats: &'a [CachedFeatures],
    labels: &'a [f32],
    cand_feats: &'a [CachedFeatures],
    /// CSR nonzero indexes of the sample feature matrices (built once in
    /// `prepare`; the features are static across epochs). Feature rows are
    /// ~90% zeros, so conv1 — the dominant share of a step's
    /// multiply-accumulates — runs on these instead of the dense rows,
    /// bit-identically.
    nz: &'a [SparseRows],
    /// CSR indexes of the candidate feature matrices.
    cand_nz: &'a [SparseRows],
    /// Adversarial objective active (adaptive AND candidates present).
    dann: bool,
}

/// Reusable per-slot buffers: gradient accumulators in canonical layout
/// (PlanEmb 0..10, CostPred 10..14, DomClf 14..18), layer workspaces, and
/// generic scratch. One per microbatch slot; workers lock a slot for the
/// duration of its samples.
struct SlotState {
    grads: GradSet,
    tcn_ws: TcnWs,
    cost_ws: MlpWs,
    dom_ws: MlpWs,
    scratch: Workspace,
    target: Mat,
    gc: Mat,
    gd: Mat,
    gdom: Mat,
    gemb: Mat,
    lc: f32,
    ld: f32,
}

impl SlotState {
    fn new(p: &AdaptiveCostPredictor) -> SlotState {
        let mut shapes = p.plan_emb.grad_shapes();
        shapes.extend(p.cost_head.grad_shapes());
        shapes.extend(p.dom_head.grad_shapes());
        SlotState {
            grads: GradSet::from_shapes(&shapes),
            tcn_ws: TcnWs::default(),
            cost_ws: MlpWs::default(),
            dom_ws: MlpWs::default(),
            scratch: Workspace::new(),
            target: Mat::default(),
            gc: Mat::default(),
            gd: Mat::default(),
            gdom: Mat::default(),
            gemb: Mat::default(),
            lc: 0.0,
            ld: 0.0,
        }
    }

    /// Steady-state bytes held by this slot's buffers.
    fn bytes(&self) -> usize {
        self.grads.bytes()
            + self.tcn_ws.bytes()
            + self.cost_ws.bytes()
            + self.dom_ws.bytes()
            + self.scratch.bytes()
            + 4 * (self.target.data.len()
                + self.gc.data.len()
                + self.gd.data.len()
                + self.gdom.data.len()
                + self.gemb.data.len())
    }
}

/// Per-step work descriptor, filled by the driver, read by the workers.
#[derive(Default)]
struct StepDesc {
    /// Sample indices of this minibatch.
    batch: Vec<usize>,
    /// Pre-drawn candidate index per batch position (empty when the
    /// adversarial objective is off). Drawing on the driver thread in sample
    /// order keeps the RNG stream identical at any thread count.
    cand: Vec<usize>,
    lambda: f64,
    w_d: f32,
    inv: f32,
    /// Samples per slot (`batch.len().div_ceil(microbatches)`).
    chunk: usize,
    /// Number of populated slots this step.
    nslots: usize,
}

impl StepDesc {
    fn fill(&mut self, batch: &[usize], cand: &[usize], lambda: f64, w_d: f32, inv: f32, m: usize) {
        self.batch.clear();
        self.batch.extend_from_slice(batch);
        self.cand.clear();
        self.cand.extend_from_slice(cand);
        self.lambda = lambda;
        self.w_d = w_d;
        self.inv = inv;
        self.chunk = batch.len().div_ceil(m.max(1)).max(1);
        self.nslots = batch.len().div_ceil(self.chunk);
    }
}

/// Runs one microbatch slot: per-sample forward/backward through the
/// allocation-free kernels, gradients accumulated into the slot's buffers.
fn process_slot(
    p: &AdaptiveCostPredictor,
    ctx: &Ctx<'_>,
    desc: &StepDesc,
    s: usize,
    slot: &mut SlotState,
) {
    let start = s * desc.chunk;
    let end = (start + desc.chunk).min(desc.batch.len());
    slot.grads.zero();
    slot.lc = 0.0;
    slot.ld = 0.0;
    let SlotState {
        grads,
        tcn_ws,
        cost_ws,
        dom_ws,
        scratch,
        target,
        gc,
        gd,
        gdom,
        gemb,
        lc,
        ld,
    } = slot;
    let (pe, rest) = grads.mats.split_at_mut(10);
    let (ch, dh) = rest.split_at_mut(4);
    let lam = -(desc.lambda as f32);
    for pos in start..end {
        let i = desc.batch[pos];
        let (_, tree) = &*ctx.feats[i];
        let nz = &ctx.nz[i];
        p.plan_emb.forward_ws_sparse(nz, tree, tcn_ws);

        // Cost objective on the default plan.
        p.cost_head.forward_ws(tcn_ws.emb(), cost_ws);
        target.resize_in_place(1, 1);
        target.data[0] = ctx.labels[i];
        *lc += mse_into(cost_ws.out(), target, gc);
        gc.scale(desc.inv);
        p.cost_head
            .backward_ws(tcn_ws.emb(), cost_ws, gc, ch, Some(gemb), scratch);

        if ctx.dann {
            // Domain objective: this is a default plan (label 0).
            p.dom_head.forward_ws(tcn_ws.emb(), dom_ws);
            *ld += cross_entropy_logits_into(dom_ws.out(), &[0], gd);
            gd.scale(desc.w_d * desc.inv);
            p.dom_head
                .backward_ws(tcn_ws.emb(), dom_ws, gd, dh, Some(gdom), scratch);
            // GRL: reversed gradient into PlanEmb.
            gemb.add_scaled(gdom, lam);
        }

        p.plan_emb
            .backward_ws_sparse(nz, tree, tcn_ws, gemb, pe, scratch);

        if ctx.dann {
            // One candidate plan per default plan (label 1).
            let (_, ctree) = &*ctx.cand_feats[desc.cand[pos]];
            let cnz = &ctx.cand_nz[desc.cand[pos]];
            p.plan_emb.forward_ws_sparse(cnz, ctree, tcn_ws);
            p.dom_head.forward_ws(tcn_ws.emb(), dom_ws);
            *ld += cross_entropy_logits_into(dom_ws.out(), &[1], gd);
            gd.scale(desc.w_d * desc.inv);
            p.dom_head
                .backward_ws(tcn_ws.emb(), dom_ws, gd, dh, Some(gdom), scratch);
            gemb.copy_scaled_from(gdom, lam);
            p.plan_emb
                .backward_ws_sparse(cnz, ctree, tcn_ws, gemb, pe, scratch);
        }
    }
}

/// Folds the populated slots' gradients into the model in slot-index order
/// and applies Adam. Returns the summed `(L_c, L_d)` of the step.
fn fold_and_step(
    p: &mut AdaptiveCostPredictor,
    slots: &[Mutex<SlotState>],
    nslots: usize,
    lr: f32,
    t: u64,
    adam: &AdamConfig,
    adaptive: bool,
) -> (f32, f32) {
    let reduce_started = std::time::Instant::now();
    p.plan_emb.zero_grad();
    p.cost_head.zero_grad();
    p.dom_head.zero_grad();
    let mut lc = 0.0f32;
    let mut ld = 0.0f32;
    for slot in slots.iter().take(nslots) {
        let slot = slot.lock().unwrap();
        let (pe, rest) = slot.grads.mats.split_at(10);
        let (ch, dh) = rest.split_at(4);
        p.plan_emb.add_grads(pe);
        p.cost_head.add_grads(ch);
        p.dom_head.add_grads(dh);
        lc += slot.lc;
        ld += slot.ld;
    }
    p.plan_emb.adam_step(lr, t, adam);
    p.cost_head.adam_step(lr, t, adam);
    if adaptive {
        p.dom_head.adam_step(lr, t, adam);
    }
    mcsim_obs::observe(
        "train.reduce_ns",
        reduce_started.elapsed().as_nanos() as f64,
    );
    (lc, ld)
}

/// The epoch/batch schedule shared by every engine: shuffling, learning-rate
/// decay, the λ ramp, `w_d` re-balancing, candidate pre-draws, and all
/// bookkeeping. `do_step` runs one optimizer step — arguments are the batch
/// indices, pre-drawn candidate indices, λ, `w_d`, `1/|B|`, the decayed
/// learning rate, and the (1-based) Adam timestep — and returns the step's
/// summed `(L_c, L_d)`.
#[allow(clippy::too_many_arguments)]
fn drive(
    cfg: &TrainConfig,
    nsamples: usize,
    cand_len: usize,
    dann: bool,
    feat_count: u64,
    report: &mut TrainReport,
    mut do_step: impl FnMut(&[usize], &[usize], f64, f32, f32, f32, u64) -> (f32, f32),
) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t_step: u64 = 0;
    // Automatic loss balancing: w_d tracks the magnitude ratio of the two
    // losses (w_c fixed to 1).
    let mut w_d: f32 = 0.1;
    let total_steps = (cfg.epochs * nsamples.div_ceil(cfg.batch_size)).max(1);

    let _train_span = mcsim_obs::span("train");
    let mut order: Vec<usize> = (0..nsamples).collect();
    let mut cand_buf: Vec<usize> = Vec::with_capacity(cfg.batch_size);
    for epoch in 0..cfg.epochs {
        let epoch_started = std::time::Instant::now();
        let mut epoch_allocs: u64 = 0;
        let _epoch_span = mcsim_obs::span("epoch");
        mcsim_obs::counter("loam.train.epochs", 1);
        // Epochs after the first reuse the pre-featurized vectors: count the
        // reuse so the snapshot shows how much featurization work the cache
        // saved.
        if epoch > 0 {
            mcsim_obs::counter("loam.featurize.cache_hits", feat_count);
        }
        order.shuffle(&mut rng);
        let lr = cfg.lr * cfg.lr_decay.powi(epoch as i32);
        let mut epoch_lc = 0.0;
        let mut epoch_ld = 0.0;
        let mut n_batches = 0.0;

        for batch in order.chunks(cfg.batch_size) {
            let progress = t_step as f64 / total_steps as f64;
            // The full DANN schedule saturates at 1; with a compact encoder
            // that destabilizes the regression head, so the reversal
            // strength is capped.
            let lambda = 0.15 * lambda_schedule(progress);
            mcsim_obs::gauge("loam.train.grl_lambda", lambda);
            let inv = 1.0 / batch.len() as f32;
            cand_buf.clear();
            if dann {
                for _ in 0..batch.len() {
                    cand_buf.push(rand::Rng::gen_range(&mut rng, 0..cand_len));
                }
            }

            let step_started = std::time::Instant::now();
            let allocs_before = alloc_probe::allocation_count();
            let (batch_lc, batch_ld) = do_step(batch, &cand_buf, lambda, w_d, inv, lr, t_step + 1);
            epoch_allocs += alloc_probe::allocation_count() - allocs_before;
            mcsim_obs::observe("train.step_ns", step_started.elapsed().as_nanos() as f64);

            t_step += 1;
            mcsim_obs::counter("loam.train.steps", 1);
            epoch_lc += (batch_lc / batch.len() as f32) as f64;
            epoch_ld += (batch_ld / (2 * batch.len()) as f32) as f64;
            n_batches += 1.0;
        }

        let lc_avg = epoch_lc / n_batches;
        let ld_avg = epoch_ld / n_batches;
        mcsim_obs::observe("loam.train.cost_loss", lc_avg);
        report.cost_loss.push(lc_avg);
        if cfg.adaptive {
            mcsim_obs::observe("loam.train.domain_loss", ld_avg);
            report.domain_loss.push(ld_avg);
            // Rebalance so the domain term stays a fraction of the cost term.
            if ld_avg > 1e-9 {
                w_d = (0.2 * lc_avg / ld_avg).clamp(0.02, 0.3) as f32;
            }
        }
        report
            .epoch_seconds
            .push(epoch_started.elapsed().as_secs_f64());
        report.epoch_allocs.push(epoch_allocs);
    }
    report.steps = t_step;
}

/// Computes label statistics and pre-featurizes samples and candidates.
fn prepare(
    predictor: &mut AdaptiveCostPredictor,
    samples: &[TrainSample],
    candidates: &[PlanTree],
    mean_env: EnvMetrics,
) -> (Vec<CachedFeatures>, Vec<f32>, Vec<CachedFeatures>) {
    assert!(!samples.is_empty(), "training set must be non-empty");

    // Label statistics in log space.
    let logs: Vec<f32> = samples
        .iter()
        .map(|s| s.cost.max(1e-9).ln() as f32)
        .collect();
    let mean = logs.iter().sum::<f32>() / logs.len() as f32;
    let var = logs.iter().map(|l| (l - mean).powi(2)).sum::<f32>() / logs.len() as f32;
    predictor.label_mean = mean;
    predictor.label_std = var.sqrt().max(1e-3);

    // Pre-featurize everything once, in parallel, through the identity-keyed
    // cache: duplicate plans (within samples, or between samples and
    // candidates under the same environment) featurize exactly once, and the
    // per-plan work fans out across the pool.
    let _span = mcsim_obs::span("featurize");
    let cache = FeatureCache::new();
    let featurizer = predictor.featurizer;
    let pool = mcsim_par::ThreadPool::global();
    let feats: Vec<_> = pool.parallel_map(samples, |s| {
        cache.featurize(&featurizer, &s.plan, EnvSource::PerStage(&s.stage_envs))
    });
    let labels: Vec<f32> = samples
        .iter()
        .map(|s| predictor.normalize(s.cost))
        .collect();
    let cand_feats: Vec<_> = pool.parallel_map(candidates, |p| {
        cache.featurize(&featurizer, p, EnvSource::Uniform(mean_env))
    });
    (feats, labels, cand_feats)
}

/// Trains `predictor` in place.
///
/// `candidates` are knob-steered plans generated by the plan explorer for a
/// sample of queries; they are *never executed* — only their features feed
/// the domain classifier (the paper stresses their generation overhead is
/// negligible).
///
/// Microbatch slots run on persistent worker threads when the global pool
/// has more than one thread; the serial engine runs the same slot code in
/// slot order. Both produce bit-identical weights (see the `train_determinism`
/// integration test).
pub fn train(
    predictor: &mut AdaptiveCostPredictor,
    samples: &[TrainSample],
    candidates: &[PlanTree],
    mean_env: EnvMetrics,
    cfg: &TrainConfig,
) -> TrainReport {
    let started = std::time::Instant::now();
    let (feats, labels, cand_feats) = prepare(predictor, samples, candidates, mean_env);
    // Index the static feature matrices' nonzeros once; every epoch's conv1
    // work then touches only stored entries.
    let pool = mcsim_par::ThreadPool::global();
    let nz: Vec<SparseRows> = pool.parallel_map(&feats, |f| SparseRows::from_dense(&f.0));
    let cand_nz: Vec<SparseRows> = pool.parallel_map(&cand_feats, |f| SparseRows::from_dense(&f.0));
    let ctx = Ctx {
        feats: &feats,
        labels: &labels,
        cand_feats: &cand_feats,
        nz: &nz,
        cand_nz: &cand_nz,
        dann: cfg.adaptive && !cand_feats.is_empty(),
    };
    let adam = AdamConfig {
        weight_decay: 1e-4,
        ..AdamConfig::default()
    };
    let mut report = TrainReport::with_capacity(cfg.epochs);

    let m = cfg.microbatches.max(1);
    let max_slots = m.min(cfg.batch_size.max(1));
    let slots: Vec<Mutex<SlotState>> = (0..max_slots)
        .map(|_| Mutex::new(SlotState::new(predictor)))
        .collect();
    let workers = pool.threads().min(max_slots);
    let feat_count = (samples.len() + candidates.len()) as u64;

    if workers > 1 {
        train_parallel(
            predictor,
            &ctx,
            cfg,
            &adam,
            &slots,
            workers,
            feat_count,
            &mut report,
        );
    } else {
        // Serial engine: same slot code, run in slot order on this thread.
        let mut desc = StepDesc::default();
        drive(
            cfg,
            samples.len(),
            cand_feats.len(),
            ctx.dann,
            feat_count,
            &mut report,
            |batch, cand, lambda, w_d, inv, lr, t| {
                desc.fill(batch, cand, lambda, w_d, inv, m);
                for (s, slot) in slots.iter().enumerate().take(desc.nslots) {
                    let mut slot = slot.lock().unwrap();
                    process_slot(predictor, &ctx, &desc, s, &mut slot);
                }
                fold_and_step(predictor, &slots, desc.nslots, lr, t, &adam, cfg.adaptive)
            },
        );
    }

    let ws_bytes: usize = slots.iter().map(|s| s.lock().unwrap().bytes()).sum();
    mcsim_obs::gauge("train.ws_bytes", ws_bytes as f64);

    report.seconds = started.elapsed().as_secs_f64();
    report
}

/// Shared state between the driver thread and the persistent workers. The
/// driver holds the write side while folding gradients and stepping Adam;
/// workers hold the read side while computing slot gradients.
struct Shared<'p> {
    predictor: &'p mut AdaptiveCostPredictor,
    desc: StepDesc,
}

/// The parallel engine: `workers` persistent threads, spawned once, woken
/// per step with a barrier, assigned slots round-robin (`slot % workers`),
/// and joined when training ends. No allocation per step after warmup.
#[allow(clippy::too_many_arguments)]
fn train_parallel(
    predictor: &mut AdaptiveCostPredictor,
    ctx: &Ctx<'_>,
    cfg: &TrainConfig,
    adam: &AdamConfig,
    slots: &[Mutex<SlotState>],
    workers: usize,
    feat_count: u64,
    report: &mut TrainReport,
) {
    let m = cfg.microbatches.max(1);
    let nsamples = ctx.feats.len();
    let cand_len = ctx.cand_feats.len();
    let shared = RwLock::new(Shared {
        predictor,
        desc: StepDesc::default(),
    });
    let start = Barrier::new(workers + 1);
    let done = Barrier::new(workers + 1);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let shared = &shared;
            let start = &start;
            let done = &done;
            let stop = &stop;
            scope.spawn(move || {
                // Inner kernels must not fan out again from a training
                // worker: nested scoped spawns would allocate every step and
                // oversubscribe the pool.
                let _worker = mcsim_par::enter_worker();
                loop {
                    start.wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    {
                        let guard = shared.read().unwrap();
                        let p: &AdaptiveCostPredictor = guard.predictor;
                        let desc = &guard.desc;
                        let mut s = w;
                        while s < desc.nslots {
                            let mut slot = slots[s].lock().unwrap();
                            process_slot(p, ctx, desc, s, &mut slot);
                            s += workers;
                        }
                    }
                    done.wait();
                }
            });
        }

        drive(
            cfg,
            nsamples,
            cand_len,
            ctx.dann,
            feat_count,
            report,
            |batch, cand, lambda, w_d, inv, lr, t| {
                let nslots = {
                    let mut guard = shared.write().unwrap();
                    guard.desc.fill(batch, cand, lambda, w_d, inv, m);
                    guard.desc.nslots
                };
                start.wait();
                done.wait();
                let mut guard = shared.write().unwrap();
                fold_and_step(guard.predictor, slots, nslots, lr, t, adam, cfg.adaptive)
            },
        );

        stop.store(true, Ordering::Release);
        start.wait();
    });
}

/// The legacy allocating training path, kept as a bit-exact cross-check and
/// benchmark baseline: every sample runs through the allocating wrapper
/// APIs (`forward`/`backward` with per-call caches and temporaries), with
/// the same microbatch fold staging and RNG schedule as [`train`], so its
/// final weights are bit-identical to the workspace engine's.
pub fn train_reference(
    predictor: &mut AdaptiveCostPredictor,
    samples: &[TrainSample],
    candidates: &[PlanTree],
    mean_env: EnvMetrics,
    cfg: &TrainConfig,
) -> TrainReport {
    let started = std::time::Instant::now();
    let (feats, labels, cand_feats) = prepare(predictor, samples, candidates, mean_env);
    let dann = cfg.adaptive && !cand_feats.is_empty();
    let adam = AdamConfig {
        weight_decay: 1e-4,
        ..AdamConfig::default()
    };
    let mut report = TrainReport::with_capacity(cfg.epochs);
    let m = cfg.microbatches.max(1);
    let feat_count = (samples.len() + candidates.len()) as u64;

    drive(
        cfg,
        samples.len(),
        cand_feats.len(),
        dann,
        feat_count,
        &mut report,
        |batch, cand, lambda, w_d, inv, lr, t| {
            let chunk = batch.len().div_ceil(m).max(1);
            let mut lc = 0.0f32;
            let mut ld = 0.0f32;
            // Stage per-slot gradients through the parameter accumulators:
            // compute each slot with zeroed grads, snapshot, then fold the
            // snapshots in slot order — the same reduction as `train`.
            let mut staged: Vec<Vec<Mat>> = Vec::new();
            for (s, slot_batch) in batch.chunks(chunk).enumerate() {
                predictor.plan_emb.zero_grad();
                predictor.cost_head.zero_grad();
                predictor.dom_head.zero_grad();
                // Stage losses per slot as well: the workspace engine folds
                // slot-local sums, and f32 addition is order-sensitive.
                let mut slot_lc = 0.0f32;
                let mut slot_ld = 0.0f32;
                for (k, &i) in slot_batch.iter().enumerate() {
                    let pos = s * chunk + k;
                    let (x, tree) = &*feats[i];
                    let (emb, cache) = predictor.plan_emb.forward(x, tree);

                    // Cost objective on the default plan.
                    let (pred, cost_cache) = predictor.cost_head.forward(&emb);
                    let target = Mat::from_vec(1, 1, vec![labels[i]]);
                    let (sample_lc, mut gc) = mse(&pred, &target);
                    slot_lc += sample_lc;
                    gc.scale(inv);
                    let mut grad_emb = predictor.cost_head.backward(&cost_cache, &gc);

                    if dann {
                        // Domain objective: default plan (label 0).
                        let (logits, dom_cache) = predictor.dom_head.forward(&emb);
                        let (sample_ld, mut gd) = cross_entropy_logits(&logits, &[0]);
                        slot_ld += sample_ld;
                        gd.scale(w_d * inv);
                        let gdom = predictor.dom_head.backward(&dom_cache, &gd);
                        grad_emb.add_assign(&reverse_gradient(&gdom, lambda));
                    }

                    predictor.plan_emb.backward(&cache, tree, &grad_emb);

                    if dann {
                        // One candidate plan per default plan (label 1).
                        let (cx, ctree) = &*cand_feats[cand[pos]];
                        let (cemb, ccache) = predictor.plan_emb.forward(cx, ctree);
                        let (logits, dom_cache) = predictor.dom_head.forward(&cemb);
                        let (sample_ld, mut gd) = cross_entropy_logits(&logits, &[1]);
                        slot_ld += sample_ld;
                        gd.scale(w_d * inv);
                        let gdom = predictor.dom_head.backward(&dom_cache, &gd);
                        let grad_cemb = reverse_gradient(&gdom, lambda);
                        predictor.plan_emb.backward(&ccache, ctree, &grad_cemb);
                    }
                }
                lc += slot_lc;
                ld += slot_ld;
                let snapshot: Vec<Mat> = predictor
                    .plan_emb
                    .params()
                    .into_iter()
                    .chain(predictor.cost_head.params())
                    .chain(predictor.dom_head.params())
                    .map(|p| p.grad.clone())
                    .collect();
                staged.push(snapshot);
            }
            predictor.plan_emb.zero_grad();
            predictor.cost_head.zero_grad();
            predictor.dom_head.zero_grad();
            for snapshot in &staged {
                predictor.plan_emb.add_grads(&snapshot[0..10]);
                predictor.cost_head.add_grads(&snapshot[10..14]);
                predictor.dom_head.add_grads(&snapshot[14..18]);
            }
            predictor.plan_emb.adam_step(lr, t, &adam);
            predictor.cost_head.adam_step(lr, t, &adam);
            if cfg.adaptive {
                predictor.dom_head.adam_step(lr, t, &adam);
            }
            (lc, ld)
        },
    );

    report.seconds = started.elapsed().as_secs_f64();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_plan::Operator;

    /// Synthetic task: cost = 100 × (#nodes) × env multiplier; the model must
    /// learn both the structural and the environmental dependence.
    fn make_samples(n: usize, seed: u64) -> Vec<TrainSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let chain = 2 + (i % 5);
                let mut plan = PlanTree::new();
                let mut cur = plan.leaf(Operator::table_scan((i % 7) as u32, 1, 1, vec![0]));
                for _ in 0..chain {
                    cur = plan.unary(Operator::Limit { n: 10 }, cur);
                }
                let s = plan.unary(Operator::Sink, cur);
                plan.set_root(s);
                let idle: f64 = rand::Rng::gen_range(&mut rng, 0.1..0.9);
                let env = EnvMetrics::new(idle, 0.05, 4.0, 0.5);
                let mult = 1.0 + 1.5 * (1.0 - idle);
                TrainSample {
                    plan,
                    stage_envs: vec![env],
                    cost: 100.0 * (chain + 2) as f64 * mult,
                }
            })
            .collect()
    }

    #[test]
    fn training_reduces_cost_loss() {
        let mut p = AdaptiveCostPredictor::new(1, true);
        let samples = make_samples(80, 2);
        let cfg = TrainConfig {
            epochs: 40,
            lr: 0.01,
            adaptive: false,
            ..TrainConfig::default()
        };
        let report = train(&mut p, &samples, &[], EnvMetrics::default(), &cfg);
        assert!(report.cost_loss.first().unwrap() > report.cost_loss.last().unwrap());
        assert!(*report.cost_loss.last().unwrap() < 0.5);
        assert_eq!(report.epoch_seconds.len(), 40);
        assert_eq!(report.steps, 40 * 80_u64.div_ceil(16));
    }

    #[test]
    fn trained_model_ranks_big_plans_above_small() {
        let mut p = AdaptiveCostPredictor::new(3, true);
        let samples = make_samples(120, 4);
        let cfg = TrainConfig {
            epochs: 10,
            adaptive: false,
            ..TrainConfig::default()
        };
        train(&mut p, &samples, &[], EnvMetrics::default(), &cfg);
        let env = EnvMetrics::new(0.5, 0.05, 4.0, 0.5);
        let small = &samples.iter().find(|s| s.plan.len() == 4).unwrap().plan;
        let big = &samples.iter().find(|s| s.plan.len() == 8).unwrap().plan;
        let cs = p.predict(small, EnvSource::Uniform(env));
        let cb = p.predict(big, EnvSource::Uniform(env));
        assert!(
            cb > cs,
            "bigger plan should predict higher cost: {cb} vs {cs}"
        );
    }

    #[test]
    fn env_features_shift_predictions() {
        let mut p = AdaptiveCostPredictor::new(5, true);
        let samples = make_samples(150, 6);
        let cfg = TrainConfig {
            epochs: 12,
            adaptive: false,
            ..TrainConfig::default()
        };
        train(&mut p, &samples, &[], EnvMetrics::default(), &cfg);
        let plan = &samples[0].plan;
        let idle = p.predict(
            plan,
            EnvSource::Uniform(EnvMetrics::new(0.9, 0.05, 4.0, 0.5)),
        );
        let busy = p.predict(
            plan,
            EnvSource::Uniform(EnvMetrics::new(0.1, 0.05, 4.0, 0.5)),
        );
        assert!(
            busy > idle,
            "busy environment should predict higher cost: {busy} vs idle {idle}"
        );
    }

    #[test]
    fn adaptive_training_runs_and_reports_domain_loss() {
        let mut p = AdaptiveCostPredictor::new(7, true);
        let samples = make_samples(40, 8);
        let candidates: Vec<PlanTree> = make_samples(10, 9).into_iter().map(|s| s.plan).collect();
        let cfg = TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        };
        let report = train(&mut p, &samples, &candidates, EnvMetrics::default(), &cfg);
        assert_eq!(report.domain_loss.len(), 4);
        assert!(report.domain_loss.iter().all(|&l| l.is_finite()));
        assert!(report.seconds > 0.0);
    }

    #[test]
    fn reference_path_produces_identical_weights_and_losses() {
        let samples = make_samples(48, 11);
        let candidates: Vec<PlanTree> = make_samples(12, 12).into_iter().map(|s| s.plan).collect();
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let mut a = AdaptiveCostPredictor::new(21, true);
        let mut b = AdaptiveCostPredictor::new(21, true);
        let ra = train(&mut a, &samples, &candidates, EnvMetrics::default(), &cfg);
        let rb = train_reference(&mut b, &samples, &candidates, EnvMetrics::default(), &cfg);
        assert_eq!(ra.cost_loss, rb.cost_loss);
        assert_eq!(ra.domain_loss, rb.domain_loss);
        for (pa, pb) in a.plan_emb.params().iter().zip(b.plan_emb.params()) {
            assert_eq!(pa.value.data, pb.value.data, "plan_emb weights diverged");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_set_panics() {
        let mut p = AdaptiveCostPredictor::new(1, true);
        train(
            &mut p,
            &[],
            &[],
            EnvMetrics::default(),
            &TrainConfig::default(),
        );
    }
}
