//! Baseline learned cost models (Section 7.1).
//!
//! The evaluation compares LOAM's TCN-based predictor against learned
//! optimizer variants that swap in other representative cost models:
//! a plan **Transformer** (after QueryFormer), a **GCN** (after zero-shot
//! cost models), and **XGBoost** (after PerfGuard). All reuse LOAM's plan
//! explorer and featurization; none uses adaptive training — which is
//! exactly why they suffer from the default→candidate distribution shift.

use super::train::{TrainConfig, TrainSample};
use super::{AdaptiveCostPredictor, InferWs};
use crate::featurize::{EnvSource, FeatureCache, PlanFeaturizer, FEATURE_DIM};
use mcsim_plan::PlanTree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tinygbdt::{Gbdt, GbdtConfig};
use tinynn::gcn::Graph;
use tinynn::{mse, AdamConfig, Gcn, Mat, Mlp, Transformer};

/// Common interface of every cost model in the evaluation harness.
pub trait CostModel: Send + Sync {
    /// Short display name ("LOAM", "Transformer", …).
    fn name(&self) -> &'static str;
    /// Predicted CPU cost of `plan` with the environment block filled from
    /// `env`.
    fn predict(&self, plan: &PlanTree, env: EnvSource<'_>) -> f64;
    /// Predicted costs for a batch of plans under one environment. The
    /// default is a per-plan [`predict`](Self::predict) loop (the `cache`
    /// is a featurization hint models may ignore); models with a batched
    /// forward override this so one padded inference amortizes over the
    /// whole batch. Implementations must return bit-identical values to
    /// per-plan `predict`.
    fn predict_batch(
        &self,
        plans: &[&PlanTree],
        env: EnvSource<'_>,
        _cache: Option<&FeatureCache>,
    ) -> Vec<f64> {
        plans.iter().map(|p| self.predict(p, env.clone())).collect()
    }
    /// [`predict_batch`](Self::predict_batch) into caller-owned buffers so
    /// serving loops can reuse one warm workspace across scoring batches.
    /// `out` receives one cost per plan (cleared first). The default ignores
    /// the workspace and delegates to `predict_batch`; models with a
    /// workspace-based forward override this to score with zero steady-state
    /// allocations. Implementations must be bit-identical to `predict_batch`.
    fn predict_batch_into(
        &self,
        plans: &[&PlanTree],
        env: EnvSource<'_>,
        cache: Option<&FeatureCache>,
        _ws: &mut InferWs,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend(self.predict_batch(plans, env, cache));
    }
    /// Approximate model size in bytes.
    fn size_bytes(&self) -> usize;
}

impl CostModel for AdaptiveCostPredictor {
    fn name(&self) -> &'static str {
        "LOAM"
    }
    fn predict(&self, plan: &PlanTree, env: EnvSource<'_>) -> f64 {
        AdaptiveCostPredictor::predict(self, plan, env)
    }
    fn predict_batch(
        &self,
        plans: &[&PlanTree],
        env: EnvSource<'_>,
        cache: Option<&FeatureCache>,
    ) -> Vec<f64> {
        AdaptiveCostPredictor::predict_batch(self, plans, env, cache)
    }
    fn predict_batch_into(
        &self,
        plans: &[&PlanTree],
        env: EnvSource<'_>,
        cache: Option<&FeatureCache>,
        ws: &mut InferWs,
        out: &mut Vec<f64>,
    ) {
        AdaptiveCostPredictor::predict_batch_into(self, plans, env, cache, ws, out)
    }
    fn size_bytes(&self) -> usize {
        AdaptiveCostPredictor::size_bytes(self)
    }
}

/// Label statistics shared by the supervised baselines.
#[derive(Debug, Clone, Copy)]
struct LabelStats {
    mean: f32,
    std: f32,
}

impl LabelStats {
    fn fit(samples: &[TrainSample]) -> LabelStats {
        let logs: Vec<f32> = samples
            .iter()
            .map(|s| s.cost.max(1e-9).ln() as f32)
            .collect();
        let mean = logs.iter().sum::<f32>() / logs.len().max(1) as f32;
        let var = logs.iter().map(|l| (l - mean).powi(2)).sum::<f32>() / logs.len().max(1) as f32;
        LabelStats {
            mean,
            std: var.sqrt().max(1e-3),
        }
    }
    fn normalize(&self, cost: f64) -> f32 {
        (cost.max(1e-9).ln() as f32 - self.mean) / self.std
    }
    fn denormalize(&self, v: f32) -> f64 {
        ((v * self.std + self.mean) as f64).exp()
    }
}

/// Transformer-based cost model.
#[derive(Debug, Clone)]
pub struct TransformerPredictor {
    featurizer: PlanFeaturizer,
    encoder: Transformer,
    head: Mlp,
    stats: LabelStats,
}

impl TransformerPredictor {
    /// Trains on default plans only (no domain adaptation).
    pub fn fit(samples: &[TrainSample], cfg: &TrainConfig) -> TransformerPredictor {
        assert!(!samples.is_empty());
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7f);
        let featurizer = PlanFeaturizer::default();
        let mut encoder = Transformer::new(FEATURE_DIM, 32, 24, &mut rng);
        let mut head = Mlp::new(&[24, 16, 1], &mut rng);
        let stats = LabelStats::fit(samples);
        let feats: Vec<Mat> = samples
            .iter()
            .map(|s| {
                featurizer
                    .featurize(&s.plan, EnvSource::PerStage(&s.stage_envs))
                    .0
            })
            .collect();
        let labels: Vec<f32> = samples.iter().map(|s| stats.normalize(s.cost)).collect();
        let adam = AdamConfig::default();
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut t = 0;
        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let lr = cfg.lr * cfg.lr_decay.powi(epoch as i32);
            for batch in order.chunks(cfg.batch_size) {
                encoder.zero_grad();
                head.zero_grad();
                let inv = 1.0 / batch.len() as f32;
                for &i in batch {
                    let (emb, cache) = encoder.forward(&feats[i]);
                    let (pred, hcache) = head.forward(&emb);
                    let (_, mut grad) = mse(&pred, &Mat::from_vec(1, 1, vec![labels[i]]));
                    grad.scale(inv);
                    let gemb = head.backward(&hcache, &grad);
                    encoder.backward(&cache, &gemb);
                }
                t += 1;
                encoder.adam_step(lr, t, &adam);
                head.adam_step(lr, t, &adam);
            }
        }
        TransformerPredictor {
            featurizer,
            encoder,
            head,
            stats,
        }
    }
}

impl CostModel for TransformerPredictor {
    fn name(&self) -> &'static str {
        "Transformer"
    }
    fn predict(&self, plan: &PlanTree, env: EnvSource<'_>) -> f64 {
        let (x, _) = self.featurizer.featurize(plan, env);
        let emb = self.encoder.infer(&x);
        self.stats.denormalize(self.head.infer(&emb).data[0])
    }
    fn size_bytes(&self) -> usize {
        (self.encoder.param_count() + self.head.param_count()) * 4
    }
}

/// GCN-based cost model.
#[derive(Debug, Clone)]
pub struct GcnPredictor {
    featurizer: PlanFeaturizer,
    encoder: Gcn,
    head: Mlp,
    stats: LabelStats,
}

impl GcnPredictor {
    /// Trains on default plans only.
    pub fn fit(samples: &[TrainSample], cfg: &TrainConfig) -> GcnPredictor {
        assert!(!samples.is_empty());
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9c);
        let featurizer = PlanFeaturizer::default();
        let mut encoder = Gcn::new(FEATURE_DIM, 48, 24, 24, &mut rng);
        let mut head = Mlp::new(&[24, 16, 1], &mut rng);
        let stats = LabelStats::fit(samples);
        let feats: Vec<(Mat, Graph)> = samples
            .iter()
            .map(|s| {
                let (x, tree) = featurizer.featurize(&s.plan, EnvSource::PerStage(&s.stage_envs));
                let g = Graph::from_tree(&tree);
                (x, g)
            })
            .collect();
        let labels: Vec<f32> = samples.iter().map(|s| stats.normalize(s.cost)).collect();
        let adam = AdamConfig::default();
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut t = 0;
        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let lr = cfg.lr * cfg.lr_decay.powi(epoch as i32);
            for batch in order.chunks(cfg.batch_size) {
                encoder.zero_grad();
                head.zero_grad();
                let inv = 1.0 / batch.len() as f32;
                for &i in batch {
                    let (x, g) = &feats[i];
                    let (emb, cache) = encoder.forward(x, g);
                    let (pred, hcache) = head.forward(&emb);
                    let (_, mut grad) = mse(&pred, &Mat::from_vec(1, 1, vec![labels[i]]));
                    grad.scale(inv);
                    let gemb = head.backward(&hcache, &grad);
                    encoder.backward(&cache, g, &gemb);
                }
                t += 1;
                encoder.adam_step(lr, t, &adam);
                head.adam_step(lr, t, &adam);
            }
        }
        GcnPredictor {
            featurizer,
            encoder,
            head,
            stats,
        }
    }
}

impl CostModel for GcnPredictor {
    fn name(&self) -> &'static str {
        "GCN"
    }
    fn predict(&self, plan: &PlanTree, env: EnvSource<'_>) -> f64 {
        let (x, tree) = self.featurizer.featurize(plan, env);
        let g = Graph::from_tree(&tree);
        let emb = self.encoder.infer(&x, &g);
        self.stats.denormalize(self.head.infer(&emb).data[0])
    }
    fn size_bytes(&self) -> usize {
        (self.encoder.param_count() + self.head.param_count()) * 4
    }
}

/// XGBoost-style cost model over pooled plan features.
#[derive(Debug, Clone)]
pub struct XgbPredictor {
    featurizer: PlanFeaturizer,
    model: Gbdt,
    stats: LabelStats,
}

/// Pools a node-feature matrix into a fixed vector: per-dimension mean and
/// max plus the node count.
pub fn pool_features(x: &Mat) -> Vec<f64> {
    let mut out = Vec::with_capacity(2 * x.cols + 1);
    for c in 0..x.cols {
        let mut sum = 0.0f64;
        let mut max = f64::MIN;
        for r in 0..x.rows {
            let v = x.get(r, c) as f64;
            sum += v;
            max = max.max(v);
        }
        out.push(sum / x.rows.max(1) as f64);
        out.push(if x.rows == 0 { 0.0 } else { max });
    }
    out.push(x.rows as f64);
    out
}

impl XgbPredictor {
    /// Trains on default plans only (standard library defaults, per the
    /// paper's methodology of avoiding hyperparameter tuning).
    pub fn fit(samples: &[TrainSample], seed: u64) -> XgbPredictor {
        assert!(!samples.is_empty());
        let featurizer = PlanFeaturizer::default();
        let stats = LabelStats::fit(samples);
        let x: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| {
                pool_features(
                    &featurizer
                        .featurize(&s.plan, EnvSource::PerStage(&s.stage_envs))
                        .0,
                )
            })
            .collect();
        let y: Vec<f64> = samples
            .iter()
            .map(|s| stats.normalize(s.cost) as f64)
            .collect();
        let model = Gbdt::fit(&x, &y, GbdtConfig::default(), seed);
        XgbPredictor {
            featurizer,
            model,
            stats,
        }
    }
}

impl CostModel for XgbPredictor {
    fn name(&self) -> &'static str {
        "XGBoost"
    }
    fn predict(&self, plan: &PlanTree, env: EnvSource<'_>) -> f64 {
        let (x, _) = self.featurizer.featurize(plan, env);
        let v = self.model.predict(&pool_features(&x));
        self.stats.denormalize(v as f32)
    }
    fn size_bytes(&self) -> usize {
        self.model.approx_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_catalog::EnvMetrics;
    use mcsim_plan::Operator;

    fn make_samples(n: usize) -> Vec<TrainSample> {
        (0..n)
            .map(|i| {
                let chain = 2 + (i % 4);
                let mut plan = PlanTree::new();
                let mut cur = plan.leaf(Operator::table_scan((i % 5) as u32, 1, 1, vec![0]));
                for _ in 0..chain {
                    cur = plan.unary(Operator::Limit { n: 10 }, cur);
                }
                let s = plan.unary(Operator::Sink, cur);
                plan.set_root(s);
                TrainSample {
                    plan,
                    stage_envs: vec![EnvMetrics::new(0.5, 0.05, 4.0, 0.5)],
                    cost: 50.0 * (chain as f64 + 1.0),
                }
            })
            .collect()
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn transformer_baseline_learns_ordering() {
        let samples = make_samples(60);
        let m = TransformerPredictor::fit(&samples, &quick_cfg());
        let env = EnvSource::Uniform(EnvMetrics::new(0.5, 0.05, 4.0, 0.5));
        let small = m.predict(&samples[0].plan, env.clone()); // chain 2
        let big = m.predict(&samples[2].plan, env); // chain 4
        assert!(big > small, "{big} vs {small}");
        assert!(m.size_bytes() > 1000);
        assert_eq!(m.name(), "Transformer");
    }

    #[test]
    fn gcn_baseline_learns_ordering() {
        let samples = make_samples(60);
        let m = GcnPredictor::fit(&samples, &quick_cfg());
        let env = EnvSource::Uniform(EnvMetrics::new(0.5, 0.05, 4.0, 0.5));
        let small = m.predict(&samples[0].plan, env.clone());
        let big = m.predict(&samples[2].plan, env);
        assert!(big > small, "{big} vs {small}");
    }

    #[test]
    fn xgb_baseline_learns_ordering() {
        let samples = make_samples(80);
        let m = XgbPredictor::fit(&samples, 7);
        let env = EnvSource::Uniform(EnvMetrics::new(0.5, 0.05, 4.0, 0.5));
        let small = m.predict(&samples[0].plan, env.clone());
        let big = m.predict(&samples[2].plan, env);
        assert!(big > small, "{big} vs {small}");
    }

    #[test]
    fn pooled_features_have_fixed_width() {
        let f = PlanFeaturizer::default();
        let samples = make_samples(2);
        let a = pool_features(&f.featurize(&samples[0].plan, EnvSource::None).0);
        let b = pool_features(&f.featurize(&samples[1].plan, EnvSource::None).0);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 2 * FEATURE_DIM + 1);
    }
}
