//! The adaptive cost predictor (Section 4): PlanEmb (tree convolution) +
//! CostPred, with a DomClf domain classifier attached through a gradient
//! reversal layer during training.

pub mod baselines;
pub mod train;

use crate::featurize::{CachedFeatures, EnvSource, FeatureCache, PlanFeaturizer};
use mcsim_plan::PlanTree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use tinynn::{ForestWs, Mat, Mlp, MlpWs, Tcn};

/// Width of the intermediate plan embedding `e_P`.
pub const EMB_DIM: usize = 32;

/// Caller-owned workspace for batched inference: the cached-feature refs,
/// the stacked forest buffers, and the cost-head activations. One warm
/// instance per serving worker; after the largest batch shape has been seen,
/// scoring a batch performs zero heap allocations (given warm feature-cache
/// hits).
#[derive(Debug)]
pub struct InferWs {
    feats: Vec<CachedFeatures>,
    forest: ForestWs,
    head: MlpWs,
    /// When true (the default), conv1 consumes a CSR index of the stacked
    /// feature matrix — bit-identical and faster on ~90%-zero feature rows.
    pub sparse: bool,
}

impl InferWs {
    /// A workspace with the default (sparse conv1) configuration.
    pub fn new() -> Self {
        InferWs {
            feats: Vec::new(),
            forest: ForestWs::default(),
            head: MlpWs::default(),
            sparse: true,
        }
    }

    /// Bytes held by the reusable buffers.
    pub fn bytes(&self) -> usize {
        self.forest.bytes()
            + self.head.bytes()
            + self.feats.capacity() * std::mem::size_of::<CachedFeatures>()
    }
}

impl Default for InferWs {
    fn default() -> Self {
        InferWs::new()
    }
}

thread_local! {
    static THREAD_INFER_WS: RefCell<InferWs> = RefCell::new(InferWs::new());
}

/// Runs `f` with this thread's long-lived [`InferWs`], so per-thread scoring
/// paths (e.g. a parallel evaluation worker calling `select_plan` per query)
/// reuse one warm workspace across queries instead of allocating per batch.
pub fn with_thread_infer_ws<R>(f: impl FnOnce(&mut InferWs) -> R) -> R {
    THREAD_INFER_WS.with(|ws| f(&mut ws.borrow_mut()))
}

/// LOAM's adaptive cost predictor.
///
/// `PlanEmb` is a two-layer tree convolutional network with dynamic max
/// pooling and a fully connected projection; `CostPred` and `DomClf` are
/// small fully connected heads. Costs are modeled in standardized log space
/// (production CPU costs span 10³–10⁷).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveCostPredictor {
    /// The statistics-free featurizer.
    pub featurizer: PlanFeaturizer,
    /// PlanEmb: tree-convolutional encoder.
    pub plan_emb: Tcn,
    /// CostPred: embedding → scalar (standardized log cost).
    pub cost_head: Mlp,
    /// DomClf: embedding → 2 logits (default vs. candidate plan).
    pub dom_head: Mlp,
    /// Mean of `ln(cost)` over the training set.
    pub label_mean: f32,
    /// Std-dev of `ln(cost)` over the training set.
    pub label_std: f32,
}

impl AdaptiveCostPredictor {
    /// Fresh, untrained predictor. `use_env = false` builds the LOAM-NL
    /// ablation that ignores environment features entirely.
    pub fn new(seed: u64, use_env: bool) -> Self {
        Self::with_dims(seed, use_env, 128, 64, EMB_DIM)
    }

    /// Fresh predictor with explicit tree-conv widths and embedding size.
    pub fn with_dims(seed: u64, use_env: bool, hidden1: usize, hidden2: usize, emb: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        AdaptiveCostPredictor {
            featurizer: PlanFeaturizer { use_env },
            plan_emb: Tcn::new(
                crate::featurize::FEATURE_DIM,
                hidden1,
                hidden2,
                emb,
                &mut rng,
            ),
            cost_head: Mlp::new(&[emb, 16, 1], &mut rng),
            dom_head: Mlp::new(&[emb, 16, 2], &mut rng),
            label_mean: 0.0,
            label_std: 1.0,
        }
    }

    /// Embeds a plan.
    pub fn embed(&self, plan: &PlanTree, env: EnvSource<'_>) -> Mat {
        let (x, tree) = self.featurizer.featurize(plan, env);
        self.plan_emb.infer(&x, &tree)
    }

    /// Predicts the CPU cost of `plan` under the given environment source.
    pub fn predict(&self, plan: &PlanTree, env: EnvSource<'_>) -> f64 {
        let emb = self.embed(plan, env);
        let out = self.cost_head.infer(&emb);
        self.denormalize(out.data[0])
    }

    /// Predicts the costs of a whole batch of plans with one forest
    /// forward: all trees are stacked into a single node matrix, the two
    /// convolution layers and the cost head each run once, and every output
    /// row is bit-identical to what [`predict`](Self::predict) returns for
    /// that plan alone. With a [`FeatureCache`], featurization of recurring
    /// plans collapses to a lookup, which is where serving throughput comes
    /// from.
    pub fn predict_batch(
        &self,
        plans: &[&PlanTree],
        env: EnvSource<'_>,
        cache: Option<&FeatureCache>,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_batch_into(plans, env, cache, &mut InferWs::new(), &mut out);
        out
    }

    /// [`predict_batch`](Self::predict_batch) into caller-owned buffers:
    /// `out` receives one cost per plan (cleared first). With a warm
    /// [`InferWs`] and a warm [`FeatureCache`], a steady-state scoring batch
    /// performs zero heap allocations; without a cache, plans are featurized
    /// directly into the stacked (structure-of-arrays) batch matrix, so no
    /// per-plan feature matrices exist either way.
    pub fn predict_batch_into(
        &self,
        plans: &[&PlanTree],
        env: EnvSource<'_>,
        cache: Option<&FeatureCache>,
        ws: &mut InferWs,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if plans.is_empty() {
            return;
        }
        let InferWs {
            feats,
            forest,
            head,
            sparse,
        } = ws;
        match cache {
            Some(c) => {
                feats.clear();
                feats.extend(
                    plans
                        .iter()
                        .map(|p| c.featurize(&self.featurizer, p, env.clone())),
                );
                forest.stack_with(plans.len(), |i| (&feats[i].0, &feats[i].1));
            }
            None => {
                let (x, tree, bounds) = forest.stacked_parts_mut();
                self.featurizer
                    .featurize_forest_into(plans, env, x, tree, bounds);
            }
        }
        self.plan_emb.forward_forest_stacked_ws(forest, *sparse);
        let y = self.cost_head.infer_ws(forest.emb(), head);
        debug_assert_eq!(y.rows, plans.len());
        debug_assert_eq!(y.cols, 1);
        out.extend(y.data.iter().map(|&s| self.denormalize(s)));
    }

    /// Converts a raw head output back to a cost.
    pub fn denormalize(&self, standardized: f32) -> f64 {
        ((standardized * self.label_std + self.label_mean) as f64).exp()
    }

    /// Converts a cost to the standardized log-space label.
    pub fn normalize(&self, cost: f64) -> f32 {
        ((cost.max(1e-9).ln() as f32) - self.label_mean) / self.label_std
    }

    /// Scalar parameter count of the predictive module (PlanEmb + CostPred;
    /// DomClf is a training-time auxiliary).
    pub fn param_count(&self) -> usize {
        self.plan_emb.param_count() + self.cost_head.param_count()
    }

    /// Approximate serialized model size in bytes (f32 parameters).
    pub fn size_bytes(&self) -> usize {
        self.param_count() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_plan::Operator;

    fn tiny_plan(table: u32) -> PlanTree {
        let mut t = PlanTree::new();
        let s = t.leaf(Operator::table_scan(table, 1, 1, vec![0]));
        let k = t.unary(Operator::Sink, s);
        t.set_root(k);
        t
    }

    #[test]
    fn untrained_predictor_produces_finite_costs() {
        let p = AdaptiveCostPredictor::new(1, true);
        let cost = p.predict(&tiny_plan(0), EnvSource::None);
        assert!(cost.is_finite() && cost > 0.0);
    }

    #[test]
    fn normalization_round_trips() {
        let mut p = AdaptiveCostPredictor::new(1, true);
        p.label_mean = 5.0;
        p.label_std = 2.0;
        for &c in &[1.0, 100.0, 1.0e6] {
            let n = p.normalize(c);
            let back = p.denormalize(n);
            assert!((back - c).abs() / c < 1e-4, "{c} → {n} → {back}");
        }
    }

    #[test]
    fn different_plans_embed_differently() {
        let p = AdaptiveCostPredictor::new(2, true);
        let e1 = p.embed(&tiny_plan(1), EnvSource::None);
        let e2 = p.embed(&tiny_plan(2), EnvSource::None);
        assert_ne!(e1.data, e2.data);
    }

    #[test]
    fn batched_prediction_is_bitwise_equal_to_single() {
        use mcsim_catalog::EnvMetrics;
        let p = AdaptiveCostPredictor::new(7, true);
        let mut chain = PlanTree::new();
        let mut cur = chain.leaf(Operator::table_scan(3, 1, 1, vec![0]));
        for _ in 0..4 {
            cur = chain.unary(Operator::Limit { n: 5 }, cur);
        }
        let s = chain.unary(Operator::Sink, cur);
        chain.set_root(s);
        let plans = [tiny_plan(1), tiny_plan(2), chain, tiny_plan(1)];
        let refs: Vec<&PlanTree> = plans.iter().collect();
        let env = EnvMetrics::new(0.6, 0.05, 4.0, 0.5);
        for cache in [None, Some(crate::featurize::FeatureCache::new())] {
            let batch = p.predict_batch(&refs, EnvSource::Uniform(env), cache.as_ref());
            assert_eq!(batch.len(), refs.len());
            for (b, plan) in refs.iter().enumerate() {
                let single = p.predict(plan, EnvSource::Uniform(env));
                assert_eq!(
                    batch[b].to_bits(),
                    single.to_bits(),
                    "plan {b} diverges (cache: {})",
                    cache.is_some()
                );
            }
        }
        assert!(p
            .predict_batch(&[], EnvSource::Uniform(env), None)
            .is_empty());

        // The workspace entry point matches too, for both conv1 modes, with
        // warm reuse across batches of different sizes.
        let mut ws = InferWs::new();
        let mut out = Vec::new();
        let want = p.predict_batch(&refs, EnvSource::Uniform(env), None);
        for sparse in [true, false] {
            ws.sparse = sparse;
            for slice in [&refs[..], &refs[..2]] {
                p.predict_batch_into(slice, EnvSource::Uniform(env), None, &mut ws, &mut out);
                assert_eq!(out.len(), slice.len());
                for (b, (got, want)) in out.iter().zip(&want).enumerate() {
                    assert_eq!(got.to_bits(), want.to_bits(), "sparse={sparse} plan {b}");
                }
            }
        }
        // And through the cached path into the same warm workspace.
        let cache = crate::featurize::FeatureCache::new();
        p.predict_batch_into(
            &refs,
            EnvSource::Uniform(env),
            Some(&cache),
            &mut ws,
            &mut out,
        );
        for (got, want) in out.iter().zip(&want) {
            assert_eq!(got.to_bits(), want.to_bits(), "cached ws path diverges");
        }
    }

    #[test]
    fn model_size_is_reported() {
        let p = AdaptiveCostPredictor::new(3, true);
        assert!(p.size_bytes() > 10_000);
    }
}
