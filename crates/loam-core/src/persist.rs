//! Model persistence: saving and loading trained predictors and rankers.
//!
//! Production LOAM trains per-project predictors offline and ships them to
//! the optimizer service; this module provides the equivalent serialization
//! boundary (JSON via serde — human-inspectable and dependency-light).

use crate::predictor::AdaptiveCostPredictor;
use crate::selector::Ranker;
use serde::{Deserialize, Serialize};
use std::io::{Read as _, Write as _};
use std::path::Path;

/// Errors from saving/loading models.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Serde(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model file i/o failed: {e}"),
            PersistError::Serde(e) => write!(f, "model (de)serialization failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Serde(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

/// A versioned envelope so future format changes stay detectable.
#[derive(Debug, Serialize, Deserialize)]
struct Envelope<T> {
    format_version: u32,
    kind: String,
    model: T,
}

const FORMAT_VERSION: u32 = 1;

/// Saves a trained predictor to `path` as versioned JSON.
///
/// # Errors
///
/// Returns [`PersistError`] on filesystem or serialization failure.
pub fn save_predictor(model: &AdaptiveCostPredictor, path: &Path) -> Result<(), PersistError> {
    let env = Envelope {
        format_version: FORMAT_VERSION,
        kind: "adaptive-cost-predictor".to_string(),
        model,
    };
    let json = serde_json::to_string(&env)?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    Ok(())
}

/// Loads a predictor saved by [`save_predictor`].
///
/// # Errors
///
/// Returns [`PersistError`] on filesystem/serialization failure or a
/// format-version mismatch.
pub fn load_predictor(path: &Path) -> Result<AdaptiveCostPredictor, PersistError> {
    let mut json = String::new();
    std::fs::File::open(path)?.read_to_string(&mut json)?;
    let env: Envelope<AdaptiveCostPredictor> = serde_json::from_str(&json)?;
    if env.format_version != FORMAT_VERSION || env.kind != "adaptive-cost-predictor" {
        return Err(PersistError::Serde(serde::de::Error::custom(format!(
            "unsupported model file: kind {} version {}",
            env.kind, env.format_version
        ))));
    }
    Ok(env.model)
}

/// Saves a trained project ranker.
///
/// # Errors
///
/// Returns [`PersistError`] on filesystem or serialization failure.
pub fn save_ranker(model: &Ranker, path: &Path) -> Result<(), PersistError> {
    let env = Envelope {
        format_version: FORMAT_VERSION,
        kind: "project-ranker".to_string(),
        model,
    };
    std::fs::write(path, serde_json::to_string(&env)?)?;
    Ok(())
}

/// Loads a ranker saved by [`save_ranker`].
///
/// # Errors
///
/// Returns [`PersistError`] on filesystem/serialization failure or a
/// format mismatch.
pub fn load_ranker(path: &Path) -> Result<Ranker, PersistError> {
    let json = std::fs::read_to_string(path)?;
    let env: Envelope<Ranker> = serde_json::from_str(&json)?;
    if env.format_version != FORMAT_VERSION || env.kind != "project-ranker" {
        return Err(PersistError::Serde(serde::de::Error::custom(
            "unsupported ranker file",
        )));
    }
    Ok(env.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::EnvSource;
    use mcsim_plan::{Operator, PlanTree};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("loam-persist-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn predictor_round_trips_with_identical_predictions() {
        let model = AdaptiveCostPredictor::new(5, true);
        let path = tmp("pred");
        save_predictor(&model, &path).expect("save");
        let loaded = load_predictor(&path).expect("load");
        let mut plan = PlanTree::new();
        let s = plan.leaf(Operator::table_scan(3, 2, 4, vec![1, 2]));
        let k = plan.unary(Operator::Sink, s);
        plan.set_root(k);
        assert_eq!(
            model.predict(&plan, EnvSource::None),
            loaded.predict(&plan, EnvSource::None)
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ranker_round_trips() {
        let feats = vec![vec![0.0; crate::selector::RANKER_FEATURE_DIM]; 4];
        let labels = vec![0.1, 0.2, 0.3, 0.4];
        let ranker = Ranker::fit(&feats, &labels, 1);
        let path = tmp("ranker");
        save_ranker(&ranker, &path).expect("save");
        let loaded = load_ranker(&path).expect("load");
        // JSON round-trips f64 to 17 significant digits; allow ulp-level gap.
        let a = ranker.predict(&feats[0]);
        let b = loaded.predict(&feats[0]);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn loading_garbage_fails_cleanly() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(load_predictor(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_predictor(Path::new("/nonexistent/loam-model.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(!err.to_string().is_empty());
    }
}
