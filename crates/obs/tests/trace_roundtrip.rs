//! Round-trip tests for the Chrome trace-event export: the JSON written by
//! [`TraceContext::to_chrome_json`] must parse back through the vendored
//! serde shim into typed structs, and the exported complete ("X") events
//! must form a properly nested span forest on every thread track — Chrome's
//! renderer silently draws garbage for partially overlapping X events, so
//! interleaving is a correctness bug, not a style issue.

#![allow(non_snake_case)]

use mcsim_obs::trace::{
    CandidateScore, Decision, GateVerdict, PlanSelection, SelectionOutcome, StageExecEvent,
    TraceContext,
};
use proptest::prelude::*;
use serde::Deserialize;

/// The uniform per-event shape: every event class (metadata, span, decision
/// instant, executor stage) carries exactly these keys, so one typed struct
/// parses the whole stream. `args`/`s` vary per class and are ignored.
#[derive(Debug, Clone, Deserialize)]
struct Event {
    name: String,
    cat: String,
    ph: String,
    pid: u32,
    tid: u64,
    ts: u64,
    dur: u64,
}

#[derive(Debug, Deserialize)]
struct OtherData {
    label: String,
}

#[derive(Debug, Deserialize)]
struct ChromeTrace {
    displayTimeUnit: String,
    otherData: OtherData,
    traceEvents: Vec<Event>,
}

fn parse(ctx: &TraceContext) -> ChromeTrace {
    let json = ctx.to_chrome_json();
    serde_json::from_str(&json).expect("chrome export must parse as typed JSON")
}

/// Builds a context exercising every event class.
fn sample_context() -> TraceContext {
    let ctx = TraceContext::new("roundtrip");
    {
        let outer = ctx.span("evaluate");
        outer.attr("queries", 2u64);
        {
            let s = ctx.span("optimize");
            s.attr("candidates", 7u64);
        }
        {
            let _s = ctx.span("execute");
        }
    }
    ctx.decision(Decision::PlanSelection(PlanSelection {
        query_id: 11,
        candidates: vec![
            CandidateScore {
                signature: 0xdead_beef,
                predicted_cost: 10.0,
                is_default: true,
            },
            CandidateScore {
                signature: 0xfeed_f00d,
                predicted_cost: 4.0,
                is_default: false,
            },
        ],
        default_idx: 0,
        best_idx: 1,
        chosen_idx: 1,
        margin: 0.4,
        outcome: SelectionOutcome::Accepted,
    }));
    ctx.decision(Decision::GateVerdict(GateVerdict {
        avg_ratio: 0.9,
        worst_tail_ratio: 1.1,
        regression_fraction: 0.05,
        passes_avg: true,
        passes_tail: true,
        passes_regressions: true,
        deploy: true,
    }));
    ctx.stage_event(StageExecEvent {
        stage: 0,
        machines: vec![3, 9],
        start_tick: 5,
        end_tick: 8,
        instances: 2,
        queue_wait_factor: 1.2,
        cost: 1e6,
        busy: 0.4,
        attempt: 0,
        killed: false,
    });
    ctx
}

/// Asserts that intervals on one track form a forest: any two either nest
/// or are disjoint (ties count as containment — the export's µs resolution
/// legitimately collapses fast sibling spans onto equal timestamps).
fn assert_properly_nested(mut spans: Vec<(u64, u64)>) {
    // Sort by start ascending, then end descending, so a parent always
    // precedes the children it contains.
    spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    let mut stack: Vec<(u64, u64)> = Vec::new();
    for &(start, end) in &spans {
        while let Some(&(_, top_end)) = stack.last() {
            if start >= top_end {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(top_start, top_end)) = stack.last() {
            assert!(
                top_start <= start && end <= top_end,
                "partial overlap: ({start},{end}) vs open ({top_start},{top_end})"
            );
        }
        stack.push((start, end));
    }
}

#[test]
fn export_parses_into_typed_events_with_uniform_keys() {
    let ctx = sample_context();
    let trace = parse(&ctx);
    assert_eq!(trace.displayTimeUnit, "ms");
    assert_eq!(trace.otherData.label, "roundtrip");
    assert!(!trace.traceEvents.is_empty());

    // Every phase is one of metadata / complete / instant.
    for e in &trace.traceEvents {
        assert!(
            matches!(e.ph.as_str(), "M" | "X" | "I"),
            "unexpected phase {:?} on {:?}",
            e.ph,
            e.name
        );
    }
    // Metadata names both processes and every track that carries events.
    let meta: Vec<&Event> = trace.traceEvents.iter().filter(|e| e.ph == "M").collect();
    assert!(meta
        .iter()
        .any(|e| e.name == "process_name" && e.pid == 1 && e.dur == 0));
    assert!(meta.iter().any(|e| e.name == "process_name" && e.pid == 2));
    assert!(meta
        .iter()
        .any(|e| e.name == "thread_name" && e.pid == 2 && e.tid == 9));

    // The three spans land on pid 1 as complete events.
    let spans: Vec<&Event> = trace
        .traceEvents
        .iter()
        .filter(|e| e.cat == "span")
        .collect();
    assert_eq!(spans.len(), 3);
    assert!(spans.iter().all(|e| e.ph == "X" && e.pid == 1));

    // Both decisions are pid-1 instants with their typed kind as the name.
    let decisions: Vec<&Event> = trace
        .traceEvents
        .iter()
        .filter(|e| e.cat == "decision")
        .collect();
    assert_eq!(decisions.len(), 2);
    assert!(decisions
        .iter()
        .all(|e| e.ph == "I" && e.pid == 1 && e.dur == 0));
    assert!(decisions
        .iter()
        .any(|e| e.name == "decision.plan_selection"));
    assert!(decisions.iter().any(|e| e.name == "decision.gate_verdict"));

    // The stage event fans out to one executor X event per machine, on
    // sim-time pid 2, 1 tick = 1000 µs.
    let exec: Vec<&Event> = trace
        .traceEvents
        .iter()
        .filter(|e| e.cat == "executor")
        .collect();
    assert_eq!(exec.len(), 2);
    for e in &exec {
        assert_eq!(e.ph, "X");
        assert_eq!(e.pid, 2);
        assert_eq!(e.ts, 5000);
        assert_eq!(e.dur, 3000);
        assert!(e.tid == 3 || e.tid == 9);
    }
}

#[test]
fn exported_spans_nest_on_every_track() {
    let ctx = sample_context();
    let trace = parse(&ctx);
    let mut tids: Vec<u64> = trace
        .traceEvents
        .iter()
        .filter(|e| e.cat == "span")
        .map(|e| e.tid)
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(!tids.is_empty());
    for tid in tids {
        let intervals: Vec<(u64, u64)> = trace
            .traceEvents
            .iter()
            .filter(|e| e.cat == "span" && e.tid == tid)
            .map(|e| (e.ts, e.ts + e.dur))
            .collect();
        assert_properly_nested(intervals);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random open/leaf/close scripts never produce interleaving X events:
    /// 0 opens a span, 1 closes the deepest open span, 2 emits a leaf.
    /// Closing is LIFO by construction (a `Vec` of live guards), which is
    /// exactly the discipline the RAII API enforces.
    #[test]
    fn random_span_trees_never_interleave(ops in proptest::collection::vec(0u8..3, 1..40)) {
        let ctx = TraceContext::new("prop");
        {
            let mut open = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    0 => open.push(ctx.span(format!("open{i}"))),
                    1 => {
                        drop(open.pop());
                    }
                    _ => drop(ctx.span(format!("leaf{i}"))),
                }
            }
            // Remaining guards drop here, deepest first.
        }
        let trace = parse(&ctx);
        let intervals: Vec<(u64, u64)> = trace
            .traceEvents
            .iter()
            .filter(|e| e.cat == "span")
            .map(|e| (e.ts, e.ts + e.dur))
            .collect();
        prop_assert!(!intervals.is_empty());
        assert_properly_nested(intervals);
    }
}
